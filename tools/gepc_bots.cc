// gepc_bots — scripted-client load generator for `gepc_serve --listen`.
//
//   gepc_bots --port P [--host H] [--clients N] [--duration-s S]
//             [--threads T] [--arrival closed|poisson] [--rate OPS_S]
//             [--think-ms MS] [--mix op=W,read=W,stats=W[,rebuild=W]]
//             [--seed S] [--compress] [--json FILE] [--shutdown]
//             [--replica HOST:PORT] [--replica-clients N] [--audit-port P]
//
// Spawns N concurrent clients of the binary frame protocol
// (docs/network-protocol.md), each running a scripted mix of mutating ops,
// snapshot reads and stats polls, and measures per-op latency end to end:
//
//   * closed loop (default): every client keeps exactly one request in
//     flight and waits --think-ms between responses — throughput adapts to
//     the server.
//   * poisson: open loop; every client fires requests at --rate ops/s with
//     exponential inter-arrival times regardless of outstanding responses —
//     the arrival rate is fixed, so saturation surfaces as latency and
//     admission-control rejections instead of silently slowing down.
//
// Admission-control Status frames ("saturated") count as rejections, not
// errors: backpressure is the protocol working as designed.
//
// After the measurement window the harness opens one fresh connection,
// drains the server, and compares the server's ops_applied against the
// apply acknowledgements the bots collected: `committed_op_loss` must be
// zero — every op the server acked must still be in its state. The process
// exits 1 on loss (or when nothing connected), making the check CI-able.
//
// Replication-aware load (docs/replication.md): --replica HOST:PORT points
// a second, read-only client fleet (--replica-clients) at a follower, so
// one run captures primary write throughput and replica read throughput
// side by side (replica_* report fields). --audit-port redirects the
// end-of-run drain + zero-loss audit to that port — after a failover
// drill, the promoted follower must still hold every op the bots were
// acked. With --audit-port set, a monitor thread also probes the primary;
// when it dies, the monitor times how long until the audit target reports
// role=primary, and reports it as failover_blackout_ms (-1 = primary
// never died / replica never promoted within the run).
//
// The JSON report (--json) uses the BENCH_*.json shape
// ({"bench":"gepc_bots","results":{...}}) so CI uploads it next to the
// solver benchmarks.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame.h"
#include "obs/metrics.h"
#include "service/jsonl.h"

namespace gepc {
namespace bots {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 100;
  double duration_s = 5.0;
  int threads = 0;  ///< 0 = min(8, hardware_concurrency)
  std::string arrival = "closed";
  double rate = 10.0;  ///< per-client ops/s in poisson mode
  int think_ms = 0;
  double mix_op = 0.50;
  double mix_read = 0.45;
  double mix_stats = 0.05;
  double mix_rebuild = 0.0;
  uint64_t seed = 1;
  bool compress = false;
  std::string json_path;
  bool send_shutdown = false;

  /// Replication targets (empty/0 = off). The replica fleet is read-only;
  /// the audit port is where the end-of-run drain + zero-loss audit (and
  /// the failover blackout probe) go instead of the primary.
  std::string replica_host;
  int replica_port = 0;
  int replica_clients = 50;
  int audit_port = 0;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: gepc_bots --port P [--host H] [--clients N] [--duration-s S]\n"
      "                 [--threads T] [--arrival closed|poisson]\n"
      "                 [--rate OPS_PER_S] [--think-ms MS]\n"
      "                 [--mix op=W,read=W,stats=W[,rebuild=W]]\n"
      "                 [--seed S] [--compress] [--json FILE] [--shutdown]\n"
      "                 [--replica HOST:PORT] [--replica-clients N]\n"
      "                 [--audit-port P]\n"
      "Load-tests a gepc_serve --listen endpoint; see docs/cli.md.\n"
      "--replica adds a read-only client fleet against a follower;\n"
      "--audit-port audits (and times failover against) that port.\n");
  return 64;
}

bool ParseMix(const std::string& spec, Options* options, std::string* error) {
  options->mix_op = options->mix_read = options->mix_stats =
      options->mix_rebuild = 0.0;
  std::string rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "--mix items must be kind=weight";
      return false;
    }
    const std::string kind = item.substr(0, eq);
    char* end = nullptr;
    const double weight = std::strtod(item.c_str() + eq + 1, &end);
    if (end == nullptr || *end != '\0' || weight < 0.0) {
      *error = "--mix weight for '" + kind + "' must be a number >= 0";
      return false;
    }
    if (kind == "op") {
      options->mix_op = weight;
    } else if (kind == "read") {
      options->mix_read = weight;
    } else if (kind == "stats") {
      options->mix_stats = weight;
    } else if (kind == "rebuild") {
      options->mix_rebuild = weight;
    } else {
      *error = "--mix kind must be op, read, stats or rebuild";
      return false;
    }
  }
  if (options->mix_op + options->mix_read + options->mix_stats +
          options->mix_rebuild <=
      0.0) {
    *error = "--mix weights must not all be zero";
    return false;
  }
  return true;
}

bool ParseArgs(int argc, char** argv, Options* options, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = arg + " needs a value";
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string text;
    if (arg == "--host") {
      if (!value(&options->host)) return false;
    } else if (arg == "--port") {
      if (!value(&text)) return false;
      options->port = std::atoi(text.c_str());
    } else if (arg == "--clients") {
      if (!value(&text)) return false;
      options->clients = std::atoi(text.c_str());
    } else if (arg == "--duration-s") {
      if (!value(&text)) return false;
      options->duration_s = std::strtod(text.c_str(), nullptr);
    } else if (arg == "--threads") {
      if (!value(&text)) return false;
      options->threads = std::atoi(text.c_str());
    } else if (arg == "--arrival") {
      if (!value(&options->arrival)) return false;
    } else if (arg == "--rate") {
      if (!value(&text)) return false;
      options->rate = std::strtod(text.c_str(), nullptr);
    } else if (arg == "--think-ms") {
      if (!value(&text)) return false;
      options->think_ms = std::atoi(text.c_str());
    } else if (arg == "--mix") {
      if (!value(&text)) return false;
      if (!ParseMix(text, options, error)) return false;
    } else if (arg == "--seed") {
      if (!value(&text)) return false;
      options->seed = static_cast<uint64_t>(std::strtoull(text.c_str(),
                                                          nullptr, 10));
    } else if (arg == "--compress") {
      options->compress = true;
    } else if (arg == "--json") {
      if (!value(&options->json_path)) return false;
    } else if (arg == "--shutdown") {
      options->send_shutdown = true;
    } else if (arg == "--replica") {
      if (!value(&text)) return false;
      const size_t colon = text.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        *error = "--replica must be HOST:PORT";
        return false;
      }
      options->replica_host = text.substr(0, colon);
      options->replica_port = std::atoi(text.c_str() + colon + 1);
      if (options->replica_port < 1 || options->replica_port > 65535) {
        *error = "--replica port must be in 1..65535";
        return false;
      }
    } else if (arg == "--replica-clients") {
      if (!value(&text)) return false;
      options->replica_clients = std::atoi(text.c_str());
      if (options->replica_clients < 1 || options->replica_clients > 100000) {
        *error = "--replica-clients must be in 1..100000";
        return false;
      }
    } else if (arg == "--audit-port") {
      if (!value(&text)) return false;
      options->audit_port = std::atoi(text.c_str());
      if (options->audit_port < 1 || options->audit_port > 65535) {
        *error = "--audit-port must be in 1..65535";
        return false;
      }
    } else {
      *error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  if (options->port < 1 || options->port > 65535) {
    *error = "--port (1..65535) is required";
    return false;
  }
  if (options->clients < 1 || options->clients > 100000) {
    *error = "--clients must be in 1..100000";
    return false;
  }
  if (options->duration_s <= 0.0 || options->duration_s > 3600.0) {
    *error = "--duration-s must be in (0, 3600]";
    return false;
  }
  if (options->arrival != "closed" && options->arrival != "poisson") {
    *error = "--arrival must be 'closed' or 'poisson'";
    return false;
  }
  if (options->arrival == "poisson" && options->rate <= 0.0) {
    *error = "--rate must be > 0 in poisson mode";
    return false;
  }
  if (options->think_ms < 0) {
    *error = "--think-ms must be >= 0";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Shared run state
// ---------------------------------------------------------------------------

enum class OpKind { kOp = 0, kRead = 1, kStats = 2, kRebuild = 3 };
constexpr int kOpKinds = 4;

struct RunState {
  const Options* options = nullptr;
  sockaddr_in addr{};
  std::atomic<bool> stop_sending{false};
  std::atomic<bool> stop_loop{false};

  // Workload sizing, learned from the first Welcome frame.
  std::atomic<int> users{0};
  std::atomic<int> events{0};

  std::atomic<uint64_t> connected{0};
  std::atomic<uint64_t> reconnects{0};
  std::atomic<uint64_t> ops_sent{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> ops_ok{0};
  std::atomic<uint64_t> ops_app_error{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> acked_applied{0};

  // Latency reservoirs (obs histograms are lock-free and thread-safe). The
  // large reservoir keeps quantiles exact for typical smoke runs; longer
  // runs degrade to bucket interpolation.
  obs::Histogram latency_all;
  obs::Histogram latency_kind[kOpKinds];

  RunState()
      : latency_all(obs::Histogram::DefaultLatencyBucketsMs(), 1u << 17),
        latency_kind{
            obs::Histogram(obs::Histogram::DefaultLatencyBucketsMs(), 1u << 16),
            obs::Histogram(obs::Histogram::DefaultLatencyBucketsMs(), 1u << 16),
            obs::Histogram(obs::Histogram::DefaultLatencyBucketsMs(), 1u << 16),
            obs::Histogram(obs::Histogram::DefaultLatencyBucketsMs(),
                           1u << 16)} {}
};

/// Extracts the integer after `"key":` in a flat JSON object; -1 if absent.
int64_t FindIntField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
}

/// Fills an IPv4 socket address; "localhost" is accepted as 127.0.0.1.
bool ResolveIPv4(const std::string& host, int port, sockaddr_in* out) {
  *out = sockaddr_in{};
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  return inet_pton(AF_INET, ip.c_str(), &out->sin_addr) == 1;
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

struct Conn {
  int fd = -1;
  enum class State { kConnecting, kAwaitWelcome, kActive, kDead };
  State state = State::kConnecting;
  net::FrameDecoder decoder;
  std::string outbuf;
  size_t out_off = 0;
  /// id -> (send time, kind) for in-flight requests.
  std::unordered_map<uint64_t, std::pair<Clock::time_point, OpKind>> inflight;
  uint64_t next_id = 1;
  std::mt19937_64 rng;
  Clock::time_point next_send{};
  int connect_attempts = 0;
};

/// One driver thread: owns an epoll instance and `clients / threads`
/// connections; nothing is shared with other drivers except the RunState
/// atomics and histograms.
class Driver {
 public:
  Driver(RunState* run, int client_count, uint64_t salt)
      : run_(run), client_count_(client_count), salt_(salt) {}

  void Run() {
    epoll_fd_ = epoll_create1(0);
    if (epoll_fd_ < 0) {
      run_->transport_errors.fetch_add(static_cast<uint64_t>(client_count_));
      return;
    }
    int created = 0;
    std::vector<epoll_event> events(256);
    while (!run_->stop_loop.load(std::memory_order_relaxed)) {
      // Pace connection creation: a bounded batch per loop iteration keeps
      // thousands of clients from a single SYN burst.
      while (created < client_count_ &&
             !run_->stop_sending.load(std::memory_order_relaxed)) {
        const int batch = 64;
        int opened = 0;
        while (created < client_count_ && opened < batch) {
          OpenConnection(static_cast<uint64_t>(created));
          ++created;
          ++opened;
        }
        break;
      }

      const int n =
          epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), /*timeout_ms=*/1);
      const Clock::time_point now = Clock::now();
      for (int i = 0; i < n; ++i) {
        const int fd = static_cast<int>(events[i].data.fd);
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
            conn->state == Conn::State::kConnecting) {
          RetryConnect(conn);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) HandleWritable(conn, now);
        if (conns_.find(fd) == conns_.end()) continue;  // died in write path
        if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn, now);
      }

      if (!run_->stop_sending.load(std::memory_order_relaxed)) {
        // MaybeSend can kill (and erase) a connection; iterate over a
        // snapshot of the keys, re-validating each.
        scan_fds_.clear();
        for (const auto& entry : conns_) scan_fds_.push_back(entry.first);
        for (const int fd : scan_fds_) {
          auto it = conns_.find(fd);
          if (it == conns_.end()) continue;
          if (it->second->state == Conn::State::kActive) {
            MaybeSend(it->second.get(), now);
          }
        }
      }
    }
    for (const auto& entry : conns_) close(entry.second->fd);
    conns_.clear();
    close(epoll_fd_);
  }

  uint64_t OutstandingTotal() const {
    return outstanding_total_.load(std::memory_order_relaxed);
  }

 private:
  void OpenConnection(uint64_t index) {
    auto conn = std::make_unique<Conn>();
    conn->rng.seed(run_->options->seed * 0x9E3779B97F4A7C15ULL + salt_ * 131 +
                   index);
    if (!StartConnect(conn.get())) {
      run_->transport_errors.fetch_add(1);
      return;
    }
    conns_.emplace(conn->fd, std::move(conn));
  }

  bool StartConnect(Conn* conn) {
    ++conn->connect_attempts;
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return false;
    const int rc = connect(fd, reinterpret_cast<const sockaddr*>(&run_->addr),
                           sizeof(run_->addr));
    if (rc != 0 && errno != EINPROGRESS) {
      close(fd);
      return false;
    }
    conn->fd = fd;
    conn->state = Conn::State::kConnecting;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      return false;
    }
    return true;
  }

  void RetryConnect(Conn* conn) {
    const int fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    auto node = conns_.extract(fd);
    if (node.empty()) return;
    std::unique_ptr<Conn> owned = std::move(node.mapped());
    if (owned->connect_attempts >= 5 ||
        run_->stop_sending.load(std::memory_order_relaxed)) {
      run_->transport_errors.fetch_add(1);
      return;
    }
    run_->reconnects.fetch_add(1);
    if (StartConnect(owned.get())) {
      const int new_fd = owned->fd;
      conns_.emplace(new_fd, std::move(owned));
    } else {
      run_->transport_errors.fetch_add(1);
    }
  }

  void KillConnection(Conn* conn, bool is_error) {
    if (is_error) run_->transport_errors.fetch_add(1);
    outstanding_total_.fetch_sub(conn->inflight.size(),
                                 std::memory_order_relaxed);
    const int fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    conns_.erase(fd);
  }

  void HandleWritable(Conn* conn, Clock::time_point now) {
    if (conn->state == Conn::State::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        RetryConnect(conn);
        return;
      }
      int one = 1;
      setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      conn->state = Conn::State::kAwaitWelcome;
      run_->connected.fetch_add(1);
      conn->outbuf += net::EncodeFrame(net::FrameType::kHello, "{}");
      conn->next_send = now;
    }
    Flush(conn);
  }

  void Flush(Conn* conn) {
    while (conn->out_off < conn->outbuf.size()) {
      const ssize_t n =
          write(conn->fd, conn->outbuf.data() + conn->out_off,
                conn->outbuf.size() - conn->out_off);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      KillConnection(conn, /*is_error=*/true);
      return;
    }
    if (conn->out_off >= conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_off = 0;
    } else if (conn->out_off > 65536) {
      conn->outbuf.erase(0, conn->out_off);
      conn->out_off = 0;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (conn->outbuf.empty() ? 0u : EPOLLOUT);
    ev.data.fd = conn->fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void HandleReadable(Conn* conn, Clock::time_point now) {
    char buffer[65536];
    while (true) {
      const ssize_t n = read(conn->fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn->decoder.Feed(buffer, static_cast<size_t>(n));
        if (static_cast<size_t>(n) < sizeof(buffer)) break;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or reset. During shutdown/drain this is expected bookkeeping,
      // not an error.
      KillConnection(conn, !conn->inflight.empty());
      return;
    }
    net::Frame frame;
    Status error;
    while (true) {
      const auto next = conn->decoder.Pop(&frame, &error);
      if (next == net::FrameDecoder::Next::kNeedMore) break;
      if (next == net::FrameDecoder::Next::kError) {
        KillConnection(conn, /*is_error=*/true);
        return;
      }
      if (!HandleFrame(conn, frame, now)) return;  // conn was destroyed
    }
  }

  /// Returns false when the connection was killed (conn is dangling then).
  bool HandleFrame(Conn* conn, const net::Frame& frame, Clock::time_point now) {
    switch (frame.type) {
      case net::FrameType::kWelcome: {
        if (run_->users.load(std::memory_order_relaxed) == 0) {
          const int64_t users = FindIntField(frame.payload, "users");
          const int64_t events = FindIntField(frame.payload, "events");
          if (users > 0) run_->users.store(static_cast<int>(users));
          if (events > 0) run_->events.store(static_cast<int>(events));
        }
        conn->state = Conn::State::kActive;
        conn->next_send = now;
        return true;
      }
      case net::FrameType::kResponse: {
        run_->responses.fetch_add(1);
        const int64_t id = FindIntField(frame.payload, "id");
        if (id >= 0) {
          auto it = conn->inflight.find(static_cast<uint64_t>(id));
          if (it != conn->inflight.end()) {
            const double ms = std::chrono::duration<double, std::milli>(
                                  now - it->second.first)
                                  .count();
            run_->latency_all.Observe(ms);
            run_->latency_kind[static_cast<int>(it->second.second)].Observe(ms);
            conn->inflight.erase(it);
            outstanding_total_.fetch_sub(1, std::memory_order_relaxed);
          }
        }
        if (frame.payload.find("\"ok\":true") != std::string::npos) {
          run_->ops_ok.fetch_add(1);
        } else {
          run_->ops_app_error.fetch_add(1);
        }
        if (frame.payload.find("\"applied\":true") != std::string::npos) {
          run_->acked_applied.fetch_add(1);
        }
        if (run_->options->arrival == "closed") {
          conn->next_send =
              now + std::chrono::milliseconds(run_->options->think_ms);
        }
        return true;
      }
      case net::FrameType::kStatus: {
        // Status frames carry no request id; in the closed loop the single
        // in-flight request is the one being answered, in the open loop we
        // charge the oldest (the map stays bounded either way).
        if (frame.payload.find("saturated") != std::string::npos) {
          run_->rejected.fetch_add(1);
        } else {
          run_->transport_errors.fetch_add(1);
        }
        if (!conn->inflight.empty()) {
          auto oldest = conn->inflight.begin();
          for (auto it = conn->inflight.begin(); it != conn->inflight.end();
               ++it) {
            if (it->second.first < oldest->second.first) oldest = it;
          }
          conn->inflight.erase(oldest);
          outstanding_total_.fetch_sub(1, std::memory_order_relaxed);
        }
        if (run_->options->arrival == "closed") {
          conn->next_send =
              now + std::chrono::milliseconds(
                        std::max(1, run_->options->think_ms));
        }
        return true;
      }
      default:
        // Unexpected server frame; drop the connection.
        KillConnection(conn, /*is_error=*/true);
        return false;
    }
  }

  OpKind PickKind(Conn* conn) {
    const Options& options = *run_->options;
    const double total =
        options.mix_op + options.mix_read + options.mix_stats +
        options.mix_rebuild;
    std::uniform_real_distribution<double> uniform(0.0, total);
    double draw = uniform(conn->rng);
    if ((draw -= options.mix_op) < 0.0) return OpKind::kOp;
    if ((draw -= options.mix_read) < 0.0) return OpKind::kRead;
    if ((draw -= options.mix_stats) < 0.0) return OpKind::kStats;
    return OpKind::kRebuild;
  }

  std::string BuildRequest(Conn* conn, OpKind kind, uint64_t id) {
    const int users = std::max(1, run_->users.load(std::memory_order_relaxed));
    const int events =
        std::max(1, run_->events.load(std::memory_order_relaxed));
    auto pick = [&conn](int bound) {
      return static_cast<int>(conn->rng() % static_cast<uint64_t>(bound));
    };
    JsonWriter request;
    request.Add("id", static_cast<int64_t>(id));
    switch (kind) {
      case OpKind::kOp: {
        // Mutating ops over the ParseOpSpec grammar (docs/cli.md), spread
        // across preference, budget and capacity changes.
        const int which = pick(10);
        std::string spec;
        if (which < 4) {
          spec = "mu:" + std::to_string(pick(users)) + ":" +
                 std::to_string(pick(events)) + ":" +
                 std::to_string(pick(100));
        } else if (which < 6) {
          spec = "budget:" + std::to_string(pick(users)) + ":" +
                 std::to_string(50 + pick(300));
        } else if (which < 8) {
          spec = "eta:" + std::to_string(pick(events)) + ":" +
                 std::to_string(1 + pick(users));
        } else {
          spec = "xi:" + std::to_string(pick(events)) + ":" +
                 std::to_string(pick(3));
        }
        request.Add("cmd", "apply");
        request.Add("op", spec);
        break;
      }
      case OpKind::kRead: {
        if (pick(5) < 4) {
          request.Add("cmd", "query_user");
          request.Add("user", pick(users));
        } else {
          request.Add("cmd", "query_event");
          request.Add("event", pick(events));
        }
        break;
      }
      case OpKind::kStats:
        request.Add("cmd", "stats");
        break;
      case OpKind::kRebuild:
        request.Add("cmd", "rebuild");
        break;
    }
    return request.Finish();
  }

  /// Returns false when the connection died flushing (conn dangles then).
  bool SendOne(Conn* conn, Clock::time_point now) {
    const int fd = conn->fd;
    const OpKind kind = PickKind(conn);
    const uint64_t id = conn->next_id++;
    const std::string payload = BuildRequest(conn, kind, id);
    conn->inflight.emplace(id, std::make_pair(now, kind));
    outstanding_total_.fetch_add(1, std::memory_order_relaxed);
    run_->ops_sent.fetch_add(1);
    conn->outbuf += net::EncodeFrame(net::FrameType::kRequest, payload,
                                     run_->options->compress);
    Flush(conn);
    return conns_.find(fd) != conns_.end();
  }

  void MaybeSend(Conn* conn, Clock::time_point now) {
    const Options& options = *run_->options;
    if (options.arrival == "closed") {
      if (conn->inflight.empty() && now >= conn->next_send) {
        SendOne(conn, now);
      }
      return;
    }
    // Open loop: fire every due arrival, bounded per scan so one laggard
    // connection cannot monopolize the driver; cap in-flight to bound
    // memory when the server is far behind.
    int burst = 0;
    while (now >= conn->next_send && burst < 16 &&
           conn->inflight.size() < 256) {
      if (!SendOne(conn, now)) return;  // died mid-send
      std::exponential_distribution<double> gap(options.rate);
      conn->next_send +=
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(gap(conn->rng)));
      ++burst;
    }
    if (now >= conn->next_send && burst >= 16) conn->next_send = now;
  }

  RunState* const run_;
  const int client_count_;
  const uint64_t salt_;
  int epoll_fd_ = -1;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::vector<int> scan_fds_;  ///< reused per-iteration key snapshot
  std::atomic<uint64_t> outstanding_total_{0};
};

// ---------------------------------------------------------------------------
// Blocking control connection (handshake + drain/stats/shutdown)
// ---------------------------------------------------------------------------

class ControlClient {
 public:
  bool Connect(const sockaddr_in& addr) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      close(fd_);
      fd_ = -1;
      return false;
    }
    if (!SendFrame(net::FrameType::kHello, "{}")) return false;
    net::Frame frame;
    return RecvFrame(&frame) && frame.type == net::FrameType::kWelcome;
  }

  /// Sends one request and returns the first Response payload ("" on
  /// transport failure). Status frames (e.g. saturation) are retried a few
  /// times — the control channel runs after the load stops, so the queue
  /// drains quickly.
  std::string Request(const std::string& line) {
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (!SendFrame(net::FrameType::kRequest, line)) return "";
      net::Frame frame;
      if (!RecvFrame(&frame)) return "";
      if (frame.type == net::FrameType::kResponse) return frame.payload;
      if (frame.type != net::FrameType::kStatus) return "";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return "";
  }

  ~ControlClient() {
    if (fd_ >= 0) close(fd_);
  }

 private:
  bool SendFrame(net::FrameType type, const std::string& payload) {
    const std::string bytes = net::EncodeFrame(type, payload);
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool RecvFrame(net::Frame* out) {
    char buffer[65536];
    Status error;
    while (true) {
      const auto next = decoder_.Pop(out, &error);
      if (next == net::FrameDecoder::Next::kFrame) return true;
      if (next == net::FrameDecoder::Next::kError) return false;
      const ssize_t n = read(fd_, buffer, sizeof(buffer));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      decoder_.Feed(buffer, static_cast<size_t>(n));
    }
  }

  int fd_ = -1;
  net::FrameDecoder decoder_;
};

// ---------------------------------------------------------------------------
// Failover blackout monitor
// ---------------------------------------------------------------------------

/// Times the write blackout of a failover drill: the gap between the
/// primary dying and the audit target reporting role=primary (i.e.
/// accepting writes again). Both transitions are detected by polling
/// stats over short-lived control connections from a dedicated thread, so
/// the measurement is independent of the load fleets' reconnect behavior.
class FailoverMonitor {
 public:
  FailoverMonitor(const sockaddr_in& primary, const sockaddr_in& audit)
      : primary_(primary), audit_(audit), thread_([this] { Loop(); }) {}

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  ~FailoverMonitor() { Stop(); }

  double blackout_ms() const { return blackout_ms_.load(); }
  bool promoted_seen() const { return promoted_seen_.load(); }

 private:
  static bool ProbeStats(const sockaddr_in& addr, std::string* out) {
    ControlClient probe;
    if (!probe.Connect(addr)) return false;
    *out = probe.Request("{\"cmd\":\"stats\"}");
    return !out->empty();
  }

  void Loop() {
    bool primary_was_up = false;
    bool primary_died = false;
    Clock::time_point death{};
    while (!stop_.load(std::memory_order_relaxed)) {
      std::string stats;
      if (!primary_died) {
        // A probe failure only counts as death after at least one success:
        // the monitor may start before the primary finishes booting.
        if (ProbeStats(primary_, &stats)) {
          primary_was_up = true;
        } else if (primary_was_up) {
          death = Clock::now();
          primary_died = true;
          continue;  // switch to the promotion probe immediately
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      if (ProbeStats(audit_, &stats) &&
          stats.find("\"role\":\"primary\"") != std::string::npos) {
        blackout_ms_.store(std::chrono::duration<double, std::milli>(
                               Clock::now() - death)
                               .count());
        promoted_seen_.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const sockaddr_in primary_;
  const sockaddr_in audit_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_seen_{false};
  std::atomic<double> blackout_ms_{-1.0};
  std::thread thread_;
};

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

std::string BuildReport(const RunState& run, const RunState* replica,
                        double elapsed_s, int threads_used,
                        int64_t server_applied, uint64_t loss,
                        const FailoverMonitor* monitor) {
  const auto all = run.latency_all.Snapshot();
  JsonWriter results;
  results.Add("clients", run.options->clients);
  results.Add("threads", threads_used);
  results.Add("duration_s", elapsed_s);
  results.Add("connected", run.connected.load());
  results.Add("reconnects", run.reconnects.load());
  results.Add("ops_sent", run.ops_sent.load());
  results.Add("ops_total", run.responses.load());
  results.Add("ops_ok", run.ops_ok.load());
  results.Add("ops_app_error", run.ops_app_error.load());
  results.Add("ops_rejected", run.rejected.load());
  results.Add("transport_errors", run.transport_errors.load());
  results.Add("throughput_ops_s",
              elapsed_s > 0.0
                  ? static_cast<double>(run.responses.load()) / elapsed_s
                  : 0.0);
  results.Add("latency_ms_mean", all.Mean());
  results.Add("latency_ms_p50", all.Quantile(0.50));
  results.Add("latency_ms_p90", all.Quantile(0.90));
  results.Add("latency_ms_p99", all.Quantile(0.99));
  results.Add("latency_ms_p999", all.Quantile(0.999));
  results.Add("latency_ms_max", all.max);
  results.Add("latency_samples_exact", all.exact);
  static const char* const kKindNames[kOpKinds] = {"op", "read", "stats",
                                                  "rebuild"};
  for (int k = 0; k < kOpKinds; ++k) {
    const auto snap = run.latency_kind[k].Snapshot();
    if (snap.count == 0) continue;
    const std::string prefix = std::string(kKindNames[k]);
    results.Add(prefix + "_count", snap.count);
    results.Add(prefix + "_ms_p50", snap.Quantile(0.50));
    results.Add(prefix + "_ms_p99", snap.Quantile(0.99));
  }
  results.Add("acked_applied", run.acked_applied.load());
  results.Add("server_ops_applied", server_applied);
  results.Add("committed_op_loss", loss);
  if (replica != nullptr) {
    const auto snap = replica->latency_all.Snapshot();
    results.Add("replica_clients", replica->options->clients);
    results.Add("replica_connected", replica->connected.load());
    results.Add("replica_reconnects", replica->reconnects.load());
    results.Add("replica_ops_total", replica->responses.load());
    results.Add("replica_ops_ok", replica->ops_ok.load());
    results.Add("replica_ops_rejected", replica->rejected.load());
    results.Add("replica_transport_errors",
                replica->transport_errors.load());
    results.Add("replica_throughput_ops_s",
                elapsed_s > 0.0
                    ? static_cast<double>(replica->responses.load()) /
                          elapsed_s
                    : 0.0);
    results.Add("replica_read_ms_p50", snap.Quantile(0.50));
    results.Add("replica_read_ms_p90", snap.Quantile(0.90));
    results.Add("replica_read_ms_p99", snap.Quantile(0.99));
  }
  if (monitor != nullptr) {
    results.Add("failover_blackout_ms", monitor->blackout_ms());
    results.Add("replica_promoted", monitor->promoted_seen());
  }
  return "{\"bench\":\"gepc_bots\",\"results\":" + results.Finish() + "}";
}

int Main(int argc, char** argv) {
  Options options;
  std::string parse_error;
  if (!ParseArgs(argc, argv, &options, &parse_error)) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return Usage();
  }
  obs::SetEnabled(true);

  RunState run;
  run.options = &options;
  if (!ResolveIPv4(options.host, options.port, &run.addr)) {
    std::fprintf(stderr, "error: --host must be an IPv4 address\n");
    return Usage();
  }

  // Replica read fleet: a second RunState with a read-only mix. Its
  // drivers run in the same worker pool but share nothing with the primary
  // fleet, so the report can split the two throughputs cleanly.
  Options replica_options;
  RunState replica_run;
  if (options.replica_port > 0) {
    replica_options = options;
    replica_options.clients = options.replica_clients;
    replica_options.mix_op = 0.0;
    replica_options.mix_rebuild = 0.0;
    replica_options.mix_read = 0.9;
    replica_options.mix_stats = 0.1;
    replica_run.options = &replica_options;
    if (!ResolveIPv4(options.replica_host, options.replica_port,
                     &replica_run.addr)) {
      std::fprintf(stderr, "error: --replica host must be an IPv4 address\n");
      return Usage();
    }
  }

  sockaddr_in audit_addr = run.addr;
  if (options.audit_port > 0) {
    const std::string audit_host =
        options.replica_host.empty() ? options.host : options.replica_host;
    if (!ResolveIPv4(audit_host, options.audit_port, &audit_addr)) {
      std::fprintf(stderr, "error: audit host must be an IPv4 address\n");
      return Usage();
    }
  }

  int threads = options.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(hw == 0 ? 4 : std::min(8u, hw));
  }
  threads = std::min(threads, options.clients);

  std::vector<std::unique_ptr<Driver>> drivers;
  const int base = options.clients / threads;
  const int extra = options.clients % threads;
  for (int t = 0; t < threads; ++t) {
    const int count = base + (t < extra ? 1 : 0);
    drivers.push_back(
        std::make_unique<Driver>(&run, count, static_cast<uint64_t>(t)));
  }
  std::vector<std::unique_ptr<Driver>> replica_drivers;
  if (options.replica_port > 0) {
    const int replica_threads =
        std::min(2, replica_options.clients);
    const int rbase = replica_options.clients / replica_threads;
    const int rextra = replica_options.clients % replica_threads;
    for (int t = 0; t < replica_threads; ++t) {
      const int count = rbase + (t < rextra ? 1 : 0);
      // Salt offset keeps replica client rngs decorrelated from the
      // primary fleet's.
      replica_drivers.push_back(std::make_unique<Driver>(
          &replica_run, count, static_cast<uint64_t>(1000 + t)));
    }
  }

  std::vector<std::thread> workers;
  const Clock::time_point start = Clock::now();
  workers.reserve(drivers.size() + replica_drivers.size());
  for (auto& driver : drivers) {
    workers.emplace_back([&driver] { driver->Run(); });
  }
  for (auto& driver : replica_drivers) {
    workers.emplace_back([&driver] { driver->Run(); });
  }

  std::unique_ptr<FailoverMonitor> monitor;
  if (options.audit_port > 0) {
    monitor = std::make_unique<FailoverMonitor>(run.addr, audit_addr);
  }

  std::this_thread::sleep_for(
      std::chrono::duration<double>(options.duration_s));
  run.stop_sending.store(true, std::memory_order_relaxed);
  replica_run.stop_sending.store(true, std::memory_order_relaxed);

  // Grace period: let in-flight responses land before tearing down.
  const Clock::time_point grace_deadline =
      Clock::now() + std::chrono::seconds(2);
  while (Clock::now() < grace_deadline) {
    uint64_t outstanding = 0;
    for (const auto& driver : drivers) outstanding += driver->OutstandingTotal();
    for (const auto& driver : replica_drivers) {
      outstanding += driver->OutstandingTotal();
    }
    if (outstanding == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  run.stop_loop.store(true, std::memory_order_relaxed);
  replica_run.stop_loop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  if (monitor != nullptr) monitor->Stop();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Zero-committed-op-loss audit: drain the server, then compare its
  // applied-op count against the acks the bots collected. With
  // --audit-port the audit goes to the (promoted) replica instead — after
  // a failover drill it must hold every op the primary acked.
  int64_t server_applied = -1;
  ControlClient control;
  bool control_ok =
      control.Connect(options.audit_port > 0 ? audit_addr : run.addr);
  if (control_ok) {
    control_ok = !control.Request("{\"cmd\":\"drain\"}").empty();
  }
  if (control_ok) {
    const std::string stats = control.Request("{\"cmd\":\"stats\"}");
    if (!stats.empty()) server_applied = FindIntField(stats, "ops_applied");
  }
  const uint64_t acked = run.acked_applied.load();
  const uint64_t loss =
      (server_applied >= 0 && acked > static_cast<uint64_t>(server_applied))
          ? acked - static_cast<uint64_t>(server_applied)
          : 0;
  if (options.send_shutdown) {
    if (control_ok) {
      control.Request("{\"cmd\":\"shutdown\"}");
    } else {
      std::fprintf(stderr,
                   "warning: control connection failed; server not shut "
                   "down\n");
    }
  }

  const std::string report = BuildReport(
      run, options.replica_port > 0 ? &replica_run : nullptr, elapsed_s,
      threads, server_applied, loss, monitor.get());
  std::fputs(report.c_str(), stdout);
  std::fputc('\n', stdout);
  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path, std::ios::trunc);
    if (out) out << report << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.json_path.c_str());
      return 1;
    }
  }

  if (run.connected.load() == 0) {
    std::fprintf(stderr, "error: no client ever connected\n");
    return 1;
  }
  if (run.responses.load() == 0) {
    std::fprintf(stderr, "error: no response ever received\n");
    return 1;
  }
  if (options.replica_port > 0 && replica_run.responses.load() == 0) {
    std::fprintf(stderr, "error: no replica response ever received\n");
    return 1;
  }
  if (server_applied < 0) {
    std::fprintf(stderr, "error: could not audit server stats after run\n");
    return 1;
  }
  if (loss > 0) {
    std::fprintf(stderr,
                 "error: committed-op loss: bots hold %llu apply acks but "
                 "the server reports %lld applied\n",
                 static_cast<unsigned long long>(acked),
                 static_cast<long long>(server_applied));
    return 1;
  }
  return 0;
}

}  // namespace bots
}  // namespace gepc

int main(int argc, char** argv) { return gepc::bots::Main(argc, argv); }
