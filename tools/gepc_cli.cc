// gepc_cli — command-line front end for the library, operating on the
// GEPC1 instance / GPLN1 plan text formats (see src/data/io.h).
//
//   gepc_cli generate --users N --events M [--seed S] [--xi X] [--eta E]
//                     [--conflict R] [--fee F] --out inst.gepc
//   gepc_cli stats    --in inst.gepc
//   gepc_cli solve    --in inst.gepc [--algorithm greedy|gap|regret]
//                     [--no-topup] [--threads N] [--shards K]
//                     [--plan-out plan.gpln] [--metrics[=FILE]]
//                     [--trace FILE]
//   gepc_cli validate --in inst.gepc --plan plan.gpln
//   gepc_cli itinerary --in inst.gepc --plan plan.gpln [--user N]
//   gepc_cli apply    --in inst.gepc --plan plan.gpln --op SPEC [--op SPEC...]
//                     [--ops-file trace.gops] [--plan-out out.gpln] [--reorder]
//                     [--shards K [--rebalance-every N] [--rebalance-skew X]]
//   gepc_cli schedule --users N --drafts D --candidates C [--seed S]
//                     [--lambda L] [--degree K] [--threads T]
//                     [--restarts R] [--passes P] [--exhaustive]
//                     [--no-memoize]
//   gepc_cli sim      --scenario scheduling|affinity|mixed [--days N]
//                     [--seed S] [--users N] [--events M] [--resolve]
//   gepc_cli ckpt-inspect --ckpt file.gckp | --dir ckpt_dir
//   gepc_cli journal-inspect --journal file.gops
//
//   SPEC is one of:
//     eta:EVENT:VALUE     xi:EVENT:VALUE       time:EVENT:START:END
//     budget:USER:VALUE   mu:USER:EVENT:VALUE  loc:EVENT:X:Y

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/feasibility.h"
#include "core/itinerary.h"
#include "core/plan_diff.h"
#include "data/generator.h"
#include "data/io.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "iep/batch.h"
#include "data/friendship.h"
#include "sched/schedule.h"
#include "shard/rebalance.h"
#include "shard/sharded_solver.h"
#include "sim/scenarios.h"
#include "iep/op_spec.h"
#include "iep/planner.h"
#include "iep/trace.h"
#include "service/journal.h"

namespace gepc {
namespace cli {

constexpr char kUsage[] =
    "usage: gepc_cli <command> [options]\n"
    "\n"
    "  generate  --users N --events M --out inst.gepc\n"
    "            [--seed S] [--xi X] [--eta E] [--conflict R] [--fee F]\n"
    "  stats     --in inst.gepc\n"
    "  solve     --in inst.gepc [--algorithm greedy|gap|regret]\n"
    "            [--no-topup] [--threads N] [--shards K]\n"
    "            [--plan-out plan.gpln] [--faults SPEC]\n"
    "            [--metrics[=FILE]] [--trace FILE]\n"
    "  validate  --in inst.gepc --plan plan.gpln\n"
    "  itinerary --in inst.gepc --plan plan.gpln [--user N]\n"
    "  apply     --in inst.gepc --plan plan.gpln --op SPEC [--op SPEC...]\n"
    "            [--ops-file trace.gops] [--plan-out out.gpln] [--reorder]\n"
    "            [--shards K [--rebalance-every N] [--rebalance-skew X]]\n"
    "  schedule  --users N --drafts D --candidates C [--seed S]\n"
    "            [--lambda L] [--degree K] [--threads T] [--restarts R]\n"
    "            [--passes P] [--exhaustive] [--no-memoize] [--faults SPEC]\n"
    "  sim       --scenario scheduling|affinity|mixed [--days N] [--seed S]\n"
    "            [--users N] [--events M] [--resolve] [--faults SPEC]\n"
    "  ckpt-inspect --ckpt file.gckp | --dir ckpt_dir\n"
    "  journal-inspect --journal file.gops\n"
    "\n"
    "  SPEC is one of:\n"
    "    eta:EVENT:VALUE     xi:EVENT:VALUE       time:EVENT:START:END\n"
    "    budget:USER:VALUE   mu:USER:EVENT:VALUE  loc:EVENT:X:Y\n"
    "\n"
    "(see docs/cli.md; the online service front end is gepc_serve)\n";

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> ops;
  std::set<std::string> flags;
  bool reorder = false;
  bool no_topup = false;
};

/// The flags each command accepts; anything else is rejected loudly so a
/// typo ("--uesrs 100") cannot silently fall back to a default.
struct CommandSpec {
  std::set<std::string> value_options;
  std::set<std::string> bool_flags;
  /// Flags whose value is optional: `--metrics` (stdout) or
  /// `--metrics=FILE`. The separate-token form `--metrics FILE` is NOT
  /// accepted for these — the next token could be a stray positional.
  std::set<std::string> optional_value_options;
};

const std::map<std::string, CommandSpec>& Commands() {
  static const std::map<std::string, CommandSpec> kCommands = {
      {"generate",
       {{"users", "events", "seed", "xi", "eta", "conflict", "fee", "out"},
        {},
        {}}},
      {"stats", {{"in"}, {}, {}}},
      {"solve",
       {{"in", "algorithm", "plan-out", "threads", "shards", "faults",
         "trace"},
        {"no-topup"},
        {"metrics"}}},
      {"validate", {{"in", "plan"}, {}, {}}},
      {"itinerary", {{"in", "plan", "user"}, {}, {}}},
      {"apply",
       {{"in", "plan", "op", "ops-file", "plan-out", "shards",
         "rebalance-every", "rebalance-skew"},
        {"reorder"},
        {}}},
      {"schedule",
       {{"users", "drafts", "candidates", "seed", "lambda", "degree",
         "threads", "restarts", "passes", "faults"},
        {"exhaustive", "no-memoize"},
        {}}},
      {"sim",
       {{"scenario", "days", "seed", "users", "events", "faults"},
        {"resolve"},
        {}}},
      {"ckpt-inspect", {{"ckpt", "dir"}, {}, {}}},
      {"journal-inspect", {{"journal"}, {}, {}}},
  };
  return kCommands;
}

/// Strict parse: unknown commands, unknown flags, missing values and stray
/// positional arguments all fail with a message in `error`.
bool ParseArgs(int argc, char** argv, Args* args, std::string* error) {
  if (argc < 2) {
    *error = "missing command";
    return false;
  }
  args->command = argv[1];
  const auto spec_it = Commands().find(args->command);
  if (spec_it == Commands().end()) {
    *error = "unknown command '" + args->command + "'";
    return false;
  }
  const CommandSpec& spec = spec_it->second;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected argument '" + arg + "'";
      return false;
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    if (spec.bool_flags.count(name) > 0) {
      if (has_inline) {
        *error = "flag '--" + name + "' does not take a value";
        return false;
      }
      args->flags.insert(name);
      if (name == "reorder") args->reorder = true;
      if (name == "no-topup") args->no_topup = true;
      continue;
    }
    if (spec.optional_value_options.count(name) > 0) {
      args->options[name] = has_inline ? inline_value : "";
      continue;
    }
    if (spec.value_options.count(name) == 0) {
      *error = "unknown flag '--" + name + "' for command '" + args->command +
               "'";
      return false;
    }
    std::string value;
    if (has_inline) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        *error = "flag '" + arg + "' needs a value";
        return false;
      }
      value = argv[++i];
    }
    if (name == "op") {
      args->ops.push_back(value);
    } else {
      args->options[name] = value;
    }
  }
  return true;
}

std::string GetOption(const Args& args, const std::string& key,
                      const std::string& fallback = "") {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// A bad flag *value* (e.g. --threads zero) is a usage error, same as a
/// bad flag name: message + usage text, exit 64.
int UsageFail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(), kUsage);
  return 64;
}

/// Parses a strictly positive integer; rejects trailing garbage ("4x").
bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (value < 1 || value > 1'000'000) return false;
  *out = static_cast<int>(value);
  return true;
}

int CmdGenerate(const Args& args) {
  GeneratorConfig config;
  config.num_users = std::atoi(GetOption(args, "users", "100").c_str());
  config.num_events = std::atoi(GetOption(args, "events", "20").c_str());
  config.seed = std::strtoull(GetOption(args, "seed", "42").c_str(), nullptr, 10);
  config.mean_xi = std::atof(GetOption(args, "xi", "3").c_str());
  config.mean_eta = std::atof(GetOption(args, "eta", "10").c_str());
  config.conflict_ratio = std::atof(GetOption(args, "conflict", "0.25").c_str());
  config.mean_fee = std::atof(GetOption(args, "fee", "0").c_str());
  const std::string out = GetOption(args, "out");
  if (out.empty()) return Fail("generate needs --out FILE");

  auto instance = GenerateInstance(config);
  if (!instance.ok()) return Fail(instance.status().ToString());
  const Status saved = SaveInstanceToFile(*instance, out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("wrote %s: %d users, %d events, sum xi = %lld\n", out.c_str(),
              instance->num_users(), instance->num_events(),
              static_cast<long long>(instance->TotalLowerBound()));
  return 0;
}

int CmdStats(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  int64_t positive_pairs = 0;
  for (int i = 0; i < instance->num_users(); ++i) {
    for (int j = 0; j < instance->num_events(); ++j) {
      if (instance->utility(i, j) > 0.0) ++positive_pairs;
    }
  }
  std::printf("users:            %d\n", instance->num_users());
  std::printf("events:           %d\n", instance->num_events());
  std::printf("sum of xi:        %lld\n",
              static_cast<long long>(instance->TotalLowerBound()));
  std::printf("conflict ratio:   %.3f\n",
              instance->conflicts().ConflictRatio());
  std::printf("conflict pairs:   %lld\n",
              static_cast<long long>(instance->conflicts().conflict_pair_count()));
  std::printf("positive (u,e):   %lld (%.1f%% of matrix)\n",
              static_cast<long long>(positive_pairs),
              100.0 * static_cast<double>(positive_pairs) /
                  (static_cast<double>(instance->num_users()) *
                   static_cast<double>(instance->num_events())));
  return 0;
}

int CmdSolve(const Args& args) {
  const std::string trace_file = GetOption(args, "trace");
  if (!trace_file.empty()) obs::TraceRecorder::Global().Start();

  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());

  ShardedGepcOptions options;
  const std::string algorithm = GetOption(args, "algorithm", "greedy");
  if (algorithm == "gap") {
    options.gepc.algorithm = GepcAlgorithm::kGapBased;
  } else if (algorithm == "greedy") {
    options.gepc.algorithm = GepcAlgorithm::kGreedy;
  } else if (algorithm == "regret") {
    options.gepc.algorithm = GepcAlgorithm::kRegret;
  } else {
    return UsageFail("--algorithm must be 'greedy', 'gap' or 'regret'");
  }
  options.gepc.run_topup = !args.no_topup;
  if (!ParsePositiveInt(GetOption(args, "threads", "1"), &options.threads)) {
    return UsageFail("--threads must be a positive integer");
  }
  if (!ParsePositiveInt(GetOption(args, "shards", "1"), &options.shards)) {
    return UsageFail("--shards must be a positive integer");
  }

  ShardedGepcStats stats;
  auto result = SolveSharded(*instance, options, &stats);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("algorithm:        %s\n",
              GepcAlgorithmName(options.gepc.algorithm));
  std::printf("total utility:    %.4f\n", result->total_utility);
  std::printf("assignments:      %lld\n",
              static_cast<long long>(result->plan.TotalAssignments()));
  std::printf("events below xi:  %d\n", result->events_below_lower_bound);
  if (options.shards > 1) {
    std::printf("shards:           %d (%d interior / %d boundary users)\n",
                stats.shards, stats.interior_users, stats.boundary_users);
    std::printf("merge added:      %d flow + %d repair + %d topup\n",
                stats.merge_flow_assigned, stats.lower_bound_repair_added,
                stats.merge_topup_added);
  }

  const std::string plan_out = GetOption(args, "plan-out");
  if (!plan_out.empty()) {
    const Status saved = SavePlanToFile(result->plan, plan_out);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("plan written to:  %s\n", plan_out.c_str());
  }

  if (!trace_file.empty()) {
    obs::TraceRecorder::Global().Stop();
    const Status written =
        obs::TraceRecorder::Global().WriteChromeTrace(trace_file);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("trace written to: %s (%zu spans)\n", trace_file.c_str(),
                obs::TraceRecorder::Global().span_count());
  }
  if (args.options.count("metrics") > 0) {
    const std::string text = obs::Registry::Global().RenderPrometheusText();
    const std::string metrics_file = GetOption(args, "metrics");
    if (metrics_file.empty()) {
      std::printf("--- metrics ---\n%s", text.c_str());
    } else {
      std::FILE* out = std::fopen(metrics_file.c_str(), "w");
      if (out == nullptr) {
        return Fail("cannot write metrics file " + metrics_file);
      }
      std::fputs(text.c_str(), out);
      std::fclose(out);
      std::printf("metrics written:  %s\n", metrics_file.c_str());
    }
  }
  return 0;
}

int CmdValidate(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());

  const Status full = ValidatePlan(*instance, *plan);
  if (full.ok()) {
    std::printf("plan is feasible (all four GEPC constraints)\n");
    std::printf("total utility: %.4f\n", plan->TotalUtility(*instance));
    return 0;
  }
  ValidationOptions lenient;
  lenient.check_lower_bounds = false;
  const Status user_side = ValidatePlan(*instance, *plan, lenient);
  if (user_side.ok()) {
    std::printf("plan satisfies constraints 1-3; lower bounds violated:\n");
  }
  std::printf("violation: %s\n", full.ToString().c_str());
  return 2;
}

int CmdItinerary(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());
  const std::string user_option = GetOption(args, "user");
  if (!user_option.empty()) {
    const int user = std::atoi(user_option.c_str());
    if (user < 0 || user >= instance->num_users()) {
      return Fail("--user out of range");
    }
    std::printf("%s", BuildItinerary(*instance, *plan, user).ToString().c_str());
    return 0;
  }
  for (const Itinerary& itinerary : BuildAllItineraries(*instance, *plan)) {
    std::printf("%s\n", itinerary.ToString().c_str());
  }
  return 0;
}

int CmdApply(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());
  std::vector<AtomicOp> ops;
  const std::string ops_file = GetOption(args, "ops-file");
  if (!ops_file.empty()) {
    auto loaded = LoadOpsFromFile(ops_file);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    ops = *std::move(loaded);
  }
  for (const std::string& spec : args.ops) {
    auto op = ParseOpSpec(spec);
    if (!op.ok()) return Fail(op.status().ToString());
    ops.push_back(*std::move(op));
  }
  if (ops.empty()) {
    return Fail("apply needs --op SPEC or --ops-file FILE");
  }

  int shards = 1;
  if (!ParsePositiveInt(GetOption(args, "shards", "1"), &shards)) {
    return UsageFail("--shards must be a positive integer");
  }
  int rebalance_every = 0;
  const std::string every_option = GetOption(args, "rebalance-every", "0");
  if (every_option != "0" &&
      !ParsePositiveInt(every_option, &rebalance_every)) {
    return UsageFail("--rebalance-every must be a non-negative integer");
  }
  double rebalance_skew = 2.0;
  {
    const std::string skew_option = GetOption(args, "rebalance-skew", "2.0");
    char* end = nullptr;
    rebalance_skew = std::strtod(skew_option.c_str(), &end);
    if (skew_option.empty() || end == nullptr || *end != '\0' ||
        rebalance_skew < 0.0) {
      return UsageFail("--rebalance-skew must be a non-negative number");
    }
  }
  if (shards < 2 && (args.options.count("rebalance-every") != 0 ||
                     args.options.count("rebalance-skew") != 0)) {
    return UsageFail("--rebalance-every/--rebalance-skew need --shards >= 2");
  }
  if (shards >= 2 && args.reorder) {
    return UsageFail(
        "--reorder cannot be combined with --shards: shard tracking "
        "replays ops in submission order");
  }

  auto planner = IncrementalPlanner::Create(*std::move(instance),
                                            *std::move(plan));
  if (!planner.ok()) return Fail(planner.status().ToString());
  const Plan before_plan = planner->plan();
  const double before = before_plan.TotalUtility(planner->instance());

  BatchResult batch;
  ShardTrackerStats shard_stats;
  double final_skew = 0.0;
  size_t boundary_users = 0;
  if (shards >= 2) {
    // ApplyBatch cannot interleave tracker maintenance between ops, so the
    // sharded path replays the sequential loop here: one Apply per op,
    // stopping at the first validation failure (prior ops stay applied),
    // with routing / migration / load accounting after each success.
    ShardTracker tracker(planner->instance(), shards);
    for (const AtomicOp& op : ops) {
      const auto started = std::chrono::steady_clock::now();
      auto step = planner->Apply(op);
      if (!step.ok()) return Fail(step.status().ToString());
      const std::vector<int> routed = tracker.RouteOp(planner->instance(), op);
      const Status migrated = tracker.ApplyMigration(planner->instance(), op);
      if (!migrated.ok()) return Fail(migrated.ToString());
      tracker.RecordOpCost(
          routed, std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - started)
                      .count());
      batch.negative_impact += step->negative_impact;
      ++batch.ops_applied;
      if (rebalance_every > 0 && batch.ops_applied % rebalance_every == 0 &&
          tracker.Skew() >= rebalance_skew) {
        auto report = tracker.Rebalance(planner->instance());
        if (!report.ok()) return Fail(report.status().ToString());
      }
    }
    batch.plan = planner->plan();
    batch.total_utility = batch.plan.TotalUtility(planner->instance());
    for (int j = 0; j < planner->instance().num_events(); ++j) {
      if (batch.plan.attendance(j) <
          planner->instance().event(j).lower_bound) {
        ++batch.events_below_lower_bound;
      }
    }
    shard_stats = tracker.stats();
    final_skew = tracker.Skew();
    boundary_users = tracker.partition().boundary_users.size();
  } else {
    auto applied = ApplyBatch(&*planner, std::move(ops),
                              args.reorder ? BatchMode::kReordered
                                           : BatchMode::kSequential);
    if (!applied.ok()) return Fail(applied.status().ToString());
    batch = *std::move(applied);
  }

  std::printf("ops applied:      %d\n", batch.ops_applied);
  std::printf("utility:          %.4f -> %.4f\n", before,
              batch.total_utility);
  std::printf("negative impact:  %lld\n",
              static_cast<long long>(batch.negative_impact));
  std::printf("events below xi:  %d\n", batch.events_below_lower_bound);
  if (args.reorder) {
    std::printf("final re-offer:   +%d attendances\n",
                batch.added_by_final_reoffer);
  }
  if (shards >= 2) {
    std::printf("shards:           %d\n", shards);
    std::printf("migrations:       %llu (%llu users reclassified, "
                "%llu events re-homed)\n",
                static_cast<unsigned long long>(shard_stats.migrations),
                static_cast<unsigned long long>(
                    shard_stats.users_reclassified),
                static_cast<unsigned long long>(shard_stats.events_moved));
    std::printf("full rebuilds:    %llu\n",
                static_cast<unsigned long long>(shard_stats.full_rebuilds));
    std::printf("rebalances:       %llu\n",
                static_cast<unsigned long long>(shard_stats.rebalances));
    std::printf("final skew:       %.3f (%zu boundary users)\n", final_skew,
                boundary_users);
  }
  std::printf("changed plans:\n%s",
              DiffPlans(planner->instance(), before_plan, batch.plan)
                  .ToString()
                  .c_str());

  const std::string plan_out = GetOption(args, "plan-out");
  if (!plan_out.empty()) {
    const Status saved = SavePlanToFile(batch.plan, plan_out);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("plan written to:  %s\n", plan_out.c_str());
  }
  return 0;
}

/// Prints one checkpoint's header, validity and state summary. A torn or
/// corrupt file is reported (with the exact defect), not a crash — this is
/// the operator's "can I still recover from this?" probe.
int InspectOneCheckpoint(const std::string& path) {
  std::printf("checkpoint:       %s\n", path.c_str());
  auto loaded = LoadCheckpoint(path);
  if (!loaded.ok()) {
    std::printf("valid:            no\n");
    std::printf("defect:           %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("valid:            yes\n");
  std::printf("version:          %llu\n",
              static_cast<unsigned long long>(loaded->version));
  std::printf("users:            %d\n", loaded->instance.num_users());
  std::printf("events:           %d\n", loaded->instance.num_events());
  std::printf("assignments:      %lld\n",
              static_cast<long long>(loaded->plan.TotalAssignments()));
  std::printf("utility:          %.4f\n",
              loaded->plan.TotalUtility(loaded->instance));
  return 0;
}

/// Organizer-side scheduling demo: generate a seeded draft problem, search
/// (or exhaustively enumerate) candidate (slot, venue) configurations with
/// the GEPC solver as attendance oracle, and report the chosen schedule.
int CmdSchedule(const Args& args) {
  ScheduleGenConfig gen;
  if (!ParsePositiveInt(GetOption(args, "users", "200"), &gen.num_users)) {
    return UsageFail("--users must be a positive integer");
  }
  if (!ParsePositiveInt(GetOption(args, "drafts", "4"), &gen.num_drafts)) {
    return UsageFail("--drafts must be a positive integer");
  }
  if (!ParsePositiveInt(GetOption(args, "candidates", "3"),
                        &gen.candidates_per_draft)) {
    return UsageFail("--candidates must be a positive integer");
  }
  gen.seed = std::strtoull(GetOption(args, "seed", "42").c_str(), nullptr, 10);

  ScheduleOptions options;
  options.seed = gen.seed;
  if (!ParsePositiveInt(GetOption(args, "threads", "1"), &options.threads)) {
    return UsageFail("--threads must be a positive integer");
  }
  if (!ParsePositiveInt(GetOption(args, "restarts", "2"),
                        &options.restarts)) {
    return UsageFail("--restarts must be a positive integer");
  }
  if (!ParsePositiveInt(GetOption(args, "passes", "4"),
                        &options.max_passes)) {
    return UsageFail("--passes must be a positive integer");
  }
  options.memoize = args.flags.count("no-memoize") == 0;

  double lambda = 0.0;
  {
    const std::string lambda_option = GetOption(args, "lambda", "0");
    char* end = nullptr;
    lambda = std::strtod(lambda_option.c_str(), &end);
    if (lambda_option.empty() || end == nullptr || *end != '\0' ||
        lambda < 0.0) {
      return UsageFail("--lambda must be a non-negative number");
    }
  }
  int degree = 4;
  if (!ParsePositiveInt(GetOption(args, "degree", "4"), &degree)) {
    return UsageFail("--degree must be a positive integer");
  }

  ScheduleProblem problem = GenerateScheduleProblem(gen);
  FriendshipGraph friends;
  if (lambda > 0.0) {
    FriendshipConfig fc;
    fc.mean_degree = static_cast<double>(degree);
    fc.seed = gen.seed + 7;
    friends = GenerateFriendshipGraph(problem.users, fc);
    options.affinity.graph = &friends;
    options.affinity.lambda = lambda;
  }

  ScheduleCache cache;
  const bool exhaustive = args.flags.count("exhaustive") > 0;
  auto result = exhaustive ? EnumerateSchedule(problem, options, &cache)
                           : SolveSchedule(problem, options, &cache);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("mode:             %s\n", exhaustive ? "exhaustive" : "search");
  std::printf("drafts:           %d x %d candidates\n", gen.num_drafts,
              gen.candidates_per_draft);
  for (size_t d = 0; d < result->choice.size(); ++d) {
    const int c = result->choice[d];
    if (c < 0) {
      std::printf("  draft %-3zu       unscheduled\n", d);
      continue;
    }
    const ScheduleCandidate& cand = problem.drafts[d].candidates[c];
    std::printf("  draft %-3zu       candidate %d: slot %s, venue "
                "(%.1f, %.1f), capacity %d\n",
                d, c, FormatInterval(cand.slot).c_str(), cand.venue.x,
                cand.venue.y, cand.capacity);
  }
  std::printf("score:            %.4f\n", result->score);
  std::printf("total utility:    %.4f\n", result->total_utility);
  if (lambda > 0.0) {
    std::printf("affinity utility: %.4f (lambda %.3f)\n",
                result->affinity_utility, lambda);
  }
  std::printf("attendance:       %d\n", result->attendance);
  std::printf("oracle calls:     %lld (%lld cache hits)\n",
              static_cast<long long>(result->stats.oracle_calls),
              static_cast<long long>(result->stats.cache_hits));
  if (result->stats.degraded_candidates > 0 ||
      result->stats.skipped_candidates > 0) {
    std::printf("faults:           %lld degraded, %lld skipped\n",
                static_cast<long long>(result->stats.degraded_candidates),
                static_cast<long long>(result->stats.skipped_candidates));
  }
  std::printf("search:           %lld swaps, %d passes, %d restarts\n",
              static_cast<long long>(result->stats.swap_moves),
              result->stats.passes, result->stats.restarts);
  return 0;
}

/// Named multi-day scenarios (src/sim/scenarios.h): the preset picks the
/// workload shape; --days/--users/--events/--resolve override on top.
int CmdSim(const Args& args) {
  const std::string scenario = GetOption(args, "scenario");
  if (scenario.empty()) {
    return UsageFail("sim needs --scenario scheduling|affinity|mixed");
  }
  ScenarioPreset preset;
  if (!ParseScenarioPreset(scenario, &preset)) {
    return UsageFail("--scenario must be 'scheduling', 'affinity' or "
                     "'mixed'");
  }
  const uint64_t seed =
      std::strtoull(GetOption(args, "seed", "42").c_str(), nullptr, 10);
  SimulationConfig config = MakeScenarioConfig(preset, seed);
  if (args.options.count("days") > 0 &&
      !ParsePositiveInt(GetOption(args, "days"), &config.num_days)) {
    return UsageFail("--days must be a positive integer");
  }
  if (args.options.count("users") > 0 &&
      !ParsePositiveInt(GetOption(args, "users"), &config.base.num_users)) {
    return UsageFail("--users must be a positive integer");
  }
  if (args.options.count("events") > 0 &&
      !ParsePositiveInt(GetOption(args, "events"), &config.base.num_events)) {
    return UsageFail("--events must be a positive integer");
  }
  config.incremental = args.flags.count("resolve") == 0;

  auto result = RunSimulation(config);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("scenario:         %s (%s)\n", ScenarioPresetName(preset),
              config.incremental ? "incremental" : "re-solve");
  std::printf("%5s %6s %12s %12s %9s %9s\n", "day", "ops", "utility",
              "affinity", "below-xi", "sec");
  int total_ops = 0;
  for (const DayMetrics& day : result->days) {
    total_ops += day.ops;
    std::printf("%5d %6d %12.4f %12.4f %9d %9.3f\n", day.day, day.ops,
                day.total_utility, day.affinity_utility,
                day.events_below_lower_bound, day.plan_seconds);
  }
  std::printf("final utility:    %.4f\n", result->final_utility);
  std::printf("final affinity:   %.4f\n", result->final_affinity_utility);
  std::printf("total ops:        %d\n", total_ops);
  std::printf("plan seconds:     %.3f\n", result->total_plan_seconds);
  return 0;
}

int CmdCkptInspect(const Args& args) {
  const std::string ckpt = GetOption(args, "ckpt");
  const std::string dir = GetOption(args, "dir");
  if (ckpt.empty() == dir.empty()) {
    return UsageFail("ckpt-inspect needs exactly one of --ckpt or --dir");
  }
  if (!ckpt.empty()) return InspectOneCheckpoint(ckpt);

  auto refs = ListCheckpoints(dir);
  if (!refs.ok()) return Fail(refs.status().ToString());
  if (refs->empty()) {
    std::printf("no checkpoints in %s\n", dir.c_str());
    return 0;
  }
  // Newest first, matching the order recovery tries them in.
  int defects = 0;
  for (size_t i = 0; i < refs->size(); ++i) {
    if (i > 0) std::printf("\n");
    if (InspectOneCheckpoint((*refs)[i].path) != 0) ++defects;
  }
  std::printf("\ncheckpoints:      %zu (%d defective)\n", refs->size(),
              defects);
  return defects == 0 ? 0 : 1;
}

/// Prints a GOPS1 journal's base header, row count, sequence span and torn
/// tail. Mirrors ckpt-inspect: the operator's "what survived the crash?"
/// probe. A missing file or interior corruption is a defect (exit 1); a
/// torn tail alone is not — recovery discards it by design — but it is
/// reported so the operator knows a crash interrupted an append.
int CmdJournalInspect(const Args& args) {
  const std::string path = GetOption(args, "journal");
  if (path.empty()) return UsageFail("journal-inspect needs --journal FILE");
  std::printf("journal:          %s\n", path.c_str());
  auto scan = ScanJournalFile(path);
  if (!scan.ok()) {
    std::printf("valid:            no\n");
    std::printf("defect:           %s\n", scan.status().ToString().c_str());
    return 1;
  }
  std::printf("valid:            yes\n");
  std::printf("base sequence:    %llu%s\n",
              static_cast<unsigned long long>(scan->base_sequence),
              scan->base_sequence > 0 ? " (compacted)" : "");
  std::printf("committed rows:   %zu\n", scan->ops.size());
  if (!scan->ops.empty()) {
    std::printf("sequence span:    %llu..%llu\n",
                static_cast<unsigned long long>(scan->base_sequence + 1),
                static_cast<unsigned long long>(scan->base_sequence +
                                                scan->ops.size()));
  }
  std::printf("committed bytes:  %lld\n",
              static_cast<long long>(scan->committed_bytes));
  std::printf("torn bytes:       %lld%s\n",
              static_cast<long long>(scan->torn_bytes),
              scan->torn_bytes > 0 ? " (torn tail: crash mid-append; "
                                     "recovery discards it)"
                                   : "");
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  std::string error;
  if (!ParseArgs(argc, argv, &args, &error)) {
    std::fprintf(stderr, "error: %s\n\n%s", error.c_str(), kUsage);
    return 64;
  }
  // Fault injection (docs/fault-injection.md): --faults SPEC (solve) and
  // the GEPC_FAULTS environment variable; a bad spec is a usage error.
  const std::string faults = GetOption(args, "faults");
  if (!faults.empty()) {
    const Status armed = fault::ArmFromSpec(faults);
    if (!armed.ok()) return UsageFail("--faults: " + armed.ToString());
  }
  const Status env_armed = fault::ArmFromEnv();
  if (!env_armed.ok()) return UsageFail("GEPC_FAULTS: " +
                                        env_armed.ToString());
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "solve") return CmdSolve(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "apply") return CmdApply(args);
  if (args.command == "itinerary") return CmdItinerary(args);
  if (args.command == "schedule") return CmdSchedule(args);
  if (args.command == "sim") return CmdSim(args);
  if (args.command == "ckpt-inspect") return CmdCkptInspect(args);
  if (args.command == "journal-inspect") return CmdJournalInspect(args);
  std::fprintf(stderr, "%s", kUsage);  // unreachable: ParseArgs validated
  return 64;
}

}  // namespace cli
}  // namespace gepc

int main(int argc, char** argv) { return gepc::cli::Main(argc, argv); }
