// gepc_cli — command-line front end for the library, operating on the
// GEPC1 instance / GPLN1 plan text formats (see src/data/io.h).
//
//   gepc_cli generate --users N --events M [--seed S] [--xi X] [--eta E]
//                     [--conflict R] [--fee F] --out inst.gepc
//   gepc_cli stats    --in inst.gepc
//   gepc_cli solve    --in inst.gepc [--algorithm greedy|gap|regret]
//                     [--no-topup]
//                     [--plan-out plan.gpln]
//   gepc_cli validate --in inst.gepc --plan plan.gpln
//   gepc_cli itinerary --in inst.gepc --plan plan.gpln [--user N]
//   gepc_cli apply    --in inst.gepc --plan plan.gpln --op SPEC [--op SPEC...]
//                     [--ops-file trace.gops] [--plan-out out.gpln] [--reorder]
//
//   SPEC is one of:
//     eta:EVENT:VALUE     xi:EVENT:VALUE       time:EVENT:START:END
//     budget:USER:VALUE   mu:USER:EVENT:VALUE  loc:EVENT:X:Y

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/feasibility.h"
#include "core/itinerary.h"
#include "core/plan_diff.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/solver.h"
#include "iep/batch.h"
#include "iep/planner.h"
#include "iep/trace.h"

namespace gepc {
namespace cli {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> ops;
  bool reorder = false;
  bool no_topup = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reorder") {
      args.reorder = true;
    } else if (arg == "--no-topup") {
      args.no_topup = true;
    } else if (arg == "--op" && i + 1 < argc) {
      args.ops.push_back(argv[++i]);
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.options[arg.substr(2)] = argv[++i];
    }
  }
  return args;
}

std::string GetOption(const Args& args, const std::string& key,
                      const std::string& fallback = "") {
  auto it = args.options.find(key);
  return it == args.options.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Splits "a:b:c" into fields.
std::vector<std::string> SplitSpec(const std::string& spec) {
  std::vector<std::string> fields;
  size_t begin = 0;
  while (begin <= spec.size()) {
    const size_t colon = spec.find(':', begin);
    if (colon == std::string::npos) {
      fields.push_back(spec.substr(begin));
      break;
    }
    fields.push_back(spec.substr(begin, colon - begin));
    begin = colon + 1;
  }
  return fields;
}

Result<AtomicOp> ParseOp(const std::string& spec) {
  const std::vector<std::string> f = SplitSpec(spec);
  auto need = [&](size_t n) -> Status {
    if (f.size() != n) {
      return Status::InvalidArgument("op '" + spec + "' needs " +
                                     std::to_string(n - 1) + " fields");
    }
    return Status::OK();
  };
  if (f.empty()) return Status::InvalidArgument("empty op spec");
  if (f[0] == "eta") {
    GEPC_RETURN_IF_ERROR(need(3));
    return AtomicOp::UpperBoundChange(std::atoi(f[1].c_str()),
                                      std::atoi(f[2].c_str()));
  }
  if (f[0] == "xi") {
    GEPC_RETURN_IF_ERROR(need(3));
    return AtomicOp::LowerBoundChange(std::atoi(f[1].c_str()),
                                      std::atoi(f[2].c_str()));
  }
  if (f[0] == "time") {
    GEPC_RETURN_IF_ERROR(need(4));
    return AtomicOp::TimeChange(
        std::atoi(f[1].c_str()),
        {std::atoi(f[2].c_str()), std::atoi(f[3].c_str())});
  }
  if (f[0] == "budget") {
    GEPC_RETURN_IF_ERROR(need(3));
    return AtomicOp::BudgetChange(std::atoi(f[1].c_str()),
                                  std::atof(f[2].c_str()));
  }
  if (f[0] == "mu") {
    GEPC_RETURN_IF_ERROR(need(4));
    return AtomicOp::UtilityChange(std::atoi(f[1].c_str()),
                                   std::atoi(f[2].c_str()),
                                   std::atof(f[3].c_str()));
  }
  if (f[0] == "loc") {
    GEPC_RETURN_IF_ERROR(need(4));
    return AtomicOp::LocationChange(
        std::atoi(f[1].c_str()),
        {std::atof(f[2].c_str()), std::atof(f[3].c_str())});
  }
  return Status::InvalidArgument("unknown op kind '" + f[0] + "'");
}

int CmdGenerate(const Args& args) {
  GeneratorConfig config;
  config.num_users = std::atoi(GetOption(args, "users", "100").c_str());
  config.num_events = std::atoi(GetOption(args, "events", "20").c_str());
  config.seed = std::strtoull(GetOption(args, "seed", "42").c_str(), nullptr, 10);
  config.mean_xi = std::atof(GetOption(args, "xi", "3").c_str());
  config.mean_eta = std::atof(GetOption(args, "eta", "10").c_str());
  config.conflict_ratio = std::atof(GetOption(args, "conflict", "0.25").c_str());
  config.mean_fee = std::atof(GetOption(args, "fee", "0").c_str());
  const std::string out = GetOption(args, "out");
  if (out.empty()) return Fail("generate needs --out FILE");

  auto instance = GenerateInstance(config);
  if (!instance.ok()) return Fail(instance.status().ToString());
  const Status saved = SaveInstanceToFile(*instance, out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::printf("wrote %s: %d users, %d events, sum xi = %lld\n", out.c_str(),
              instance->num_users(), instance->num_events(),
              static_cast<long long>(instance->TotalLowerBound()));
  return 0;
}

int CmdStats(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  int64_t positive_pairs = 0;
  for (int i = 0; i < instance->num_users(); ++i) {
    for (int j = 0; j < instance->num_events(); ++j) {
      if (instance->utility(i, j) > 0.0) ++positive_pairs;
    }
  }
  std::printf("users:            %d\n", instance->num_users());
  std::printf("events:           %d\n", instance->num_events());
  std::printf("sum of xi:        %lld\n",
              static_cast<long long>(instance->TotalLowerBound()));
  std::printf("conflict ratio:   %.3f\n",
              instance->conflicts().ConflictRatio());
  std::printf("conflict pairs:   %lld\n",
              static_cast<long long>(instance->conflicts().conflict_pair_count()));
  std::printf("positive (u,e):   %lld (%.1f%% of matrix)\n",
              static_cast<long long>(positive_pairs),
              100.0 * static_cast<double>(positive_pairs) /
                  (static_cast<double>(instance->num_users()) *
                   static_cast<double>(instance->num_events())));
  return 0;
}

int CmdSolve(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());

  GepcOptions options;
  const std::string algorithm = GetOption(args, "algorithm", "greedy");
  if (algorithm == "gap") {
    options.algorithm = GepcAlgorithm::kGapBased;
  } else if (algorithm == "greedy") {
    options.algorithm = GepcAlgorithm::kGreedy;
  } else if (algorithm == "regret") {
    options.algorithm = GepcAlgorithm::kRegret;
  } else {
    return Fail("--algorithm must be 'greedy', 'gap' or 'regret'");
  }
  options.run_topup = !args.no_topup;

  auto result = SolveGepc(*instance, options);
  if (!result.ok()) return Fail(result.status().ToString());
  std::printf("algorithm:        %s\n", GepcAlgorithmName(options.algorithm));
  std::printf("total utility:    %.4f\n", result->total_utility);
  std::printf("assignments:      %lld\n",
              static_cast<long long>(result->plan.TotalAssignments()));
  std::printf("events below xi:  %d\n", result->events_below_lower_bound);

  const std::string plan_out = GetOption(args, "plan-out");
  if (!plan_out.empty()) {
    const Status saved = SavePlanToFile(result->plan, plan_out);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("plan written to:  %s\n", plan_out.c_str());
  }
  return 0;
}

int CmdValidate(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());

  const Status full = ValidatePlan(*instance, *plan);
  if (full.ok()) {
    std::printf("plan is feasible (all four GEPC constraints)\n");
    std::printf("total utility: %.4f\n", plan->TotalUtility(*instance));
    return 0;
  }
  ValidationOptions lenient;
  lenient.check_lower_bounds = false;
  const Status user_side = ValidatePlan(*instance, *plan, lenient);
  if (user_side.ok()) {
    std::printf("plan satisfies constraints 1-3; lower bounds violated:\n");
  }
  std::printf("violation: %s\n", full.ToString().c_str());
  return 2;
}

int CmdItinerary(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());
  const std::string user_option = GetOption(args, "user");
  if (!user_option.empty()) {
    const int user = std::atoi(user_option.c_str());
    if (user < 0 || user >= instance->num_users()) {
      return Fail("--user out of range");
    }
    std::printf("%s", BuildItinerary(*instance, *plan, user).ToString().c_str());
    return 0;
  }
  for (const Itinerary& itinerary : BuildAllItineraries(*instance, *plan)) {
    std::printf("%s\n", itinerary.ToString().c_str());
  }
  return 0;
}

int CmdApply(const Args& args) {
  auto instance = LoadInstanceFromFile(GetOption(args, "in"));
  if (!instance.ok()) return Fail(instance.status().ToString());
  auto plan = LoadPlanFromFile(GetOption(args, "plan"));
  if (!plan.ok()) return Fail(plan.status().ToString());
  std::vector<AtomicOp> ops;
  const std::string ops_file = GetOption(args, "ops-file");
  if (!ops_file.empty()) {
    auto loaded = LoadOpsFromFile(ops_file);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    ops = *std::move(loaded);
  }
  for (const std::string& spec : args.ops) {
    auto op = ParseOp(spec);
    if (!op.ok()) return Fail(op.status().ToString());
    ops.push_back(*std::move(op));
  }
  if (ops.empty()) {
    return Fail("apply needs --op SPEC or --ops-file FILE");
  }

  auto planner = IncrementalPlanner::Create(*std::move(instance),
                                            *std::move(plan));
  if (!planner.ok()) return Fail(planner.status().ToString());
  const Plan before_plan = planner->plan();
  const double before = before_plan.TotalUtility(planner->instance());

  auto batch = ApplyBatch(&*planner, std::move(ops),
                          args.reorder ? BatchMode::kReordered
                                       : BatchMode::kSequential);
  if (!batch.ok()) return Fail(batch.status().ToString());

  std::printf("ops applied:      %d\n", batch->ops_applied);
  std::printf("utility:          %.4f -> %.4f\n", before,
              batch->total_utility);
  std::printf("negative impact:  %lld\n",
              static_cast<long long>(batch->negative_impact));
  std::printf("events below xi:  %d\n", batch->events_below_lower_bound);
  if (args.reorder) {
    std::printf("final re-offer:   +%d attendances\n",
                batch->added_by_final_reoffer);
  }
  std::printf("changed plans:\n%s",
              DiffPlans(planner->instance(), before_plan, batch->plan)
                  .ToString()
                  .c_str());

  const std::string plan_out = GetOption(args, "plan-out");
  if (!plan_out.empty()) {
    const Status saved = SavePlanToFile(batch->plan, plan_out);
    if (!saved.ok()) return Fail(saved.ToString());
    std::printf("plan written to:  %s\n", plan_out.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: gepc_cli <generate|stats|solve|validate|apply|itinerary> "
               "[options]\n(see the header of tools/gepc_cli.cc)\n");
  return 64;
}

int Main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "solve") return CmdSolve(args);
  if (args.command == "validate") return CmdValidate(args);
  if (args.command == "apply") return CmdApply(args);
  if (args.command == "itinerary") return CmdItinerary(args);
  return Usage();
}

}  // namespace cli
}  // namespace gepc

int main(int argc, char** argv) { return gepc::cli::Main(argc, argv); }
