// gepc_serve — long-running online planning service front end.
//
//   gepc_serve --in inst.gepc [--plan plan.gpln] [--journal ops.gops]
//              [--recover] [--algorithm greedy|gap|regret]
//              [--threads N] [--shards K]
//              [--rebalance-every N] [--rebalance-skew X]
//              [--queue N] [--snapshot-every N] [--faults SPEC]
//              [--checkpoint-dir DIR] [--checkpoint-every N]
//              [--checkpoint-retain N]
//              [--metrics FILE] [--trace FILE]
//              [--listen [HOST:]PORT] [--max-conns N]
//              [--net-read-workers N] [--net-op-workers N]
//              [--net-queue N] [--net-compress]
//              [--repl] [--repl-heartbeat-ms N]
//   gepc_serve --follow HOST:PORT --journal ops.gops --checkpoint-dir DIR
//              [--listen [HOST:]PORT] [--repl-timeout-ms N]
//              [--repl-promote-after-ms N] ...
//
// Loads the instance (solving it with the chosen algorithm unless --plan is
// given), wraps it in a PlanningService, and serves the JSONL command set
// (src/service/dispatch.h) through one of two front ends sharing that
// single dispatch layer:
//
//   * default: line-oriented JSONL on stdin/stdout — one flat JSON object
//     per line each way:
//
//       -> {"cmd":"apply","op":"eta:3:10"}
//       <- {"ok":true,"seq":1,"applied":true,"dif":2,"utility":88.25,...}
//       -> {"cmd":"query_user","user":7}
//       <- {"ok":true,"user":7,"utility":1.62,...,"stops":[...]}
//       -> {"cmd":"stats"} / {"cmd":"metrics"} / {"cmd":"faults"}
//       -> {"cmd":"save_plan","path":"now.gpln"} / {"cmd":"rebuild"}
//       -> {"cmd":"checkpoint"} / {"cmd":"drain"} / {"cmd":"shutdown"}
//
//     Errors never kill the session: {"ok":false,"error":"..."} and the
//     loop continues. EOF on stdin is treated as shutdown.
//
//   * --listen: an epoll socket server (src/net/) speaking the same JSONL
//     commands inside length-prefixed binary frames to thousands of
//     concurrent clients, with admission control — a saturated op queue
//     answers with a Status frame instead of blocking the accept loop.
//     Port 0 binds an ephemeral port; the ready line reports the real one.
//     The server runs until a client sends {"cmd":"shutdown"} or the
//     process receives SIGINT/SIGTERM. See docs/network-protocol.md.
//
// Replication (docs/replication.md): --repl turns a --listen primary into a
// replication endpoint (followers bootstrap from shipped checkpoints, then
// tail committed journal rows); --follow HOST:PORT boots this process as a
// follower of that primary instead of loading --in — it serves reads from
// its replayed state, redirects writes to the primary, and promotes itself
// when the primary stays gone past --repl-promote-after-ms.
//
// See docs/cli.md for the full protocol and docs/file-formats.md for the
// journal format.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "data/io.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "repl/follower.h"
#include "repl/source.h"
#include "service/dispatch.h"
#include "service/jsonl.h"
#include "service/planning_service.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace serve {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int) { g_signal = 1; }

struct Args {
  std::string in;
  std::string plan;
  std::string journal;
  std::string algorithm = "greedy";
  std::string faults;
  /// Written at shutdown: Prometheus text (--metrics) and chrome://tracing
  /// JSON (--trace). --trace also turns span recording on.
  std::string metrics_file;
  std::string trace_file;
  bool recover = false;
  size_t queue_capacity = 1024;
  int snapshot_every = 1;
  /// Durable checkpointing (src/ckpt): directory for GCKP1 files, the
  /// auto-trigger cadence (0 = on demand only), and how many generations
  /// survive each publication.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  int checkpoint_retain = 2;
  /// Sharded-engine defaults: used for the startup solve (when no --plan is
  /// given) and as the defaults of the `rebuild` command.
  int threads = 1;
  int shards = 1;
  /// Online rebalancing (src/shard/rebalance.h): --rebalance-every enables
  /// the live ShardTracker over --shards shards. N > 0 checks the load skew
  /// every N applied ops; 0 keeps the tracker on-demand only (the
  /// `rebalance` command). -1 (no flag) disables the tracker entirely.
  int rebalance_every = -1;
  double rebalance_skew = 2.0;
  /// Socket front end (src/net): empty keeps the stdio JSONL mode.
  bool listen = false;
  std::string listen_host = "127.0.0.1";
  int listen_port = 0;
  int max_connections = 4096;
  int net_read_workers = 2;
  int net_op_workers = 2;
  int net_queue = 256;
  bool net_compress = false;
  /// Replication (src/repl): --repl exposes this --listen primary as a
  /// replication endpoint; --follow makes this process a follower of the
  /// given primary instead of loading --in.
  bool repl = false;
  bool follow = false;
  std::string follow_host = "127.0.0.1";
  int follow_port = 0;
  int repl_heartbeat_ms = 500;
  int repl_timeout_ms = 3000;
  int repl_promote_after_ms = 10000;  // 0 disables automatic promotion
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: gepc_serve --in inst.gepc [--plan plan.gpln]\n"
      "                  [--journal ops.gops] [--recover]\n"
      "                  [--algorithm greedy|gap|regret]\n"
      "                  [--threads N] [--shards K]\n"
      "                  [--rebalance-every N] [--rebalance-skew X]\n"
      "                  [--queue N] [--snapshot-every N]\n"
      "                  [--faults SPEC]\n"
      "                  [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "                  [--checkpoint-retain N]\n"
      "                  [--metrics FILE] [--trace FILE]\n"
      "                  [--listen [HOST:]PORT] [--max-conns N]\n"
      "                  [--net-read-workers N] [--net-op-workers N]\n"
      "                  [--net-queue N] [--net-compress]\n"
      "                  [--repl] [--repl-heartbeat-ms N]\n"
      "   or: gepc_serve --follow HOST:PORT --journal ops.gops\n"
      "                  --checkpoint-dir DIR [--listen [HOST:]PORT]\n"
      "                  [--repl-timeout-ms N] [--repl-promote-after-ms N]\n"
      "Speaks a JSONL request/response protocol on stdin/stdout, or (with\n"
      "--listen) the same commands over length-prefixed binary frames on a\n"
      "TCP socket; see docs/cli.md, docs/network-protocol.md and\n"
      "docs/replication.md.\n");
  return 64;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Parses a strictly positive integer; rejects trailing garbage ("4x").
bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (value < 1 || value > 1'000'000) return false;
  *out = static_cast<int>(value);
  return true;
}

/// Parses the --listen spec: "PORT" or "HOST:PORT"; port 0 = ephemeral.
bool ParseListenSpec(const std::string& spec, std::string* host, int* port) {
  std::string port_text = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    *host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
    if (host->empty()) return false;
  }
  if (port_text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (value < 0 || value > 65535) return false;
  *port = static_cast<int>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = arg + " needs a value";
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string text;
    if (arg == "--recover") {
      args->recover = true;
    } else if (arg == "--in") {
      if (!value(&args->in)) return false;
    } else if (arg == "--plan") {
      if (!value(&args->plan)) return false;
    } else if (arg == "--journal") {
      if (!value(&args->journal)) return false;
    } else if (arg == "--algorithm") {
      if (!value(&args->algorithm)) return false;
    } else if (arg == "--threads") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->threads)) {
        *error = "--threads must be a positive integer";
        return false;
      }
    } else if (arg == "--shards") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->shards)) {
        *error = "--shards must be a positive integer";
        return false;
      }
    } else if (arg == "--rebalance-every") {
      if (!value(&text)) return false;
      if (text == "0") {
        args->rebalance_every = 0;  // tracker on, rebalance on demand only
      } else if (!ParsePositiveInt(text, &args->rebalance_every)) {
        *error = "--rebalance-every must be a non-negative integer";
        return false;
      }
    } else if (arg == "--rebalance-skew") {
      if (!value(&text)) return false;
      char* end = nullptr;
      args->rebalance_skew = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || text.empty() ||
          args->rebalance_skew < 0.0) {
        *error = "--rebalance-skew must be a non-negative number";
        return false;
      }
    } else if (arg == "--faults") {
      if (!value(&args->faults)) return false;
    } else if (arg == "--checkpoint-dir") {
      if (!value(&args->checkpoint_dir)) return false;
    } else if (arg == "--checkpoint-every") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->checkpoint_every)) {
        *error = "--checkpoint-every must be a positive integer";
        return false;
      }
    } else if (arg == "--checkpoint-retain") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->checkpoint_retain)) {
        *error = "--checkpoint-retain must be a positive integer";
        return false;
      }
    } else if (arg == "--metrics") {
      if (!value(&args->metrics_file)) return false;
    } else if (arg == "--trace") {
      if (!value(&args->trace_file)) return false;
    } else if (arg == "--queue") {
      if (!value(&text)) return false;
      args->queue_capacity = static_cast<size_t>(std::atoll(text.c_str()));
    } else if (arg == "--snapshot-every") {
      if (!value(&text)) return false;
      args->snapshot_every = std::atoi(text.c_str());
    } else if (arg == "--listen") {
      if (!value(&text)) return false;
      if (!ParseListenSpec(text, &args->listen_host, &args->listen_port)) {
        *error = "--listen must be PORT or HOST:PORT (port 0 = ephemeral)";
        return false;
      }
      args->listen = true;
    } else if (arg == "--max-conns") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->max_connections)) {
        *error = "--max-conns must be a positive integer";
        return false;
      }
    } else if (arg == "--net-read-workers") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->net_read_workers)) {
        *error = "--net-read-workers must be a positive integer";
        return false;
      }
    } else if (arg == "--net-op-workers") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->net_op_workers)) {
        *error = "--net-op-workers must be a positive integer";
        return false;
      }
    } else if (arg == "--net-queue") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->net_queue)) {
        *error = "--net-queue must be a positive integer";
        return false;
      }
    } else if (arg == "--net-compress") {
      args->net_compress = true;
    } else if (arg == "--repl") {
      args->repl = true;
    } else if (arg == "--follow") {
      if (!value(&text)) return false;
      if (!ParseListenSpec(text, &args->follow_host, &args->follow_port) ||
          args->follow_port == 0) {
        *error = "--follow must be HOST:PORT or PORT (the primary's)";
        return false;
      }
      args->follow = true;
    } else if (arg == "--repl-heartbeat-ms") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->repl_heartbeat_ms)) {
        *error = "--repl-heartbeat-ms must be a positive integer";
        return false;
      }
    } else if (arg == "--repl-timeout-ms") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->repl_timeout_ms)) {
        *error = "--repl-timeout-ms must be a positive integer";
        return false;
      }
    } else if (arg == "--repl-promote-after-ms") {
      if (!value(&text)) return false;
      if (text == "0") {
        args->repl_promote_after_ms = 0;  // manual failover only
      } else if (!ParsePositiveInt(text, &args->repl_promote_after_ms)) {
        *error = "--repl-promote-after-ms must be a non-negative integer";
        return false;
      }
    } else {
      *error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  if (args->follow) {
    if (!args->in.empty()) {
      *error = "--follow and --in are incompatible (a follower's state comes "
               "from the primary)";
      return false;
    }
    if (args->recover) {
      *error = "--follow recovers local state automatically; drop --recover";
      return false;
    }
    if (args->repl) {
      *error = "--follow and --repl are incompatible (no chained replication)";
      return false;
    }
    if (args->journal.empty() || args->checkpoint_dir.empty()) {
      *error = "--follow needs --journal and --checkpoint-dir (promotion and "
               "crash recovery depend on local durability)";
      return false;
    }
  } else if (args->in.empty()) {
    *error = "--in FILE is required";
    return false;
  }
  if (args->repl) {
    if (!args->listen) {
      *error = "--repl needs --listen (followers connect to that port)";
      return false;
    }
    if (args->journal.empty() || args->checkpoint_dir.empty()) {
      *error = "--repl needs --journal and --checkpoint-dir (they are what "
               "gets shipped)";
      return false;
    }
  }
  if (args->algorithm != "greedy" && args->algorithm != "gap" &&
      args->algorithm != "regret") {
    *error = "--algorithm must be 'greedy', 'gap' or 'regret'";
    return false;
  }
  if (args->checkpoint_every > 0 && args->checkpoint_dir.empty()) {
    *error = "--checkpoint-every needs --checkpoint-dir";
    return false;
  }
  if (args->rebalance_every >= 0 && args->shards < 2) {
    *error = "--rebalance-every needs --shards >= 2 (one shard cannot skew)";
    return false;
  }
  return true;
}

void Respond(const JsonWriter& writer) {
  std::fputs(writer.Finish().c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// The stdio front end: one JSONL request per stdin line, one response per
/// stdout line, until EOF or a shutdown command.
void RunStdioLoop(const CommandDispatcher& dispatcher) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const DispatchOutcome outcome = dispatcher.Dispatch(line);
    if (outcome.shutdown) break;  // the post-drain bye line acknowledges
    std::fputs(outcome.response.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
}

/// The socket front end: runs the net server until a client's shutdown
/// command or SIGINT/SIGTERM.
int RunNetServer(const Args& args, PlanningService* service,
                 const CommandDispatcher& dispatcher, net::NetServer* server) {
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!server->stopped()) {
    if (g_signal != 0) {
      server->Stop();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server->Stop();  // idempotent; joins everything when shutdown came in-band
  (void)args;
  (void)service;
  (void)dispatcher;
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  std::string parse_error;
  if (!ParseArgs(argc, argv, &args, &parse_error)) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return Usage();
  }

  // Fault injection (docs/fault-injection.md): the --faults flag and the
  // GEPC_FAULTS environment variable both arm named failure points; a bad
  // spec is a usage error, not a silently-unfaulted run.
  if (!args.faults.empty()) {
    const Status armed = fault::ArmFromSpec(args.faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --faults: %s\n",
                   armed.ToString().c_str());
      return Usage();
    }
  }
  const Status env_armed = fault::ArmFromEnv();
  if (!env_armed.ok()) return Fail(env_armed.ToString());

  // Span recording is opt-in (it buffers every span until shutdown); the
  // metrics registry is always live.
  if (!args.trace_file.empty()) obs::TraceRecorder::Global().Start();

  // Which role this process serves; shared by the dispatcher (write
  // redirects, stats), the ready line, and a Follower's promotion flip.
  ServeRole role;
  role.net_compress = args.net_compress;

  // The service is owned either directly (primary) or by the follower that
  // replays into it. Destruction order matters at every return below:
  // server first (declared last), then the replication source (its Stop
  // detaches the commit hook), then the service's owner.
  std::unique_ptr<PlanningService> owned_service;
  std::unique_ptr<repl::Follower> follower;
  PlanningService* service = nullptr;

  if (args.follow) {
    repl::FollowerOptions follow_options;
    follow_options.primary_host = args.follow_host;
    follow_options.primary_port = args.follow_port;
    follow_options.journal_path = args.journal;
    follow_options.checkpoint_dir = args.checkpoint_dir;
    follow_options.queue_capacity = args.queue_capacity;
    follow_options.snapshot_every = args.snapshot_every;
    follow_options.checkpoint_every = args.checkpoint_every;
    follow_options.checkpoint_retain = args.checkpoint_retain;
    follow_options.heartbeat_timeout_ms = args.repl_timeout_ms;
    follow_options.promote_after_ms = args.repl_promote_after_ms;
    auto started = repl::Follower::Start(std::move(follow_options), &role);
    if (!started.ok()) return Fail(started.status().ToString());
    follower = std::move(*started);
    service = follower->service();
  } else {
    auto instance = LoadInstanceFromFile(args.in);
    if (!instance.ok()) return Fail(instance.status().ToString());

    Plan plan;
    if (!args.plan.empty()) {
      auto loaded = LoadPlanFromFile(args.plan);
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      plan = *std::move(loaded);
    } else {
      ShardedGepcOptions solve_options;
      solve_options.threads = args.threads;
      solve_options.shards = args.shards;
      solve_options.gepc.algorithm = AlgorithmFromName(args.algorithm);
      auto solved = SolveSharded(*instance, solve_options);
      if (!solved.ok()) return Fail(solved.status().ToString());
      plan = std::move(solved->plan);
    }

    ServiceOptions options;
    options.journal_path = args.journal;
    options.queue_capacity = args.queue_capacity;
    options.snapshot_every = args.snapshot_every;
    options.checkpoint_dir = args.checkpoint_dir;
    options.checkpoint_every = args.checkpoint_every;
    options.checkpoint_retain = args.checkpoint_retain;
    if (args.rebalance_every >= 0) {
      options.rebalance_shards = args.shards;
      options.rebalance_every = args.rebalance_every;
      options.rebalance_skew = args.rebalance_skew;
    }

    auto created =
        args.recover
            ? PlanningService::Recover(*std::move(instance), std::move(plan),
                                       std::move(options))
            : PlanningService::Create(*std::move(instance), std::move(plan),
                                      std::move(options));
    if (!created.ok()) return Fail(created.status().ToString());
    owned_service = std::move(*created);
    service = owned_service.get();
  }

  DispatchDefaults defaults;
  defaults.threads = args.threads;
  defaults.shards = args.shards;
  defaults.algorithm = AlgorithmFromName(args.algorithm);
  const CommandDispatcher dispatcher(service, defaults, &role);

  // The socket front end is constructed before the ready line so the line
  // can carry the actually-bound (possibly ephemeral) port.
  std::unique_ptr<repl::ReplicationSource> source;
  std::unique_ptr<net::NetServer> server;
  if (args.listen) {
    net::NetServerOptions net_options;
    net_options.host = args.listen_host;
    net_options.port = args.listen_port;
    net_options.max_connections = args.max_connections;
    net_options.read_workers = args.net_read_workers;
    net_options.op_workers = args.net_op_workers;
    net_options.op_queue_capacity = static_cast<size_t>(args.net_queue);
    net_options.read_queue_capacity =
        static_cast<size_t>(args.net_queue) * 4;
    net_options.compress = args.net_compress;

    const auto snap = service->snapshot();
    JsonWriter welcome;
    welcome.Add("users", snap->instance->num_users());
    welcome.Add("events", snap->instance->num_events());
    std::string welcome_fields = welcome.Finish();
    // Strip the braces: the server splices these fields into its Welcome
    // object.
    welcome_fields = welcome_fields.substr(1, welcome_fields.size() - 2);

    server = std::make_unique<net::NetServer>(
        std::move(net_options),
        [&dispatcher](const std::string& request) {
          const DispatchOutcome outcome = dispatcher.Dispatch(request);
          return net::HandlerResult{outcome.response, outcome.shutdown};
        },
        [](const std::string& request) {
          // Route snapshot-only commands to the read pool; everything else
          // (including unparseable requests, whose error the op worker
          // renders) rides the op pool.
          return ClassifyCommand(ExtractCmdHint(request)) != CommandKind::kRead;
        },
        welcome_fields);
    if (args.repl) {
      repl::ReplicationSourceOptions source_options;
      source_options.journal_path = args.journal;
      source_options.checkpoint_dir = args.checkpoint_dir;
      source_options.heartbeat_interval_ms = args.repl_heartbeat_ms;
      source = std::make_unique<repl::ReplicationSource>(service,
                                                         source_options);
      const Status attached = source->Attach(server.get());
      if (!attached.ok()) return Fail(attached.ToString());
    }
    const Status started = server->Start();
    if (!started.ok()) return Fail(started.ToString());
  }

  {
    const auto snap = service->snapshot();
    JsonWriter ready;
    ready.Add("ok", true);
    ready.Add("ready", true);
    ready.Add("role", role.follower.load(std::memory_order_acquire)
                          ? "follower"
                          : "primary");
    if (args.follow) ready.Add("primary", role.primary);
    ready.Add("net_compress", args.net_compress);
    ready.Add("users", snap->instance->num_users());
    ready.Add("events", snap->instance->num_events());
    ready.Add("utility", snap->total_utility);
    ready.Add("assignments", snap->total_assignments);
    ready.Add("recovered_ops", snap->version);
    if (args.recover) {
      const ServiceStats stats = service->Stats();
      ready.Add("recovered_from_checkpoint", stats.recovered_from_checkpoint);
      ready.Add("recovery_ops_replayed", stats.recovery_ops_replayed);
    }
    if (server != nullptr) {
      ready.Add("listen", args.listen_host);
      ready.Add("port", server->port());
    }
    if (args.repl) ready.Add("repl", true);
    Respond(ready);
  }

  if (server != nullptr) {
    RunNetServer(args, service, dispatcher, server.get());
  } else {
    RunStdioLoop(dispatcher);
  }

  // Teardown order: stop replication before the sockets/service it bridges.
  if (source != nullptr) source->Stop();
  if (follower != nullptr) follower->Stop();
  service->Drain();
  if (!args.metrics_file.empty()) {
    std::ofstream out(args.metrics_file, std::ios::trunc);
    if (out) out << RenderAllMetricsText(*service);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics file %s\n",
                   args.metrics_file.c_str());
    }
  }
  service->Shutdown();
  if (!args.trace_file.empty()) {
    obs::TraceRecorder::Global().Stop();
    const Status written =
        obs::TraceRecorder::Global().WriteChromeTrace(args.trace_file);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    }
  }
  JsonWriter bye;
  bye.Add("ok", true);
  bye.Add("shutdown", true);
  bye.Add("version", service->snapshot()->version);
  Respond(bye);
  return 0;
}

}  // namespace serve
}  // namespace gepc

int main(int argc, char** argv) { return gepc::serve::Main(argc, argv); }
