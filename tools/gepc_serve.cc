// gepc_serve — long-running online planning service front end.
//
//   gepc_serve --in inst.gepc [--plan plan.gpln] [--journal ops.gops]
//              [--recover] [--algorithm greedy|gap|regret]
//              [--threads N] [--shards K]
//              [--queue N] [--snapshot-every N] [--faults SPEC]
//              [--checkpoint-dir DIR] [--checkpoint-every N]
//              [--checkpoint-retain N]
//              [--metrics FILE] [--trace FILE]
//
// Loads the instance (solving it with the chosen algorithm unless --plan is
// given), wraps it in a PlanningService, and speaks a line-oriented JSONL
// protocol on stdin/stdout — one flat JSON object per line each way:
//
//   -> {"cmd":"apply","op":"eta:3:10"}
//   <- {"ok":true,"seq":1,"applied":true,"dif":2,"utility":88.25,...}
//   -> {"cmd":"apply","op":"budget:4:0.5","wait":false}
//   <- {"ok":true,"queued":true}
//   -> {"cmd":"query_user","user":7}
//   <- {"ok":true,"user":7,"utility":1.62,...,"stops":[{"event":3,...}]}
//   -> {"cmd":"query_event","event":3}
//   <- {"ok":true,"event":3,"attendance":5,"xi":2,"eta":10,"attendees":[...]}
//   -> {"cmd":"stats"}
//   <- {"ok":true,"ops_applied":12,...,"apply_ms_p99":0.4,...}
//   -> {"cmd":"metrics"}
//   <- {"ok":true,"format":"prometheus","metrics":"# HELP ...\n..."}
//   -> {"cmd":"save_plan","path":"now.gpln"}
//   <- {"ok":true,"saved":"now.gpln","version":12}
//   -> {"cmd":"rebuild"}                        (or {"shards":4,"threads":2})
//   <- {"ok":true,"rebuilt":true,"utility":91.0,"dif":3,...}
//   -> {"cmd":"checkpoint"}
//   <- {"ok":true,"checkpoint":true,"version":12,"path":"...","bytes":4096,
//      "compacted":true}
//   -> {"cmd":"faults"}
//   <- {"ok":true,"enabled":false,"points":[{"point":"journal.append",...}]}
//   -> {"cmd":"shutdown"}
//   <- {"ok":true,"shutdown":true}
//
// Errors never kill the session: {"ok":false,"error":"..."} and the loop
// continues. EOF on stdin is treated as shutdown. See docs/cli.md for the
// full protocol and docs/file-formats.md for the journal format.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "data/io.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "iep/op_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/jsonl.h"
#include "service/planning_service.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace serve {

struct Args {
  std::string in;
  std::string plan;
  std::string journal;
  std::string algorithm = "greedy";
  std::string faults;
  /// Written at shutdown: Prometheus text (--metrics) and chrome://tracing
  /// JSON (--trace). --trace also turns span recording on.
  std::string metrics_file;
  std::string trace_file;
  bool recover = false;
  size_t queue_capacity = 1024;
  int snapshot_every = 1;
  /// Durable checkpointing (src/ckpt): directory for GCKP1 files, the
  /// auto-trigger cadence (0 = on demand only), and how many generations
  /// survive each publication.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  int checkpoint_retain = 2;
  /// Sharded-engine defaults: used for the startup solve (when no --plan is
  /// given) and as the defaults of the `rebuild` command.
  int threads = 1;
  int shards = 1;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: gepc_serve --in inst.gepc [--plan plan.gpln]\n"
      "                  [--journal ops.gops] [--recover]\n"
      "                  [--algorithm greedy|gap|regret]\n"
      "                  [--threads N] [--shards K]\n"
      "                  [--queue N] [--snapshot-every N]\n"
      "                  [--faults SPEC]\n"
      "                  [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "                  [--checkpoint-retain N]\n"
      "                  [--metrics FILE] [--trace FILE]\n"
      "Speaks a JSONL request/response protocol on stdin/stdout; see\n"
      "docs/cli.md for the command set.\n");
  return 64;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Parses a strictly positive integer; rejects trailing garbage ("4x").
bool ParsePositiveInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  if (value < 1 || value > 1'000'000) return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* out) {
      if (i + 1 >= argc) {
        *error = arg + " needs a value";
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string text;
    if (arg == "--recover") {
      args->recover = true;
    } else if (arg == "--in") {
      if (!value(&args->in)) return false;
    } else if (arg == "--plan") {
      if (!value(&args->plan)) return false;
    } else if (arg == "--journal") {
      if (!value(&args->journal)) return false;
    } else if (arg == "--algorithm") {
      if (!value(&args->algorithm)) return false;
    } else if (arg == "--threads") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->threads)) {
        *error = "--threads must be a positive integer";
        return false;
      }
    } else if (arg == "--shards") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->shards)) {
        *error = "--shards must be a positive integer";
        return false;
      }
    } else if (arg == "--faults") {
      if (!value(&args->faults)) return false;
    } else if (arg == "--checkpoint-dir") {
      if (!value(&args->checkpoint_dir)) return false;
    } else if (arg == "--checkpoint-every") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->checkpoint_every)) {
        *error = "--checkpoint-every must be a positive integer";
        return false;
      }
    } else if (arg == "--checkpoint-retain") {
      if (!value(&text)) return false;
      if (!ParsePositiveInt(text, &args->checkpoint_retain)) {
        *error = "--checkpoint-retain must be a positive integer";
        return false;
      }
    } else if (arg == "--metrics") {
      if (!value(&args->metrics_file)) return false;
    } else if (arg == "--trace") {
      if (!value(&args->trace_file)) return false;
    } else if (arg == "--queue") {
      if (!value(&text)) return false;
      args->queue_capacity = static_cast<size_t>(std::atoll(text.c_str()));
    } else if (arg == "--snapshot-every") {
      if (!value(&text)) return false;
      args->snapshot_every = std::atoi(text.c_str());
    } else {
      *error = "unknown flag '" + arg + "'";
      return false;
    }
  }
  if (args->in.empty()) {
    *error = "--in FILE is required";
    return false;
  }
  if (args->algorithm != "greedy" && args->algorithm != "gap" &&
      args->algorithm != "regret") {
    *error = "--algorithm must be 'greedy', 'gap' or 'regret'";
    return false;
  }
  if (args->checkpoint_every > 0 && args->checkpoint_dir.empty()) {
    *error = "--checkpoint-every needs --checkpoint-dir";
    return false;
  }
  return true;
}

/// Maps a (pre-validated) algorithm name to the enum.
GepcAlgorithm AlgorithmFromName(const std::string& name) {
  if (name == "gap") return GepcAlgorithm::kGapBased;
  if (name == "regret") return GepcAlgorithm::kRegret;
  return GepcAlgorithm::kGreedy;
}

void Respond(const JsonWriter& writer) {
  std::fputs(writer.Finish().c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void RespondError(const std::string& message) {
  JsonWriter writer;
  writer.Add("ok", false);
  writer.Add("error", message);
  Respond(writer);
}

/// Fetches a required non-negative integer field.
bool GetIntField(const JsonObject& request, const std::string& key, int* out,
                 std::string* error) {
  auto it = request.find(key);
  if (it == request.end() || it->second.type != JsonValue::Type::kNumber) {
    *error = "'" + key + "' (number) is required";
    return false;
  }
  *out = static_cast<int>(it->second.number_value);
  return true;
}

bool GetStringField(const JsonObject& request, const std::string& key,
                    std::string* out, std::string* error) {
  auto it = request.find(key);
  if (it == request.end() || it->second.type != JsonValue::Type::kString) {
    *error = "'" + key + "' (string) is required";
    return false;
  }
  *out = it->second.string_value;
  return true;
}

void HandleApply(PlanningService* service, const JsonObject& request) {
  std::string spec;
  std::string error;
  if (!GetStringField(request, "op", &spec, &error)) {
    RespondError(error);
    return;
  }
  auto op = ParseOpSpec(spec);
  if (!op.ok()) {
    RespondError(op.status().ToString());
    return;
  }
  auto wait_it = request.find("wait");
  const bool wait = wait_it == request.end() ||
                    wait_it->second.type != JsonValue::Type::kBool ||
                    wait_it->second.bool_value;
  if (!wait) {
    auto submitted = service->TrySubmit(*std::move(op));
    JsonWriter writer;
    if (submitted.ok()) {
      writer.Add("ok", true);
      writer.Add("queued", true);
    } else {
      writer.Add("ok", false);
      writer.Add("error", submitted.status().ToString());
    }
    Respond(writer);
    return;
  }
  const ApplyOutcome outcome = service->Apply(*std::move(op));
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("seq", outcome.sequence);
  writer.Add("applied", outcome.applied);
  if (outcome.applied) {
    writer.Add("dif", outcome.negative_impact);
    writer.Add("utility", outcome.total_utility);
    writer.Add("below_xi", outcome.events_below_lower_bound);
    if (outcome.added_by_topup > 0) {
      writer.Add("added_by_topup", outcome.added_by_topup);
    }
  } else {
    writer.Add("error", outcome.error);
  }
  Respond(writer);
}

void HandleQueryUser(const PlanningService& service,
                     const JsonObject& request) {
  int user = -1;
  std::string error;
  if (!GetIntField(request, "user", &user, &error)) {
    RespondError(error);
    return;
  }
  auto itinerary = service.QueryUser(user);
  if (!itinerary.ok()) {
    RespondError(itinerary.status().ToString());
    return;
  }
  std::string stops = "[";
  for (size_t k = 0; k < itinerary->stops.size(); ++k) {
    const ItineraryStop& stop = itinerary->stops[k];
    JsonWriter item;
    item.Add("event", stop.event);
    item.Add("start", stop.time.start);
    item.Add("end", stop.time.end);
    item.Add("travel", stop.travel_from_previous);
    item.Add("fee", stop.fee);
    item.Add("utility", stop.utility);
    if (k > 0) stops += ",";
    stops += item.Finish();
  }
  stops += "]";

  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("user", itinerary->user);
  writer.Add("budget", itinerary->budget);
  writer.Add("utility", itinerary->total_utility);
  writer.Add("travel", itinerary->total_travel);
  writer.Add("fees", itinerary->total_fees);
  writer.Add("cost", itinerary->total_cost);
  writer.Add("within_budget", itinerary->within_budget);
  writer.Add("conflict_free", itinerary->conflict_free);
  writer.AddRaw("stops", stops);
  Respond(writer);
}

void HandleQueryEvent(const PlanningService& service,
                      const JsonObject& request) {
  int event = -1;
  std::string error;
  if (!GetIntField(request, "event", &event, &error)) {
    RespondError(error);
    return;
  }
  const auto snap = service.snapshot();
  if (event < 0 || event >= snap->instance->num_events()) {
    RespondError("event " + std::to_string(event) + " outside [0, " +
                 std::to_string(snap->instance->num_events()) + ")");
    return;
  }
  const Event& meta = snap->instance->event(event);
  std::string attendees = "[";
  bool first = true;
  for (const UserId user : snap->plan->attendees_of(event)) {
    if (!first) attendees += ",";
    attendees += std::to_string(user);
    first = false;
  }
  attendees += "]";

  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("event", event);
  writer.Add("attendance", snap->plan->attendance(event));
  writer.Add("xi", meta.lower_bound);
  writer.Add("eta", meta.upper_bound);
  writer.Add("start", meta.time.start);
  writer.Add("end", meta.time.end);
  writer.Add("fee", meta.fee);
  writer.AddRaw("attendees", attendees);
  Respond(writer);
}

void HandleStats(const PlanningService& service) {
  const ServiceStats stats = service.Stats();
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("ops_submitted", stats.ops_submitted);
  writer.Add("ops_applied", stats.ops_applied);
  writer.Add("ops_rejected", stats.ops_rejected);
  writer.Add("ops_dropped", stats.ops_dropped);
  writer.Add("negative_impact_total", stats.negative_impact_total);
  writer.Add("queue_depth", stats.queue_depth);
  writer.Add("queue_high_water", stats.queue_high_water);
  writer.Add("queue_capacity", stats.queue_capacity);
  writer.Add("apply_ms_mean", stats.apply_ms_mean);
  writer.Add("apply_ms_p50", stats.apply_ms_p50);
  writer.Add("apply_ms_p90", stats.apply_ms_p90);
  writer.Add("apply_ms_p99", stats.apply_ms_p99);
  writer.Add("apply_ms_max", stats.apply_ms_max);
  writer.Add("apply_ms_count", stats.apply_ms.count);
  writer.Add("apply_ms_exact", stats.apply_ms.exact);
  writer.Add("queue_wait_ms_mean", stats.queue_wait_ms.Mean());
  writer.Add("queue_wait_ms_p50", stats.queue_wait_ms.Quantile(0.50));
  writer.Add("queue_wait_ms_p90", stats.queue_wait_ms.Quantile(0.90));
  writer.Add("queue_wait_ms_p99", stats.queue_wait_ms.Quantile(0.99));
  writer.Add("queue_wait_ms_max", stats.queue_wait_ms.max);
  writer.Add("journal_retries", stats.journal_retries);
  writer.Add("journal_bytes", stats.journal_bytes);
  writer.Add("journal_base", stats.journal_base_sequence);
  writer.Add("journal_compactions", stats.journal_compactions);
  writer.Add("snapshots_published", stats.snapshots_published);
  writer.Add("checkpoints_published", stats.checkpoints_published);
  writer.Add("checkpoint_failures", stats.checkpoint_failures);
  writer.Add("last_checkpoint_version", stats.last_checkpoint_version);
  writer.Add("last_checkpoint_bytes", stats.last_checkpoint_bytes);
  writer.Add("last_checkpoint_age_s", stats.last_checkpoint_age_seconds);
  writer.Add("recovered_from_checkpoint", stats.recovered_from_checkpoint);
  writer.Add("recovery_ops_replayed", stats.recovery_ops_replayed);
  writer.Add("recovery_ms", stats.recovery_ms);
  writer.Add("version", stats.snapshot_version);
  writer.Add("utility", stats.total_utility);
  writer.Add("assignments", stats.total_assignments);
  writer.Add("below_xi", stats.events_below_lower_bound);
  writer.Add("heap_bytes", stats.heap_bytes);
  writer.Add("peak_heap_bytes", stats.peak_heap_bytes);
  writer.Add("rss_bytes", stats.rss_bytes);
  Respond(writer);
}

/// Full Prometheus text exposition: the process-global registry (solver
/// phases, journal, flow) followed by this service's gepc_service_* block.
std::string RenderAllMetricsText(const PlanningService& service) {
  return obs::Registry::Global().RenderPrometheusText() +
         RenderServiceStatsText(service.Stats());
}

void HandleMetrics(const PlanningService& service) {
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("format", "prometheus");
  writer.Add("metrics", RenderAllMetricsText(service));
  Respond(writer);
}

void HandleFaults() {
  // Live fault-point counters (docs/fault-injection.md): which points are
  // armed and how often each has been hit / has fired.
  std::string points = "[";
  bool first = true;
  for (const fault::PointStatus& status : fault::Registry::Global()
                                              .Snapshot()) {
    if (!first) points += ",";
    first = false;
    JsonWriter point;
    point.Add("point", status.point);
    point.Add("armed", status.armed);
    point.Add("hits", status.hits);
    point.Add("fired", status.fired);
    points += point.Finish();
  }
  points += "]";
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("enabled", fault::Enabled());
  writer.AddRaw("points", points);
  Respond(writer);
}

void HandleCheckpoint(PlanningService* service) {
  const CheckpointOutcome outcome = service->Checkpoint();
  if (!outcome.published) {
    RespondError(outcome.error);
    return;
  }
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("checkpoint", true);
  writer.Add("version", outcome.version);
  writer.Add("path", outcome.path);
  writer.Add("bytes", outcome.bytes);
  writer.Add("compacted", outcome.compacted);
  Respond(writer);
}

void HandleSavePlan(PlanningService* service, const JsonObject& request) {
  std::string path;
  std::string error;
  if (!GetStringField(request, "path", &path, &error)) {
    RespondError(error);
    return;
  }
  service->Drain();
  const auto snap = service->snapshot();
  const Status saved = SavePlanToFile(*snap->plan, path);
  if (!saved.ok()) {
    RespondError(saved.ToString());
    return;
  }
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("saved", path);
  writer.Add("version", snap->version);
  Respond(writer);
}

void HandleRebuild(PlanningService* service, const JsonObject& request,
                   const Args& defaults) {
  ShardedGepcOptions options;
  options.threads = defaults.threads;
  options.shards = defaults.shards;
  options.gepc.algorithm = AlgorithmFromName(defaults.algorithm);

  // Optional per-request overrides of the command-line defaults.
  auto override_int = [&request](const char* key, int* out) {
    auto it = request.find(key);
    if (it == request.end()) return true;
    if (it->second.type != JsonValue::Type::kNumber) return false;
    const double value = it->second.number_value;
    if (value < 1.0 || value != static_cast<double>(static_cast<int>(value))) {
      return false;
    }
    *out = static_cast<int>(value);
    return true;
  };
  if (!override_int("threads", &options.threads)) {
    RespondError("'threads' must be a positive integer");
    return;
  }
  if (!override_int("shards", &options.shards)) {
    RespondError("'shards' must be a positive integer");
    return;
  }
  auto alg_it = request.find("algorithm");
  if (alg_it != request.end()) {
    const bool valid = alg_it->second.type == JsonValue::Type::kString &&
                       (alg_it->second.string_value == "greedy" ||
                        alg_it->second.string_value == "gap" ||
                        alg_it->second.string_value == "regret");
    if (!valid) {
      RespondError("'algorithm' must be 'greedy', 'gap' or 'regret'");
      return;
    }
    options.gepc.algorithm = AlgorithmFromName(alg_it->second.string_value);
  }

  const RebuildOutcome outcome = service->Rebuild(std::move(options));
  if (!outcome.rebuilt) {
    RespondError(outcome.error);
    return;
  }
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("rebuilt", true);
  writer.Add("utility", outcome.total_utility);
  writer.Add("below_xi", outcome.events_below_lower_bound);
  writer.Add("dif", outcome.negative_impact);
  writer.Add("shards", outcome.stats.shards);
  writer.Add("boundary_users", outcome.stats.boundary_users);
  Respond(writer);
}

int Main(int argc, char** argv) {
  Args args;
  std::string parse_error;
  if (!ParseArgs(argc, argv, &args, &parse_error)) {
    std::fprintf(stderr, "error: %s\n", parse_error.c_str());
    return Usage();
  }

  // Fault injection (docs/fault-injection.md): the --faults flag and the
  // GEPC_FAULTS environment variable both arm named failure points; a bad
  // spec is a usage error, not a silently-unfaulted run.
  if (!args.faults.empty()) {
    const Status armed = fault::ArmFromSpec(args.faults);
    if (!armed.ok()) {
      std::fprintf(stderr, "error: --faults: %s\n",
                   armed.ToString().c_str());
      return Usage();
    }
  }
  const Status env_armed = fault::ArmFromEnv();
  if (!env_armed.ok()) return Fail(env_armed.ToString());

  // Span recording is opt-in (it buffers every span until shutdown); the
  // metrics registry is always live.
  if (!args.trace_file.empty()) obs::TraceRecorder::Global().Start();

  auto instance = LoadInstanceFromFile(args.in);
  if (!instance.ok()) return Fail(instance.status().ToString());

  Plan plan;
  if (!args.plan.empty()) {
    auto loaded = LoadPlanFromFile(args.plan);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    plan = *std::move(loaded);
  } else {
    ShardedGepcOptions solve_options;
    solve_options.threads = args.threads;
    solve_options.shards = args.shards;
    solve_options.gepc.algorithm = AlgorithmFromName(args.algorithm);
    auto solved = SolveSharded(*instance, solve_options);
    if (!solved.ok()) return Fail(solved.status().ToString());
    plan = std::move(solved->plan);
  }

  ServiceOptions options;
  options.journal_path = args.journal;
  options.queue_capacity = args.queue_capacity;
  options.snapshot_every = args.snapshot_every;
  options.checkpoint_dir = args.checkpoint_dir;
  options.checkpoint_every = args.checkpoint_every;
  options.checkpoint_retain = args.checkpoint_retain;

  auto service =
      args.recover
          ? PlanningService::Recover(*std::move(instance), std::move(plan),
                                     std::move(options))
          : PlanningService::Create(*std::move(instance), std::move(plan),
                                    std::move(options));
  if (!service.ok()) return Fail(service.status().ToString());

  {
    const auto snap = (*service)->snapshot();
    JsonWriter ready;
    ready.Add("ok", true);
    ready.Add("ready", true);
    ready.Add("users", snap->instance->num_users());
    ready.Add("events", snap->instance->num_events());
    ready.Add("utility", snap->total_utility);
    ready.Add("assignments", snap->total_assignments);
    ready.Add("recovered_ops", snap->version);
    if (args.recover) {
      const ServiceStats stats = (*service)->Stats();
      ready.Add("recovered_from_checkpoint", stats.recovered_from_checkpoint);
      ready.Add("recovery_ops_replayed", stats.recovery_ops_replayed);
    }
    Respond(ready);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    auto request = ParseJsonObject(line);
    if (!request.ok()) {
      RespondError(request.status().ToString());
      continue;
    }
    std::string cmd;
    std::string error;
    if (!GetStringField(*request, "cmd", &cmd, &error)) {
      RespondError(error);
      continue;
    }
    if (cmd == "apply") {
      HandleApply(service->get(), *request);
    } else if (cmd == "query_user") {
      HandleQueryUser(**service, *request);
    } else if (cmd == "query_event") {
      HandleQueryEvent(**service, *request);
    } else if (cmd == "stats") {
      HandleStats(**service);
    } else if (cmd == "metrics") {
      HandleMetrics(**service);
    } else if (cmd == "checkpoint") {
      HandleCheckpoint(service->get());
    } else if (cmd == "save_plan") {
      HandleSavePlan(service->get(), *request);
    } else if (cmd == "rebuild") {
      HandleRebuild(service->get(), *request, args);
    } else if (cmd == "faults") {
      HandleFaults();
    } else if (cmd == "drain") {
      (*service)->Drain();
      JsonWriter writer;
      writer.Add("ok", true);
      writer.Add("drained", true);
      Respond(writer);
    } else if (cmd == "shutdown") {
      break;
    } else {
      RespondError("unknown cmd '" + cmd + "'");
    }
  }

  (*service)->Drain();
  if (!args.metrics_file.empty()) {
    std::ofstream out(args.metrics_file, std::ios::trunc);
    if (out) out << RenderAllMetricsText(**service);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics file %s\n",
                   args.metrics_file.c_str());
    }
  }
  (*service)->Shutdown();
  if (!args.trace_file.empty()) {
    obs::TraceRecorder::Global().Stop();
    const Status written =
        obs::TraceRecorder::Global().WriteChromeTrace(args.trace_file);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    }
  }
  JsonWriter bye;
  bye.Add("ok", true);
  bye.Add("shutdown", true);
  bye.Add("version", (*service)->snapshot()->version);
  Respond(bye);
  return 0;
}

}  // namespace serve
}  // namespace gepc

int main(int argc, char** argv) { return gepc::serve::Main(argc, argv); }
