# Empty compiler generated dependencies file for gepc_lp.
# This may be replaced when dependencies are built.
