file(REMOVE_RECURSE
  "libgepc_lp.a"
)
