file(REMOVE_RECURSE
  "CMakeFiles/gepc_lp.dir/branch_and_bound.cc.o"
  "CMakeFiles/gepc_lp.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/gepc_lp.dir/linear_program.cc.o"
  "CMakeFiles/gepc_lp.dir/linear_program.cc.o.d"
  "CMakeFiles/gepc_lp.dir/simplex.cc.o"
  "CMakeFiles/gepc_lp.dir/simplex.cc.o.d"
  "libgepc_lp.a"
  "libgepc_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
