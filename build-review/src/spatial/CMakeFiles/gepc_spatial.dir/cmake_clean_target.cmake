file(REMOVE_RECURSE
  "libgepc_spatial.a"
)
