file(REMOVE_RECURSE
  "CMakeFiles/gepc_spatial.dir/grid_index.cc.o"
  "CMakeFiles/gepc_spatial.dir/grid_index.cc.o.d"
  "CMakeFiles/gepc_spatial.dir/reachability.cc.o"
  "CMakeFiles/gepc_spatial.dir/reachability.cc.o.d"
  "libgepc_spatial.a"
  "libgepc_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
