# Empty compiler generated dependencies file for gepc_spatial.
# This may be replaced when dependencies are built.
