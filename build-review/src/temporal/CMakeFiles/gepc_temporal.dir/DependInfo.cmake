
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/conflict_graph.cc" "src/temporal/CMakeFiles/gepc_temporal.dir/conflict_graph.cc.o" "gcc" "src/temporal/CMakeFiles/gepc_temporal.dir/conflict_graph.cc.o.d"
  "/root/repo/src/temporal/interval.cc" "src/temporal/CMakeFiles/gepc_temporal.dir/interval.cc.o" "gcc" "src/temporal/CMakeFiles/gepc_temporal.dir/interval.cc.o.d"
  "/root/repo/src/temporal/interval_index.cc" "src/temporal/CMakeFiles/gepc_temporal.dir/interval_index.cc.o" "gcc" "src/temporal/CMakeFiles/gepc_temporal.dir/interval_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
