# Empty dependencies file for gepc_temporal.
# This may be replaced when dependencies are built.
