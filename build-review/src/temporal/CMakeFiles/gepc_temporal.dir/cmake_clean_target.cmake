file(REMOVE_RECURSE
  "libgepc_temporal.a"
)
