file(REMOVE_RECURSE
  "CMakeFiles/gepc_temporal.dir/conflict_graph.cc.o"
  "CMakeFiles/gepc_temporal.dir/conflict_graph.cc.o.d"
  "CMakeFiles/gepc_temporal.dir/interval.cc.o"
  "CMakeFiles/gepc_temporal.dir/interval.cc.o.d"
  "CMakeFiles/gepc_temporal.dir/interval_index.cc.o"
  "CMakeFiles/gepc_temporal.dir/interval_index.cc.o.d"
  "libgepc_temporal.a"
  "libgepc_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
