file(REMOVE_RECURSE
  "CMakeFiles/gepc_iep.dir/availability.cc.o"
  "CMakeFiles/gepc_iep.dir/availability.cc.o.d"
  "CMakeFiles/gepc_iep.dir/batch.cc.o"
  "CMakeFiles/gepc_iep.dir/batch.cc.o.d"
  "CMakeFiles/gepc_iep.dir/eta_decrease.cc.o"
  "CMakeFiles/gepc_iep.dir/eta_decrease.cc.o.d"
  "CMakeFiles/gepc_iep.dir/op_spec.cc.o"
  "CMakeFiles/gepc_iep.dir/op_spec.cc.o.d"
  "CMakeFiles/gepc_iep.dir/planner.cc.o"
  "CMakeFiles/gepc_iep.dir/planner.cc.o.d"
  "CMakeFiles/gepc_iep.dir/time_change.cc.o"
  "CMakeFiles/gepc_iep.dir/time_change.cc.o.d"
  "CMakeFiles/gepc_iep.dir/trace.cc.o"
  "CMakeFiles/gepc_iep.dir/trace.cc.o.d"
  "CMakeFiles/gepc_iep.dir/xi_increase.cc.o"
  "CMakeFiles/gepc_iep.dir/xi_increase.cc.o.d"
  "libgepc_iep.a"
  "libgepc_iep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_iep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
