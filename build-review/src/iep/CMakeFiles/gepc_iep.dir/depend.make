# Empty dependencies file for gepc_iep.
# This may be replaced when dependencies are built.
