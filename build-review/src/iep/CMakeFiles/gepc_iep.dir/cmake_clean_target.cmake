file(REMOVE_RECURSE
  "libgepc_iep.a"
)
