
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iep/availability.cc" "src/iep/CMakeFiles/gepc_iep.dir/availability.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/availability.cc.o.d"
  "/root/repo/src/iep/batch.cc" "src/iep/CMakeFiles/gepc_iep.dir/batch.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/batch.cc.o.d"
  "/root/repo/src/iep/eta_decrease.cc" "src/iep/CMakeFiles/gepc_iep.dir/eta_decrease.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/eta_decrease.cc.o.d"
  "/root/repo/src/iep/op_spec.cc" "src/iep/CMakeFiles/gepc_iep.dir/op_spec.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/op_spec.cc.o.d"
  "/root/repo/src/iep/planner.cc" "src/iep/CMakeFiles/gepc_iep.dir/planner.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/planner.cc.o.d"
  "/root/repo/src/iep/time_change.cc" "src/iep/CMakeFiles/gepc_iep.dir/time_change.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/time_change.cc.o.d"
  "/root/repo/src/iep/trace.cc" "src/iep/CMakeFiles/gepc_iep.dir/trace.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/trace.cc.o.d"
  "/root/repo/src/iep/xi_increase.cc" "src/iep/CMakeFiles/gepc_iep.dir/xi_increase.cc.o" "gcc" "src/iep/CMakeFiles/gepc_iep.dir/xi_increase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/gepc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gepc/CMakeFiles/gepc_solvers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/gepc_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gap/CMakeFiles/gepc_gap.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/gepc_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/gepc_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
