file(REMOVE_RECURSE
  "CMakeFiles/gepc_service.dir/journal.cc.o"
  "CMakeFiles/gepc_service.dir/journal.cc.o.d"
  "CMakeFiles/gepc_service.dir/jsonl.cc.o"
  "CMakeFiles/gepc_service.dir/jsonl.cc.o.d"
  "CMakeFiles/gepc_service.dir/planning_service.cc.o"
  "CMakeFiles/gepc_service.dir/planning_service.cc.o.d"
  "CMakeFiles/gepc_service.dir/snapshot.cc.o"
  "CMakeFiles/gepc_service.dir/snapshot.cc.o.d"
  "libgepc_service.a"
  "libgepc_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
