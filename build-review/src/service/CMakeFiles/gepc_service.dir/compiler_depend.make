# Empty compiler generated dependencies file for gepc_service.
# This may be replaced when dependencies are built.
