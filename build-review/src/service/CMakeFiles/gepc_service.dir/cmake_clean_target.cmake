file(REMOVE_RECURSE
  "libgepc_service.a"
)
