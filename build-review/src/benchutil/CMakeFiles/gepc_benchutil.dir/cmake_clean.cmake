file(REMOVE_RECURSE
  "CMakeFiles/gepc_benchutil.dir/csv.cc.o"
  "CMakeFiles/gepc_benchutil.dir/csv.cc.o.d"
  "CMakeFiles/gepc_benchutil.dir/table.cc.o"
  "CMakeFiles/gepc_benchutil.dir/table.cc.o.d"
  "libgepc_benchutil.a"
  "libgepc_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
