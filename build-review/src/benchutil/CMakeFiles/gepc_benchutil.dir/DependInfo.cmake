
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchutil/csv.cc" "src/benchutil/CMakeFiles/gepc_benchutil.dir/csv.cc.o" "gcc" "src/benchutil/CMakeFiles/gepc_benchutil.dir/csv.cc.o.d"
  "/root/repo/src/benchutil/table.cc" "src/benchutil/CMakeFiles/gepc_benchutil.dir/table.cc.o" "gcc" "src/benchutil/CMakeFiles/gepc_benchutil.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
