file(REMOVE_RECURSE
  "libgepc_benchutil.a"
)
