# Empty compiler generated dependencies file for gepc_benchutil.
# This may be replaced when dependencies are built.
