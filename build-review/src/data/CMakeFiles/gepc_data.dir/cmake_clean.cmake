file(REMOVE_RECURSE
  "CMakeFiles/gepc_data.dir/cities.cc.o"
  "CMakeFiles/gepc_data.dir/cities.cc.o.d"
  "CMakeFiles/gepc_data.dir/generator.cc.o"
  "CMakeFiles/gepc_data.dir/generator.cc.o.d"
  "CMakeFiles/gepc_data.dir/io.cc.o"
  "CMakeFiles/gepc_data.dir/io.cc.o.d"
  "CMakeFiles/gepc_data.dir/tags.cc.o"
  "CMakeFiles/gepc_data.dir/tags.cc.o.d"
  "CMakeFiles/gepc_data.dir/utility_model.cc.o"
  "CMakeFiles/gepc_data.dir/utility_model.cc.o.d"
  "libgepc_data.a"
  "libgepc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
