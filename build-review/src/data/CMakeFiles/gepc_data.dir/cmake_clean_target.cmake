file(REMOVE_RECURSE
  "libgepc_data.a"
)
