
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cities.cc" "src/data/CMakeFiles/gepc_data.dir/cities.cc.o" "gcc" "src/data/CMakeFiles/gepc_data.dir/cities.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/gepc_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/gepc_data.dir/generator.cc.o.d"
  "/root/repo/src/data/io.cc" "src/data/CMakeFiles/gepc_data.dir/io.cc.o" "gcc" "src/data/CMakeFiles/gepc_data.dir/io.cc.o.d"
  "/root/repo/src/data/tags.cc" "src/data/CMakeFiles/gepc_data.dir/tags.cc.o" "gcc" "src/data/CMakeFiles/gepc_data.dir/tags.cc.o.d"
  "/root/repo/src/data/utility_model.cc" "src/data/CMakeFiles/gepc_data.dir/utility_model.cc.o" "gcc" "src/data/CMakeFiles/gepc_data.dir/utility_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/gepc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
