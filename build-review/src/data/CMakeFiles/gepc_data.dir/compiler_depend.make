# Empty compiler generated dependencies file for gepc_data.
# This may be replaced when dependencies are built.
