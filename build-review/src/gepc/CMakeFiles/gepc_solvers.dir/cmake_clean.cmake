file(REMOVE_RECURSE
  "CMakeFiles/gepc_solvers.dir/analysis.cc.o"
  "CMakeFiles/gepc_solvers.dir/analysis.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/baselines.cc.o"
  "CMakeFiles/gepc_solvers.dir/baselines.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/conflict_adjust.cc.o"
  "CMakeFiles/gepc_solvers.dir/conflict_adjust.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/event_copies.cc.o"
  "CMakeFiles/gepc_solvers.dir/event_copies.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/exact.cc.o"
  "CMakeFiles/gepc_solvers.dir/exact.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/gap_based.cc.o"
  "CMakeFiles/gepc_solvers.dir/gap_based.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/greedy.cc.o"
  "CMakeFiles/gepc_solvers.dir/greedy.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/ilp.cc.o"
  "CMakeFiles/gepc_solvers.dir/ilp.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/local_search.cc.o"
  "CMakeFiles/gepc_solvers.dir/local_search.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/regret_greedy.cc.o"
  "CMakeFiles/gepc_solvers.dir/regret_greedy.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/solver.cc.o"
  "CMakeFiles/gepc_solvers.dir/solver.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/topup.cc.o"
  "CMakeFiles/gepc_solvers.dir/topup.cc.o.d"
  "CMakeFiles/gepc_solvers.dir/user_menus.cc.o"
  "CMakeFiles/gepc_solvers.dir/user_menus.cc.o.d"
  "libgepc_solvers.a"
  "libgepc_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
