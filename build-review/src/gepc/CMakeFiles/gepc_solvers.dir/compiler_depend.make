# Empty compiler generated dependencies file for gepc_solvers.
# This may be replaced when dependencies are built.
