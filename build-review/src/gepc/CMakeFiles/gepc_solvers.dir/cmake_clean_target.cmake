file(REMOVE_RECURSE
  "libgepc_solvers.a"
)
