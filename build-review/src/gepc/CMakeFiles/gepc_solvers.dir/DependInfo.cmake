
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gepc/analysis.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/analysis.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/analysis.cc.o.d"
  "/root/repo/src/gepc/baselines.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/baselines.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/baselines.cc.o.d"
  "/root/repo/src/gepc/conflict_adjust.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/conflict_adjust.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/conflict_adjust.cc.o.d"
  "/root/repo/src/gepc/event_copies.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/event_copies.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/event_copies.cc.o.d"
  "/root/repo/src/gepc/exact.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/exact.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/exact.cc.o.d"
  "/root/repo/src/gepc/gap_based.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/gap_based.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/gap_based.cc.o.d"
  "/root/repo/src/gepc/greedy.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/greedy.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/greedy.cc.o.d"
  "/root/repo/src/gepc/ilp.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/ilp.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/ilp.cc.o.d"
  "/root/repo/src/gepc/local_search.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/local_search.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/local_search.cc.o.d"
  "/root/repo/src/gepc/regret_greedy.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/regret_greedy.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/regret_greedy.cc.o.d"
  "/root/repo/src/gepc/solver.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/solver.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/solver.cc.o.d"
  "/root/repo/src/gepc/topup.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/topup.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/topup.cc.o.d"
  "/root/repo/src/gepc/user_menus.cc" "src/gepc/CMakeFiles/gepc_solvers.dir/user_menus.cc.o" "gcc" "src/gepc/CMakeFiles/gepc_solvers.dir/user_menus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/gepc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gap/CMakeFiles/gepc_gap.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/gepc_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/gepc_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/gepc_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
