file(REMOVE_RECURSE
  "CMakeFiles/gepc_sim.dir/simulator.cc.o"
  "CMakeFiles/gepc_sim.dir/simulator.cc.o.d"
  "libgepc_sim.a"
  "libgepc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
