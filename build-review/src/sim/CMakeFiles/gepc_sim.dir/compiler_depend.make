# Empty compiler generated dependencies file for gepc_sim.
# This may be replaced when dependencies are built.
