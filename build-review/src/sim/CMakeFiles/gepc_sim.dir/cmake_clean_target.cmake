file(REMOVE_RECURSE
  "libgepc_sim.a"
)
