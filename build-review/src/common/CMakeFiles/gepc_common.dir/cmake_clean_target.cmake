file(REMOVE_RECURSE
  "libgepc_common.a"
)
