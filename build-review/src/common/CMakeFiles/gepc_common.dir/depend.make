# Empty dependencies file for gepc_common.
# This may be replaced when dependencies are built.
