file(REMOVE_RECURSE
  "CMakeFiles/gepc_common.dir/logging.cc.o"
  "CMakeFiles/gepc_common.dir/logging.cc.o.d"
  "CMakeFiles/gepc_common.dir/memory_tracker.cc.o"
  "CMakeFiles/gepc_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/gepc_common.dir/rng.cc.o"
  "CMakeFiles/gepc_common.dir/rng.cc.o.d"
  "CMakeFiles/gepc_common.dir/status.cc.o"
  "CMakeFiles/gepc_common.dir/status.cc.o.d"
  "libgepc_common.a"
  "libgepc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
