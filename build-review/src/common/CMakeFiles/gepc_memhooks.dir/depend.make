# Empty dependencies file for gepc_memhooks.
# This may be replaced when dependencies are built.
