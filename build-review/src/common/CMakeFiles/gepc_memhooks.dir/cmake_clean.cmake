file(REMOVE_RECURSE
  "CMakeFiles/gepc_memhooks.dir/memory_hooks.cc.o"
  "CMakeFiles/gepc_memhooks.dir/memory_hooks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_memhooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
