file(REMOVE_RECURSE
  "libgepc_gap.a"
)
