
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gap/exact_gap.cc" "src/gap/CMakeFiles/gepc_gap.dir/exact_gap.cc.o" "gcc" "src/gap/CMakeFiles/gepc_gap.dir/exact_gap.cc.o.d"
  "/root/repo/src/gap/gap_instance.cc" "src/gap/CMakeFiles/gepc_gap.dir/gap_instance.cc.o" "gcc" "src/gap/CMakeFiles/gepc_gap.dir/gap_instance.cc.o.d"
  "/root/repo/src/gap/gap_lp.cc" "src/gap/CMakeFiles/gepc_gap.dir/gap_lp.cc.o" "gcc" "src/gap/CMakeFiles/gepc_gap.dir/gap_lp.cc.o.d"
  "/root/repo/src/gap/shmoys_tardos.cc" "src/gap/CMakeFiles/gepc_gap.dir/shmoys_tardos.cc.o" "gcc" "src/gap/CMakeFiles/gepc_gap.dir/shmoys_tardos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/gepc_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/gepc_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
