# Empty compiler generated dependencies file for gepc_gap.
# This may be replaced when dependencies are built.
