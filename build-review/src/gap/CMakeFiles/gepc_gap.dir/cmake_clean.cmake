file(REMOVE_RECURSE
  "CMakeFiles/gepc_gap.dir/exact_gap.cc.o"
  "CMakeFiles/gepc_gap.dir/exact_gap.cc.o.d"
  "CMakeFiles/gepc_gap.dir/gap_instance.cc.o"
  "CMakeFiles/gepc_gap.dir/gap_instance.cc.o.d"
  "CMakeFiles/gepc_gap.dir/gap_lp.cc.o"
  "CMakeFiles/gepc_gap.dir/gap_lp.cc.o.d"
  "CMakeFiles/gepc_gap.dir/shmoys_tardos.cc.o"
  "CMakeFiles/gepc_gap.dir/shmoys_tardos.cc.o.d"
  "libgepc_gap.a"
  "libgepc_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
