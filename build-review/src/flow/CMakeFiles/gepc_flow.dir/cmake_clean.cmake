file(REMOVE_RECURSE
  "CMakeFiles/gepc_flow.dir/hungarian.cc.o"
  "CMakeFiles/gepc_flow.dir/hungarian.cc.o.d"
  "CMakeFiles/gepc_flow.dir/min_cost_flow.cc.o"
  "CMakeFiles/gepc_flow.dir/min_cost_flow.cc.o.d"
  "libgepc_flow.a"
  "libgepc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
