# Empty dependencies file for gepc_flow.
# This may be replaced when dependencies are built.
