file(REMOVE_RECURSE
  "libgepc_flow.a"
)
