
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/hungarian.cc" "src/flow/CMakeFiles/gepc_flow.dir/hungarian.cc.o" "gcc" "src/flow/CMakeFiles/gepc_flow.dir/hungarian.cc.o.d"
  "/root/repo/src/flow/min_cost_flow.cc" "src/flow/CMakeFiles/gepc_flow.dir/min_cost_flow.cc.o" "gcc" "src/flow/CMakeFiles/gepc_flow.dir/min_cost_flow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
