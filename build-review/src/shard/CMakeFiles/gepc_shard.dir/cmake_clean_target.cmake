file(REMOVE_RECURSE
  "libgepc_shard.a"
)
