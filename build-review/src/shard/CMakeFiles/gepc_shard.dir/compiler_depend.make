# Empty compiler generated dependencies file for gepc_shard.
# This may be replaced when dependencies are built.
