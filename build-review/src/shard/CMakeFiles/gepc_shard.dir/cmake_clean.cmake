file(REMOVE_RECURSE
  "CMakeFiles/gepc_shard.dir/partition.cc.o"
  "CMakeFiles/gepc_shard.dir/partition.cc.o.d"
  "CMakeFiles/gepc_shard.dir/sharded_solver.cc.o"
  "CMakeFiles/gepc_shard.dir/sharded_solver.cc.o.d"
  "libgepc_shard.a"
  "libgepc_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
