
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feasibility.cc" "src/core/CMakeFiles/gepc_core.dir/feasibility.cc.o" "gcc" "src/core/CMakeFiles/gepc_core.dir/feasibility.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/core/CMakeFiles/gepc_core.dir/instance.cc.o" "gcc" "src/core/CMakeFiles/gepc_core.dir/instance.cc.o.d"
  "/root/repo/src/core/itinerary.cc" "src/core/CMakeFiles/gepc_core.dir/itinerary.cc.o" "gcc" "src/core/CMakeFiles/gepc_core.dir/itinerary.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/gepc_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/gepc_core.dir/plan.cc.o.d"
  "/root/repo/src/core/plan_diff.cc" "src/core/CMakeFiles/gepc_core.dir/plan_diff.cc.o" "gcc" "src/core/CMakeFiles/gepc_core.dir/plan_diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
