file(REMOVE_RECURSE
  "libgepc_core.a"
)
