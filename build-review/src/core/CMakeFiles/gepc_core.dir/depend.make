# Empty dependencies file for gepc_core.
# This may be replaced when dependencies are built.
