file(REMOVE_RECURSE
  "CMakeFiles/gepc_core.dir/feasibility.cc.o"
  "CMakeFiles/gepc_core.dir/feasibility.cc.o.d"
  "CMakeFiles/gepc_core.dir/instance.cc.o"
  "CMakeFiles/gepc_core.dir/instance.cc.o.d"
  "CMakeFiles/gepc_core.dir/itinerary.cc.o"
  "CMakeFiles/gepc_core.dir/itinerary.cc.o.d"
  "CMakeFiles/gepc_core.dir/plan.cc.o"
  "CMakeFiles/gepc_core.dir/plan.cc.o.d"
  "CMakeFiles/gepc_core.dir/plan_diff.cc.o"
  "CMakeFiles/gepc_core.dir/plan_diff.cc.o.d"
  "libgepc_core.a"
  "libgepc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
