file(REMOVE_RECURSE
  "libgepc_exec.a"
)
