# Empty compiler generated dependencies file for gepc_exec.
# This may be replaced when dependencies are built.
