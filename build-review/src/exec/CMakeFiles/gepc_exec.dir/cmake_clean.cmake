file(REMOVE_RECURSE
  "CMakeFiles/gepc_exec.dir/thread_pool.cc.o"
  "CMakeFiles/gepc_exec.dir/thread_pool.cc.o.d"
  "libgepc_exec.a"
  "libgepc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
