# Empty dependencies file for gepc_serve.
# This may be replaced when dependencies are built.
