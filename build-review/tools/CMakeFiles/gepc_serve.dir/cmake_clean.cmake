file(REMOVE_RECURSE
  "CMakeFiles/gepc_serve.dir/gepc_serve.cc.o"
  "CMakeFiles/gepc_serve.dir/gepc_serve.cc.o.d"
  "gepc_serve"
  "gepc_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
