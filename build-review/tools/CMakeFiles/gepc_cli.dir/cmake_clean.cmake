file(REMOVE_RECURSE
  "CMakeFiles/gepc_cli.dir/gepc_cli.cc.o"
  "CMakeFiles/gepc_cli.dir/gepc_cli.cc.o.d"
  "gepc_cli"
  "gepc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
