# Empty dependencies file for gepc_cli.
# This may be replaced when dependencies are built.
