add_test([=[ServiceDeterminismTest.ThousandOpJournalReplaysToIdenticalState]=]  /root/repo/build-review/tests/service_determinism_test [==[--gtest_filter=ServiceDeterminismTest.ThousandOpJournalReplaysToIdenticalState]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ServiceDeterminismTest.ThousandOpJournalReplaysToIdenticalState]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build-review/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  service_determinism_test_TESTS ServiceDeterminismTest.ThousandOpJournalReplaysToIdenticalState)
