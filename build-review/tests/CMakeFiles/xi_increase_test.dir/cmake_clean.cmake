file(REMOVE_RECURSE
  "CMakeFiles/xi_increase_test.dir/xi_increase_test.cc.o"
  "CMakeFiles/xi_increase_test.dir/xi_increase_test.cc.o.d"
  "xi_increase_test"
  "xi_increase_test.pdb"
  "xi_increase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xi_increase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
