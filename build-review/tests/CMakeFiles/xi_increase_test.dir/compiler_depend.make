# Empty compiler generated dependencies file for xi_increase_test.
# This may be replaced when dependencies are built.
