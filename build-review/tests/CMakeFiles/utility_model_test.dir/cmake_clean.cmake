file(REMOVE_RECURSE
  "CMakeFiles/utility_model_test.dir/utility_model_test.cc.o"
  "CMakeFiles/utility_model_test.dir/utility_model_test.cc.o.d"
  "utility_model_test"
  "utility_model_test.pdb"
  "utility_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utility_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
