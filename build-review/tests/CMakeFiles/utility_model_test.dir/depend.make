# Empty dependencies file for utility_model_test.
# This may be replaced when dependencies are built.
