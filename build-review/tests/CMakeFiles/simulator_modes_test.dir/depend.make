# Empty dependencies file for simulator_modes_test.
# This may be replaced when dependencies are built.
