file(REMOVE_RECURSE
  "CMakeFiles/simulator_modes_test.dir/simulator_modes_test.cc.o"
  "CMakeFiles/simulator_modes_test.dir/simulator_modes_test.cc.o.d"
  "simulator_modes_test"
  "simulator_modes_test.pdb"
  "simulator_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
