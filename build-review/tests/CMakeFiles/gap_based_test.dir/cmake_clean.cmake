file(REMOVE_RECURSE
  "CMakeFiles/gap_based_test.dir/gap_based_test.cc.o"
  "CMakeFiles/gap_based_test.dir/gap_based_test.cc.o.d"
  "gap_based_test"
  "gap_based_test.pdb"
  "gap_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
