file(REMOVE_RECURSE
  "CMakeFiles/approx_property_test.dir/approx_property_test.cc.o"
  "CMakeFiles/approx_property_test.dir/approx_property_test.cc.o.d"
  "approx_property_test"
  "approx_property_test.pdb"
  "approx_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
