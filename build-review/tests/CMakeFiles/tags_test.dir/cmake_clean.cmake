file(REMOVE_RECURSE
  "CMakeFiles/tags_test.dir/tags_test.cc.o"
  "CMakeFiles/tags_test.dir/tags_test.cc.o.d"
  "tags_test"
  "tags_test.pdb"
  "tags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
