# Empty dependencies file for tags_test.
# This may be replaced when dependencies are built.
