file(REMOVE_RECURSE
  "CMakeFiles/multi_op_sequence_test.dir/multi_op_sequence_test.cc.o"
  "CMakeFiles/multi_op_sequence_test.dir/multi_op_sequence_test.cc.o.d"
  "multi_op_sequence_test"
  "multi_op_sequence_test.pdb"
  "multi_op_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_op_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
