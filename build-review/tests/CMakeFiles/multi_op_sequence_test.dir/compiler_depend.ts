# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for multi_op_sequence_test.
