# Empty compiler generated dependencies file for multi_op_sequence_test.
# This may be replaced when dependencies are built.
