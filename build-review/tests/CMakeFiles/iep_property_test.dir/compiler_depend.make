# Empty compiler generated dependencies file for iep_property_test.
# This may be replaced when dependencies are built.
