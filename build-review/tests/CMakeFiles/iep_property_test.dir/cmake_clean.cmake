file(REMOVE_RECURSE
  "CMakeFiles/iep_property_test.dir/iep_property_test.cc.o"
  "CMakeFiles/iep_property_test.dir/iep_property_test.cc.o.d"
  "iep_property_test"
  "iep_property_test.pdb"
  "iep_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iep_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
