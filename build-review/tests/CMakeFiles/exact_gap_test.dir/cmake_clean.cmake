file(REMOVE_RECURSE
  "CMakeFiles/exact_gap_test.dir/exact_gap_test.cc.o"
  "CMakeFiles/exact_gap_test.dir/exact_gap_test.cc.o.d"
  "exact_gap_test"
  "exact_gap_test.pdb"
  "exact_gap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
