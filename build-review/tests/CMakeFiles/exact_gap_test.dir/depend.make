# Empty dependencies file for exact_gap_test.
# This may be replaced when dependencies are built.
