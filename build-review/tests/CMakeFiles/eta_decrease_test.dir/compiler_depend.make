# Empty compiler generated dependencies file for eta_decrease_test.
# This may be replaced when dependencies are built.
