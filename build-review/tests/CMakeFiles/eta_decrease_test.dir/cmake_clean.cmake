file(REMOVE_RECURSE
  "CMakeFiles/eta_decrease_test.dir/eta_decrease_test.cc.o"
  "CMakeFiles/eta_decrease_test.dir/eta_decrease_test.cc.o.d"
  "eta_decrease_test"
  "eta_decrease_test.pdb"
  "eta_decrease_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eta_decrease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
