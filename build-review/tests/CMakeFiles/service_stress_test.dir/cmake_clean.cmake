file(REMOVE_RECURSE
  "CMakeFiles/service_stress_test.dir/service_stress_test.cc.o"
  "CMakeFiles/service_stress_test.dir/service_stress_test.cc.o.d"
  "service_stress_test"
  "service_stress_test.pdb"
  "service_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
