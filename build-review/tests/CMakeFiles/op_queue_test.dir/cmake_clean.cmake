file(REMOVE_RECURSE
  "CMakeFiles/op_queue_test.dir/op_queue_test.cc.o"
  "CMakeFiles/op_queue_test.dir/op_queue_test.cc.o.d"
  "op_queue_test"
  "op_queue_test.pdb"
  "op_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
