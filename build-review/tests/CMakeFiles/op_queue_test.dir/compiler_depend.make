# Empty compiler generated dependencies file for op_queue_test.
# This may be replaced when dependencies are built.
