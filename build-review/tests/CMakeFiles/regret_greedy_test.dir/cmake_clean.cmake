file(REMOVE_RECURSE
  "CMakeFiles/regret_greedy_test.dir/regret_greedy_test.cc.o"
  "CMakeFiles/regret_greedy_test.dir/regret_greedy_test.cc.o.d"
  "regret_greedy_test"
  "regret_greedy_test.pdb"
  "regret_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regret_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
