# Empty compiler generated dependencies file for regret_greedy_test.
# This may be replaced when dependencies are built.
