# Empty dependencies file for benchutil_test.
# This may be replaced when dependencies are built.
