file(REMOVE_RECURSE
  "CMakeFiles/benchutil_test.dir/benchutil_test.cc.o"
  "CMakeFiles/benchutil_test.dir/benchutil_test.cc.o.d"
  "benchutil_test"
  "benchutil_test.pdb"
  "benchutil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
