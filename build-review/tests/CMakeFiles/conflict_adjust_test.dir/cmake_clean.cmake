file(REMOVE_RECURSE
  "CMakeFiles/conflict_adjust_test.dir/conflict_adjust_test.cc.o"
  "CMakeFiles/conflict_adjust_test.dir/conflict_adjust_test.cc.o.d"
  "conflict_adjust_test"
  "conflict_adjust_test.pdb"
  "conflict_adjust_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_adjust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
