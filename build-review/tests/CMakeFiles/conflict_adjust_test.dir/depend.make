# Empty dependencies file for conflict_adjust_test.
# This may be replaced when dependencies are built.
