file(REMOVE_RECURSE
  "CMakeFiles/interval_index_test.dir/interval_index_test.cc.o"
  "CMakeFiles/interval_index_test.dir/interval_index_test.cc.o.d"
  "interval_index_test"
  "interval_index_test.pdb"
  "interval_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
