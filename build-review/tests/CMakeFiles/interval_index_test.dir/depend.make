# Empty dependencies file for interval_index_test.
# This may be replaced when dependencies are built.
