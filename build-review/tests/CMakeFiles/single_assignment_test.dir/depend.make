# Empty dependencies file for single_assignment_test.
# This may be replaced when dependencies are built.
