file(REMOVE_RECURSE
  "CMakeFiles/single_assignment_test.dir/single_assignment_test.cc.o"
  "CMakeFiles/single_assignment_test.dir/single_assignment_test.cc.o.d"
  "single_assignment_test"
  "single_assignment_test.pdb"
  "single_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
