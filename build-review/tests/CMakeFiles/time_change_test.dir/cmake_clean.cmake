file(REMOVE_RECURSE
  "CMakeFiles/time_change_test.dir/time_change_test.cc.o"
  "CMakeFiles/time_change_test.dir/time_change_test.cc.o.d"
  "time_change_test"
  "time_change_test.pdb"
  "time_change_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_change_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
