# Empty dependencies file for time_change_test.
# This may be replaced when dependencies are built.
