file(REMOVE_RECURSE
  "CMakeFiles/gap_test.dir/gap_test.cc.o"
  "CMakeFiles/gap_test.dir/gap_test.cc.o.d"
  "gap_test"
  "gap_test.pdb"
  "gap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
