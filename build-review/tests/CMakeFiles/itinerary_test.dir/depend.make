# Empty dependencies file for itinerary_test.
# This may be replaced when dependencies are built.
