file(REMOVE_RECURSE
  "CMakeFiles/itinerary_test.dir/itinerary_test.cc.o"
  "CMakeFiles/itinerary_test.dir/itinerary_test.cc.o.d"
  "itinerary_test"
  "itinerary_test.pdb"
  "itinerary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itinerary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
