# Empty dependencies file for sharded_solver_test.
# This may be replaced when dependencies are built.
