file(REMOVE_RECURSE
  "CMakeFiles/sharded_solver_test.dir/sharded_solver_test.cc.o"
  "CMakeFiles/sharded_solver_test.dir/sharded_solver_test.cc.o.d"
  "sharded_solver_test"
  "sharded_solver_test.pdb"
  "sharded_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
