file(REMOVE_RECURSE
  "CMakeFiles/xi_gepc_property_test.dir/xi_gepc_property_test.cc.o"
  "CMakeFiles/xi_gepc_property_test.dir/xi_gepc_property_test.cc.o.d"
  "xi_gepc_property_test"
  "xi_gepc_property_test.pdb"
  "xi_gepc_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xi_gepc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
