# Empty compiler generated dependencies file for xi_gepc_property_test.
# This may be replaced when dependencies are built.
