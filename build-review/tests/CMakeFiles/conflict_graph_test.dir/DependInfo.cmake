
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/conflict_graph_test.cc" "tests/CMakeFiles/conflict_graph_test.dir/conflict_graph_test.cc.o" "gcc" "tests/CMakeFiles/conflict_graph_test.dir/conflict_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/tests/CMakeFiles/gepc_test_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/gepc_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/gepc_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/service/CMakeFiles/gepc_service.dir/DependInfo.cmake"
  "/root/repo/build-review/src/iep/CMakeFiles/gepc_iep.dir/DependInfo.cmake"
  "/root/repo/build-review/src/shard/CMakeFiles/gepc_shard.dir/DependInfo.cmake"
  "/root/repo/build-review/src/exec/CMakeFiles/gepc_exec.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gepc/CMakeFiles/gepc_solvers.dir/DependInfo.cmake"
  "/root/repo/build-review/src/spatial/CMakeFiles/gepc_spatial.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gap/CMakeFiles/gepc_gap.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lp/CMakeFiles/gepc_lp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/flow/CMakeFiles/gepc_flow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/benchutil/CMakeFiles/gepc_benchutil.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/gepc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
