file(REMOVE_RECURSE
  "CMakeFiles/conflict_graph_test.dir/conflict_graph_test.cc.o"
  "CMakeFiles/conflict_graph_test.dir/conflict_graph_test.cc.o.d"
  "conflict_graph_test"
  "conflict_graph_test.pdb"
  "conflict_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
