# Empty compiler generated dependencies file for service_determinism_test.
# This may be replaced when dependencies are built.
