file(REMOVE_RECURSE
  "CMakeFiles/service_determinism_test.dir/service_determinism_test.cc.o"
  "CMakeFiles/service_determinism_test.dir/service_determinism_test.cc.o.d"
  "service_determinism_test"
  "service_determinism_test.pdb"
  "service_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
