# Empty compiler generated dependencies file for topup_test.
# This may be replaced when dependencies are built.
