file(REMOVE_RECURSE
  "CMakeFiles/topup_test.dir/topup_test.cc.o"
  "CMakeFiles/topup_test.dir/topup_test.cc.o.d"
  "topup_test"
  "topup_test.pdb"
  "topup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
