file(REMOVE_RECURSE
  "CMakeFiles/event_copies_test.dir/event_copies_test.cc.o"
  "CMakeFiles/event_copies_test.dir/event_copies_test.cc.o.d"
  "event_copies_test"
  "event_copies_test.pdb"
  "event_copies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_copies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
