# Empty dependencies file for event_copies_test.
# This may be replaced when dependencies are built.
