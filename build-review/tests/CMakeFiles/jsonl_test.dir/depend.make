# Empty dependencies file for jsonl_test.
# This may be replaced when dependencies are built.
