file(REMOVE_RECURSE
  "CMakeFiles/jsonl_test.dir/jsonl_test.cc.o"
  "CMakeFiles/jsonl_test.dir/jsonl_test.cc.o.d"
  "jsonl_test"
  "jsonl_test.pdb"
  "jsonl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsonl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
