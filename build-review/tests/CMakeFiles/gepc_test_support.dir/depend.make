# Empty dependencies file for gepc_test_support.
# This may be replaced when dependencies are built.
