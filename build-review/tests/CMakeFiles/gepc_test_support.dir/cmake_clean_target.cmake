file(REMOVE_RECURSE
  "libgepc_test_support.a"
)
