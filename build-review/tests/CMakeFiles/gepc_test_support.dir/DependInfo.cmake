
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paper_example.cc" "tests/CMakeFiles/gepc_test_support.dir/paper_example.cc.o" "gcc" "tests/CMakeFiles/gepc_test_support.dir/paper_example.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/gepc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/temporal/CMakeFiles/gepc_temporal.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/gepc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
