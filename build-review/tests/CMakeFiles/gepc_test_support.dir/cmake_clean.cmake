file(REMOVE_RECURSE
  "CMakeFiles/gepc_test_support.dir/paper_example.cc.o"
  "CMakeFiles/gepc_test_support.dir/paper_example.cc.o.d"
  "libgepc_test_support.a"
  "libgepc_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gepc_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
