file(REMOVE_RECURSE
  "CMakeFiles/lp_duality_test.dir/lp_duality_test.cc.o"
  "CMakeFiles/lp_duality_test.dir/lp_duality_test.cc.o.d"
  "lp_duality_test"
  "lp_duality_test.pdb"
  "lp_duality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_duality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
