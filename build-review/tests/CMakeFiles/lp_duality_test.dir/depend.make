# Empty dependencies file for lp_duality_test.
# This may be replaced when dependencies are built.
