file(REMOVE_RECURSE
  "CMakeFiles/plan_diff_test.dir/plan_diff_test.cc.o"
  "CMakeFiles/plan_diff_test.dir/plan_diff_test.cc.o.d"
  "plan_diff_test"
  "plan_diff_test.pdb"
  "plan_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
