# Empty compiler generated dependencies file for branch_and_bound_test.
# This may be replaced when dependencies are built.
