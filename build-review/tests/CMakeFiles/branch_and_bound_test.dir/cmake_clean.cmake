file(REMOVE_RECURSE
  "CMakeFiles/branch_and_bound_test.dir/branch_and_bound_test.cc.o"
  "CMakeFiles/branch_and_bound_test.dir/branch_and_bound_test.cc.o.d"
  "branch_and_bound_test"
  "branch_and_bound_test.pdb"
  "branch_and_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_and_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
