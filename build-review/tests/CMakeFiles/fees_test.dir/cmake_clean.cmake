file(REMOVE_RECURSE
  "CMakeFiles/fees_test.dir/fees_test.cc.o"
  "CMakeFiles/fees_test.dir/fees_test.cc.o.d"
  "fees_test"
  "fees_test.pdb"
  "fees_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
