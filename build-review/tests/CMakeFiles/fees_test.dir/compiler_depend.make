# Empty compiler generated dependencies file for fees_test.
# This may be replaced when dependencies are built.
