// City planner: generate a synthetic Meetup-like city (one of the paper's
// four presets), run both GEPC algorithms, and compare utility / runtime /
// lower-bound satisfaction — the workload the paper's introduction
// motivates (a platform computing everyone's "Plan for Today").
//
//   $ ./build/examples/city_planner [city] [scale]
//   e.g. ./build/examples/city_planner Auckland 0.5

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/timer.h"
#include "core/feasibility.h"
#include "data/cities.h"
#include "gepc/solver.h"

int main(int argc, char** argv) {
  const std::string city_name = argc > 1 ? argv[1] : "Auckland";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  auto city = gepc::FindCity(city_name);
  if (!city.ok()) {
    std::fprintf(stderr, "unknown city '%s'; options:", city_name.c_str());
    for (const auto& preset : gepc::PaperCities()) {
      std::fprintf(stderr, " %s", preset.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  auto instance = GenerateCity(*city, /*seed=*/2026, scale);
  if (!instance.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("City %s: %d users, %d events, conflict ratio %.2f, "
              "sum of lower bounds %lld\n\n",
              city->name.c_str(), instance->num_users(),
              instance->num_events(), instance->conflicts().ConflictRatio(),
              static_cast<long long>(instance->TotalLowerBound()));

  for (gepc::GepcAlgorithm algorithm :
       {gepc::GepcAlgorithm::kGreedy, gepc::GepcAlgorithm::kGapBased}) {
    gepc::GepcOptions options;
    options.algorithm = algorithm;
    options.gap_based.gap.lp.max_candidates_per_job = 10;
    options.gap_based.gap.auto_simplex_limit = 5000;
    gepc::Timer timer;
    auto result = SolveGepc(*instance, options);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   gepc::GepcAlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-7s utility %10.2f | %6.2fs | assignments %5lld | "
                "events below xi: %d | xi-step orphans: %d\n",
                gepc::GepcAlgorithmName(algorithm), result->total_utility,
                seconds,
                static_cast<long long>(result->plan.TotalAssignments()),
                result->events_below_lower_bound, result->unplaced_copies);
  }

  // Show a few example individual plans from the greedy solution.
  gepc::GepcOptions options;
  options.algorithm = gepc::GepcAlgorithm::kGreedy;
  auto result = SolveGepc(*instance, options);
  if (result.ok()) {
    std::printf("\nSample individual plans:\n");
    int shown = 0;
    for (int i = 0; i < instance->num_users() && shown < 5; ++i) {
      if (result->plan.events_of(i).empty()) continue;
      std::printf("  user %-5d:", i);
      for (gepc::EventId j : result->plan.events_of(i)) {
        std::printf(" e%-4d", j);
      }
      std::printf(" (cost %.1f / budget %.1f)\n",
                  UserTravelCost(*instance, result->plan, i),
                  instance->user(i).budget);
      ++shown;
    }
  }
  return 0;
}
