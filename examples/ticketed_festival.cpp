// Ticketed festival: the Sec. VII extension in action. A festival weekend
// has free community events and ticketed headline shows; users have one
// budget covering travel AND admission fees. We plan the weekend, show how
// pricing shifts attendance, and let the organizer probe ticket prices for
// one show (higher fee -> fewer users can afford it -> risk of falling
// below the minimum audience).
//
//   $ ./build/examples/ticketed_festival

#include <cstdio>
#include <algorithm>
#include <vector>

#include "core/itinerary.h"
#include "data/generator.h"
#include "gepc/solver.h"

namespace {

gepc::Result<gepc::Instance> MakeFestival(double headline_fee) {
  gepc::GeneratorConfig config;
  config.num_users = 120;
  config.num_events = 16;
  config.mean_eta = 25.0;
  config.mean_xi = 5.0;
  config.conflict_ratio = 0.4;  // festival slots overlap a lot
  config.seed = 77;
  auto instance = GenerateInstance(config);
  if (!instance.ok()) return instance;
  // The four highest-capacity events become ticketed headline shows.
  std::vector<int> by_capacity;
  for (int j = 0; j < instance->num_events(); ++j) by_capacity.push_back(j);
  std::sort(by_capacity.begin(), by_capacity.end(), [&](int a, int b) {
    return instance->event(a).upper_bound > instance->event(b).upper_bound;
  });
  for (int k = 0; k < 4; ++k) {
    const int j = by_capacity[static_cast<size_t>(k)];
    gepc::Event e = instance->event(j);
    std::vector<gepc::User> users(instance->users());
    std::vector<gepc::Event> events(instance->events());
    events[static_cast<size_t>(j)].fee = headline_fee;
    gepc::Instance priced(std::move(users), std::move(events));
    for (int i = 0; i < instance->num_users(); ++i) {
      for (int jj = 0; jj < instance->num_events(); ++jj) {
        priced.set_utility(i, jj, instance->utility(i, jj));
      }
    }
    *instance = std::move(priced);
  }
  return instance;
}

}  // namespace

int main() {
  std::printf("Ticket price sweep for the headline shows (budget covers "
              "travel + fees):\n\n");
  std::printf("%10s %14s %16s %14s\n", "fee", "total utility",
              "ticketed seats", "below minimum");
  for (double fee : {0.0, 10.0, 25.0, 50.0, 80.0}) {
    auto instance = MakeFestival(fee);
    if (!instance.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    auto result = SolveGepc(*instance, gepc::GepcOptions{});
    if (!result.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    // Headline shows = the four largest-capacity events (ticketed when
    // fee > 0); report their attendance at every price point.
    std::vector<int> by_capacity;
    for (int j = 0; j < instance->num_events(); ++j) by_capacity.push_back(j);
    std::sort(by_capacity.begin(), by_capacity.end(), [&](int a, int b) {
      return instance->event(a).upper_bound > instance->event(b).upper_bound;
    });
    int ticketed_attendance = 0;
    for (int k = 0; k < 4; ++k) {
      ticketed_attendance +=
          result->plan.attendance(by_capacity[static_cast<size_t>(k)]);
    }
    std::printf("%10.0f %14.2f %16d %14d\n", fee, result->total_utility,
                ticketed_attendance, result->events_below_lower_bound);
  }

  std::printf("\nSample itineraries at fee 25:\n\n");
  auto instance = MakeFestival(25.0);
  auto result = SolveGepc(*instance, gepc::GepcOptions{});
  if (!instance.ok() || !result.ok()) return 1;
  int shown = 0;
  for (const gepc::Itinerary& itinerary :
       BuildAllItineraries(*instance, result->plan)) {
    if (itinerary.total_fees <= 0.0) continue;  // show ticket buyers
    std::printf("%s\n", itinerary.ToString().c_str());
    if (++shown == 3) break;
  }
  std::printf("Higher ticket prices squeeze attendance toward free events; "
              "past some price the headline shows cannot fill their "
              "minimum audience.\n");
  return 0;
}
