// Organizer what-if: an event organizer weighs candidate changes to their
// event — raising the minimum attendance (Summer-Palace-style group
// discounts), shrinking the venue, or moving the slot — and sees the
// platform-wide consequences of each option before committing: new total
// utility, how many users would lose an event (dif), and whether the event
// would still be viable.
//
//   $ ./build/examples/organizer_whatif [event-id]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/cities.h"
#include "gepc/solver.h"
#include "iep/planner.h"

using gepc::AtomicOp;

int main(int argc, char** argv) {
  auto city = gepc::FindCity("Beijing");
  if (!city.ok()) return 1;
  auto instance = GenerateCity(*city, /*seed=*/99, /*scale=*/1.0);
  if (!instance.ok()) return 1;

  gepc::GepcOptions options;
  options.algorithm = gepc::GepcAlgorithm::kGreedy;
  auto initial = SolveGepc(*instance, options);
  if (!initial.ok()) return 1;

  // Pick the organizer's event: the best-attended one unless overridden.
  gepc::EventId event = argc > 1 ? std::atoi(argv[1]) : -1;
  if (event < 0 || event >= instance->num_events()) {
    event = 0;
    for (int j = 1; j < instance->num_events(); ++j) {
      if (initial->plan.attendance(j) > initial->plan.attendance(event)) {
        event = j;
      }
    }
  }
  const gepc::Event& e = instance->event(event);
  std::printf("Event e%d: xi=%d eta=%d, time %s, currently %d attendees.\n"
              "Baseline platform utility: %.2f\n\n",
              event, e.lower_bound, e.upper_bound,
              gepc::FormatInterval(e.time).c_str(),
              initial->plan.attendance(event), initial->total_utility);

  struct WhatIf {
    const char* description;
    AtomicOp op;
  };
  const int attendance = initial->plan.attendance(event);
  std::vector<WhatIf> scenarios = {
      {"require 3 more attendees (xi + 3)",
       AtomicOp::LowerBoundChange(event, attendance + 3)},
      {"move to a smaller room (eta = attendance / 2)",
       AtomicOp::UpperBoundChange(event, attendance / 2)},
      {"start two hours earlier",
       AtomicOp::TimeChange(event,
                            {e.time.start - 120, e.time.end - 120})},
      {"push into the evening (+4 h)",
       AtomicOp::TimeChange(event,
                            {e.time.start + 240, e.time.end + 240})},
  };

  std::printf("%-46s %12s %6s %10s %s\n", "what-if", "utility", "dif",
              "attendees", "viable?");
  for (const WhatIf& scenario : scenarios) {
    // Each what-if runs on a fresh planner seeded with the same morning
    // state, so scenarios are independent.
    auto planner = gepc::IncrementalPlanner::Create(*instance, initial->plan);
    if (!planner.ok()) return 1;
    auto result = planner->Apply(scenario.op);
    if (!result.ok()) {
      std::printf("%-46s rejected: %s\n", scenario.description,
                  result.status().ToString().c_str());
      continue;
    }
    const int new_attendance = result->plan.attendance(event);
    const bool viable =
        new_attendance >= planner->instance().event(event).lower_bound;
    std::printf("%-46s %12.2f %6lld %10d %s\n", scenario.description,
                result->total_utility,
                static_cast<long long>(result->negative_impact),
                new_attendance, viable ? "yes" : "NO — would be cancelled");
  }

  std::printf("\n(dif = number of attendances existing users would lose; "
              "Definition 2's negative impact.)\n");
  return 0;
}
