// Quickstart: build the paper's running example (5 users, 4 events —
// Example 1 / Table I) by hand, solve the GEPC problem with both
// algorithms, and print the resulting individual plans.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/feasibility.h"
#include "core/instance.h"
#include "gepc/solver.h"
#include "temporal/interval.h"

using gepc::Event;
using gepc::Instance;
using gepc::User;

namespace {

Instance BuildExampleInstance() {
  // Users: (location, travel budget) — Table I row 1.
  std::vector<User> users = {
      {{0.0, 0.0}, 18.0}, {{5.0, 5.0}, 20.0}, {{4.0, 5.0}, 20.0},
      {{4.0, 6.0}, 30.0}, {{4.0, 4.0}, 10.0},
  };
  // Events: (location, xi, eta, holding time) — Table I columns 1 and 7.
  std::vector<Event> events = {
      {{1.0, -4.0}, 1, 3, {13 * 60, 15 * 60}},      // e1: 1:00-3:00 p.m.
      {{6.0, 0.0}, 2, 4, {16 * 60, 18 * 60}},       // e2: 4:00-6:00 p.m.
      {{3.0, 8.0}, 3, 4, {13 * 60 + 30, 15 * 60}},  // e3: 1:30-3:00 p.m.
      {{4.0, 2.0}, 1, 5, {18 * 60, 20 * 60}},       // e4: 6:00-8:00 p.m.
  };
  Instance instance(std::move(users), std::move(events));
  const double mu[5][4] = {
      {0.7, 0.6, 0.9, 0.3}, {0.6, 0.5, 0.8, 0.4}, {0.4, 0.7, 0.9, 0.5},
      {0.2, 0.3, 0.8, 0.6}, {0.3, 0.1, 0.6, 0.7},
  };
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) instance.set_utility(i, j, mu[i][j]);
  }
  return instance;
}

void PrintPlan(const Instance& instance, const gepc::GepcResult& result,
               const char* name) {
  std::printf("%s plan — total utility %.2f, travel-feasible: %s\n", name,
              result.total_utility,
              ValidatePlan(instance, result.plan).ok() ? "yes" : "partial");
  for (int i = 0; i < instance.num_users(); ++i) {
    std::printf("  u%d (budget %4.1f, spends %5.2f):", i + 1,
                instance.user(i).budget,
                UserTravelCost(instance, result.plan, i));
    for (gepc::EventId j : result.plan.events_of(i)) {
      std::printf(" e%d[%s]", j + 1,
                  gepc::FormatInterval(instance.event(j).time).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Instance instance = BuildExampleInstance();

  gepc::GepcOptions options;
  options.algorithm = gepc::GepcAlgorithm::kGreedy;
  auto greedy = SolveGepc(instance, options);
  if (!greedy.ok()) {
    std::fprintf(stderr, "greedy solve failed: %s\n",
                 greedy.status().ToString().c_str());
    return 1;
  }
  PrintPlan(instance, *greedy, "Greedy (Algorithm 2)");

  options.algorithm = gepc::GepcAlgorithm::kGapBased;
  auto gap = SolveGepc(instance, options);
  if (!gap.ok()) {
    std::fprintf(stderr, "GAP-based solve failed: %s\n",
                 gap.status().ToString().c_str());
    return 1;
  }
  PrintPlan(instance, *gap, "GAP-based (Sec. III-A)");

  std::printf("Every event met its participation lower bound: %s\n",
              (greedy->events_below_lower_bound == 0 &&
               gap->events_below_lower_bound == 0)
                  ? "yes"
                  : "no");
  return 0;
}
