// Incremental day: plan a city once, then stream a day's worth of atomic
// changes (venue shrinks, demand bumps, reschedules, cancellations, budget
// cuts, a new event) through the IncrementalPlanner, printing the utility
// and negative impact (dif) of every repair — the IEP workflow of Sec. IV.
//
//   $ ./build/examples/incremental_day [seed]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "common/timer.h"
#include "data/cities.h"
#include "gepc/solver.h"
#include "iep/planner.h"

using gepc::AtomicOp;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  auto city = gepc::FindCity("Auckland");
  if (!city.ok()) return 1;
  auto instance = GenerateCity(*city, seed, /*scale=*/0.5);
  if (!instance.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  gepc::GepcOptions options;
  options.algorithm = gepc::GepcAlgorithm::kGreedy;
  auto initial = SolveGepc(*instance, options);
  if (!initial.ok()) return 1;
  std::printf("Morning plan: %d users, %d events, utility %.2f\n\n",
              instance->num_users(), instance->num_events(),
              initial->total_utility);

  auto planner = gepc::IncrementalPlanner::Create(*instance, initial->plan);
  if (!planner.ok()) return 1;

  gepc::Rng rng(seed * 31 + 1);
  const int m = planner->instance().num_events();
  auto random_event = [&] {
    return static_cast<gepc::EventId>(
        rng.UniformUint64(static_cast<uint64_t>(m)));
  };

  struct Change {
    const char* what;
    AtomicOp op;
  };
  const gepc::EventId shrink = random_event();
  const gepc::EventId demand = random_event();
  const gepc::EventId resched = random_event();
  gepc::Event fresh;
  fresh.location = {55, 45};
  fresh.lower_bound = 2;
  fresh.upper_bound = 15;
  fresh.time = {10, 40};
  std::vector<double> utilities(
      static_cast<size_t>(planner->instance().num_users()));
  for (auto& mu : utilities) mu = rng.Bernoulli(0.5) ? rng.UniformDouble() : 0;

  std::vector<Change> day = {
      {"venue shrinks (eta halved)",
       AtomicOp::UpperBoundChange(
           shrink, planner->instance().event(shrink).upper_bound / 2)},
      {"organizer needs more people (xi +2)",
       AtomicOp::LowerBoundChange(
           demand, planner->instance().event(demand).lower_bound + 2)},
      {"event rescheduled one hour later",
       AtomicOp::TimeChange(resched,
                            {planner->instance().event(resched).time.start + 60,
                             planner->instance().event(resched).time.end + 60})},
      {"user 3 loses interest in event 1", AtomicOp::UtilityChange(3, 1, 0.0)},
      {"user 5's budget halves",
       AtomicOp::BudgetChange(5, planner->instance().user(5).budget / 2)},
      {"a new event is announced", AtomicOp::NewEvent(fresh, utilities)},
  };

  for (const Change& change : day) {
    gepc::Timer timer;
    auto result = planner->Apply(change.op);
    const double ms = timer.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "  %-38s FAILED: %s\n", change.what,
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("  %-38s utility %9.2f | dif %2lld | %6.2f ms%s\n",
                change.what, result->total_utility,
                static_cast<long long>(result->negative_impact), ms,
                result->events_below_lower_bound > 0 ? "  (shortfall!)" : "");
  }

  std::printf("\nEvening plan utility: %.2f (started at %.2f)\n",
              planner->plan().TotalUtility(planner->instance()),
              initial->total_utility);
  return 0;
}
