// Week simulation: run the EBSN platform simulator for a week over a
// synthetic city, once maintaining the plan incrementally (IEP) and once
// re-planning from scratch every day, and compare the daily utility, user
// disruption (dif) and planning time — the system-level argument for the
// paper's incremental algorithms.
//
//   $ ./build/examples/week_simulation [days] [seed]

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"

namespace {

gepc::SimulationConfig MakeConfig(int days, uint64_t seed, bool incremental) {
  gepc::SimulationConfig config;
  config.base.num_users = 300;
  config.base.num_events = 30;
  config.base.mean_eta = 12.0;
  config.base.mean_xi = 4.0;
  config.base.seed = 1234;
  config.num_days = days;
  config.new_events_per_day = 2;
  config.incremental = incremental;
  config.seed = seed;
  return config;
}

void PrintRun(const char* label, const gepc::SimulationResult& result) {
  std::printf("%s\n", label);
  std::printf("  day  ops  utility     effective  below-xi  dif   time(ms)\n");
  for (const gepc::DayMetrics& day : result.days) {
    std::printf("  %3d  %3d  %9.2f  %9.2f  %7d  %4lld  %8.2f\n", day.day,
                day.ops, day.total_utility, day.effective_utility,
                day.events_below_lower_bound,
                static_cast<long long>(day.negative_impact),
                day.plan_seconds * 1e3);
  }
  std::printf("  total user disruption (dif): %lld | total planning time: "
              "%.2f ms\n\n",
              static_cast<long long>(result.total_negative_impact),
              result.total_plan_seconds * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 7;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  auto incremental = RunSimulation(MakeConfig(days, seed, true));
  if (!incremental.ok()) {
    std::fprintf(stderr, "incremental run failed: %s\n",
                 incremental.status().ToString().c_str());
    return 1;
  }
  PrintRun("== Incremental maintenance (IEP, Sec. IV) ==", *incremental);

  auto replan = RunSimulation(MakeConfig(days, seed, false));
  if (!replan.ok()) {
    std::fprintf(stderr, "re-plan run failed: %s\n",
                 replan.status().ToString().c_str());
    return 1;
  }
  PrintRun("== Re-plan from scratch every day (baseline) ==", *replan);

  std::printf("The incremental planner disrupts far fewer users (dif %lld "
              "vs %lld) at comparable utility.\n",
              static_cast<long long>(incremental->total_negative_impact),
              static_cast<long long>(replan->total_negative_impact));
  return 0;
}
