// Checkpoint-directory races: ListCheckpoints and PruneCheckpoints running
// concurrently with a writer publishing new checkpoints (rename-in-flight,
// stray .tmp files present). Directory readers must never observe a torn
// or half-renamed checkpoint as valid, never crash on entries appearing or
// disappearing mid-iteration, and pruning must stay safe while the set it
// is pruning keeps changing underneath it.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

namespace fs = std::filesystem;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/ckpt_race_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  EXPECT_FALSE(ec) << ec.message();
  return dir;
}

TEST(CkptRaceTest, ListSkipsStrayTempFiles) {
  const std::string dir = FreshDir("stray_tmp");
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  ASSERT_TRUE(WriteCheckpoint(dir, instance, plan, 3).ok());

  // What a crash mid-publication leaves behind: a half-written temp next
  // to the real checkpoint, plus unrelated clutter.
  {
    std::ofstream torn(dir + "/ckpt-00000000000000000009.gckp.tmp");
    torn << "GCKP1 torn garbage";
    std::ofstream foreign(dir + "/README.txt");
    foreign << "not a checkpoint";
  }

  auto refs = ListCheckpoints(dir);
  ASSERT_TRUE(refs.ok()) << refs.status().ToString();
  ASSERT_EQ(refs->size(), 1u);
  EXPECT_EQ((*refs)[0].version, 3u);

  // Pruning the directory is equally unimpressed by the clutter.
  auto survivors = PruneCheckpoints(dir, 1);
  ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
  EXPECT_EQ(survivors->size(), 1u);
}

TEST(CkptRaceTest, ListConcurrentWithPublishingWriter) {
  const std::string dir = FreshDir("list_vs_writer");
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();

  constexpr int kWrites = 40;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int version = 1; version <= kWrites; ++version) {
      auto written =
          WriteCheckpoint(dir, instance, plan,
                          static_cast<uint64_t>(version));
      EXPECT_TRUE(written.ok()) << written.status().ToString();
      if (!written.ok()) break;
    }
    writer_done.store(true);
  });

  // Readers hammer the directory the whole time the writer publishes.
  // Every listing must be well-formed: versions strictly descending,
  // every listed file loadable (rename-in-flight must never surface a
  // partially-visible checkpoint).
  uint64_t max_seen = 0;
  while (!writer_done.load()) {
    auto refs = ListCheckpoints(dir);
    ASSERT_TRUE(refs.ok()) << refs.status().ToString();
    for (size_t i = 1; i < refs->size(); ++i) {
      EXPECT_GT((*refs)[i - 1].version, (*refs)[i].version);
    }
    if (!refs->empty()) {
      max_seen = std::max(max_seen, (*refs)[0].version);
      auto loaded = LoadCheckpoint((*refs)[0].path);
      ASSERT_TRUE(loaded.ok())
          << (*refs)[0].path << ": " << loaded.status().ToString();
      EXPECT_EQ(loaded->version, (*refs)[0].version);
    }
  }
  writer.join();
  EXPECT_GT(max_seen, 0u);

  auto final_refs = ListCheckpoints(dir);
  ASSERT_TRUE(final_refs.ok());
  EXPECT_EQ((*final_refs)[0].version, static_cast<uint64_t>(kWrites));
}

TEST(CkptRaceTest, PruneConcurrentWithPublishingWriter) {
  const std::string dir = FreshDir("prune_vs_writer");
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  ASSERT_TRUE(WriteCheckpoint(dir, instance, plan, 1).ok());

  constexpr int kWrites = 40;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int version = 2; version <= kWrites; ++version) {
      auto written =
          WriteCheckpoint(dir, instance, plan,
                          static_cast<uint64_t>(version));
      EXPECT_TRUE(written.ok()) << written.status().ToString();
      if (!written.ok()) break;
    }
    writer_done.store(true);
  });

  // A pruner races the writer. A file the listing saw may be pruned away
  // by a concurrent pruner in a real deployment; here there is a single
  // pruner, so every prune must succeed and keep the newest checkpoint.
  while (!writer_done.load()) {
    auto survivors = PruneCheckpoints(dir, 2);
    ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
    ASSERT_FALSE(survivors->empty());
    EXPECT_LE(survivors->size(), 2u);
    auto loaded = LoadCheckpoint(survivors->front().path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  }
  writer.join();

  auto survivors = PruneCheckpoints(dir, 2);
  ASSERT_TRUE(survivors.ok());
  EXPECT_EQ(survivors->front().version, static_cast<uint64_t>(kWrites));
}

TEST(CkptRaceTest, PinnedPruneKeepsAnchorWhileWriterAdvances) {
  const std::string dir = FreshDir("pinned_prune");
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  for (uint64_t version = 1; version <= 4; ++version) {
    ASSERT_TRUE(WriteCheckpoint(dir, instance, plan, version).ok());
  }

  constexpr int kWrites = 30;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int version = 5; version <= kWrites; ++version) {
      auto written =
          WriteCheckpoint(dir, instance, plan,
                          static_cast<uint64_t>(version));
      EXPECT_TRUE(written.ok()) << written.status().ToString();
      if (!written.ok()) break;
    }
    writer_done.store(true);
  });

  // A follower pinned at version 2: every concurrent prune must keep a
  // checkpoint at or below the pin (the anchor a resyncing follower would
  // bootstrap from), no matter how far the writer has advanced.
  while (!writer_done.load()) {
    auto survivors = PruneCheckpoints(dir, 1, /*retention_pin=*/2);
    ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
    bool anchored = false;
    for (const CheckpointRef& ref : *survivors) {
      if (ref.version <= 2) anchored = true;
    }
    EXPECT_TRUE(anchored) << "pin=2 lost its anchor";
  }
  writer.join();

  // Releasing the pin lets the anchor go.
  auto survivors = PruneCheckpoints(dir, 1, kNoRetentionPin);
  ASSERT_TRUE(survivors.ok());
  ASSERT_EQ(survivors->size(), 1u);
  EXPECT_EQ(survivors->front().version, static_cast<uint64_t>(kWrites));
}

}  // namespace
}  // namespace gepc
