#include "gepc/topup.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;

TEST(TopUpTest, FillsEmptyPlanWithinConstraints) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  const TopUpStats stats = TopUpPlan(instance, &plan);
  EXPECT_GT(stats.added, 0);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, plan, options).ok());
}

TEST(TopUpTest, RespectsUpperBounds) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE3, 0, 2).ok());
  Plan plan(5, 4);
  TopUpPlan(instance, &plan);
  EXPECT_LE(plan.attendance(kE3), 2);
}

TEST(TopUpTest, NeverRemovesExistingAssignments) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(4, kE4);
  TopUpPlan(instance, &plan);
  EXPECT_TRUE(plan.Contains(4, kE4));
}

TEST(TopUpTest, HighestUtilityPairsWinScarceCapacity) {
  // Only one seat on e3; u1 and u3 both value it at 0.9 (tie broken by
  // user id), so user 0 gets it.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE3, 0, 1).ok());
  Plan plan(5, 4);
  TopUpPlan(instance, &plan);
  EXPECT_EQ(plan.attendance(kE3), 1);
  EXPECT_TRUE(plan.Contains(0, kE3));
}

TEST(TopUpTest, SkipsZeroUtilityPairs) {
  Instance instance = MakePaperInstance();
  for (int j = 0; j < 4; ++j) instance.set_utility(4, j, 0.0);
  Plan plan(5, 4);
  TopUpPlan(instance, &plan);
  EXPECT_TRUE(plan.events_of(4).empty());
}

TEST(TopUpUsersTest, OnlyTouchesListedUsers) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  TopUpUsers(instance, {2}, &plan);
  for (int i = 0; i < 5; ++i) {
    if (i != 2) EXPECT_TRUE(plan.events_of(i).empty()) << "user " << i;
  }
  EXPECT_FALSE(plan.events_of(2).empty());
}

TEST(TopUpUsersTest, PaperExample6Tail) {
  // After e4 is removed from u4's plan, the re-offer step must hand u4
  // event e2 (Example 6).
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 1, 1).ok());
  Plan plan = testing_support::MakePaperPlan();
  plan.Remove(3, kE4);
  const TopUpStats stats = TopUpUsers(instance, {3}, &plan);
  EXPECT_EQ(stats.added, 1);
  EXPECT_TRUE(plan.Contains(3, kE2));
}

TEST(TopUpTest, IdempotentOnSaturatedPlan) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  TopUpPlan(instance, &plan);
  const Plan saturated = plan;
  const TopUpStats again = TopUpPlan(instance, &plan);
  EXPECT_EQ(again.added, 0);
  EXPECT_TRUE(plan == saturated);
}

}  // namespace
}  // namespace gepc
