// Randomized sweep over instances and atomic operations: every incremental
// repair must keep the plan feasible on constraints 1-3, report a dif that
// matches the actual plan delta, and stay utility-competitive with the
// re-solve-from-scratch baselines (the paper's Tables VII-IX observation).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "iep/planner.h"

namespace gepc {
namespace {

AtomicOp RandomOp(const Instance& instance, Rng* rng) {
  const EventId event = static_cast<EventId>(
      rng->UniformUint64(static_cast<uint64_t>(instance.num_events())));
  const UserId user = static_cast<UserId>(
      rng->UniformUint64(static_cast<uint64_t>(instance.num_users())));
  switch (rng->UniformUint64(7)) {
    case 0: {
      const int eta = instance.event(event).upper_bound;
      return AtomicOp::UpperBoundChange(
          event, std::max(0, eta - static_cast<int>(rng->UniformInt(1, 4))));
    }
    case 1: {
      const int xi = instance.event(event).lower_bound;
      return AtomicOp::LowerBoundChange(
          event, std::min(instance.event(event).upper_bound,
                          xi + static_cast<int>(rng->UniformInt(1, 3))));
    }
    case 2: {
      const Interval old = instance.event(event).time;
      const Minutes shift = static_cast<Minutes>(rng->UniformInt(-120, 120));
      return AtomicOp::TimeChange(
          event, {old.start + shift, old.end + shift});
    }
    case 3:
      return AtomicOp::UtilityChange(user, event,
                                     rng->Bernoulli(0.5)
                                         ? 0.0
                                         : rng->UniformDouble(0.0, 1.0));
    case 4:
      return AtomicOp::BudgetChange(
          user, instance.user(user).budget * rng->UniformDouble(0.3, 1.5));
    case 5:
      return AtomicOp::LocationChange(
          event, {rng->UniformDouble(0, 100), rng->UniformDouble(0, 100)});
    default: {
      Event fresh;
      fresh.location = {rng->UniformDouble(0, 100), rng->UniformDouble(0, 100)};
      fresh.lower_bound = static_cast<int>(rng->UniformInt(0, 2));
      fresh.upper_bound =
          fresh.lower_bound + static_cast<int>(rng->UniformInt(1, 5));
      const Minutes start = static_cast<Minutes>(rng->UniformInt(0, 700));
      fresh.time = {start, start + static_cast<Minutes>(rng->UniformInt(30, 120))};
      std::vector<double> utilities;
      for (int i = 0; i < instance.num_users(); ++i) {
        utilities.push_back(rng->Bernoulli(0.5) ? rng->UniformDouble(0, 1)
                                                : 0.0);
      }
      return AtomicOp::NewEvent(fresh, std::move(utilities));
    }
  }
}

class IepRandomSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IepRandomSweep, RepairedPlansStayFeasibleAndAccounted) {
  GeneratorConfig config;
  config.num_users = 60;
  config.num_events = 14;
  config.mean_eta = 9.0;
  config.mean_xi = 2.0;
  config.seed = GetParam() * 131;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());

  GepcOptions solve_options;
  solve_options.algorithm = GepcAlgorithm::kGreedy;
  solve_options.greedy.seed = GetParam();
  auto initial = SolveGepc(*instance, solve_options);
  ASSERT_TRUE(initial.ok());

  auto planner = IncrementalPlanner::Create(*instance, initial->plan);
  ASSERT_TRUE(planner.ok());

  Rng rng(GetParam() * 977 + 5);
  for (int step = 0; step < 12; ++step) {
    const Plan before = planner->plan();
    const AtomicOp op = RandomOp(planner->instance(), &rng);
    auto result = planner->Apply(op);
    ASSERT_TRUE(result.ok()) << "step " << step << ": " << result.status();

    // Constraints 1-3 hold on the repaired plan.
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    ASSERT_TRUE(
        ValidatePlan(planner->instance(), result->plan, validation).ok())
        << "step " << step;

    // Counted removals upper-bound the measured plan delta (a chained
    // repair may remove an attendance it only added mid-repair, so the
    // counter can exceed the net dif, never undershoot it).
    EXPECT_GE(result->negative_impact, NegativeImpact(before, result->plan))
        << "step " << step;

    // Utility accounting is exact.
    EXPECT_NEAR(result->total_utility,
                result->plan.TotalUtility(planner->instance()), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IepRandomSweep,
                         ::testing::Range<uint64_t>(1, 13));

class IepVsResolve : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IepVsResolve, IncrementalStaysCompetitiveWithResolve) {
  GeneratorConfig config;
  config.num_users = 50;
  config.num_events = 12;
  config.mean_eta = 8.0;
  config.mean_xi = 2.0;
  config.seed = GetParam() * 311;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());

  GepcOptions solve_options;
  solve_options.algorithm = GepcAlgorithm::kGreedy;
  auto initial = SolveGepc(*instance, solve_options);
  ASSERT_TRUE(initial.ok());
  auto planner = IncrementalPlanner::Create(*instance, initial->plan);
  ASSERT_TRUE(planner.ok());

  Rng rng(GetParam() * 31 + 7);
  const AtomicOp op = RandomOp(planner->instance(), &rng);
  auto baseline = planner->ReSolve(op, solve_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  auto incremental = planner->Apply(op);
  ASSERT_TRUE(incremental.ok()) << incremental.status();

  // Tables VII-IX: incremental utility is "almost the same" as re-running;
  // either side may win, but the incremental result must not collapse.
  EXPECT_GE(incremental->total_utility, 0.5 * baseline->total_utility)
      << "incremental " << incremental->total_utility << " vs re-solve "
      << baseline->total_utility;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IepVsResolve,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace gepc
