#include "service/jsonl.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace gepc {
namespace {

TEST(JsonlParseTest, FlatObjectWithAllValueTypes) {
  auto object = ParseJsonObject(
      R"({"cmd":"apply","user":7,"ratio":-2.5,"wait":false,"tag":null})");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->at("cmd").type, JsonValue::Type::kString);
  EXPECT_EQ(object->at("cmd").string_value, "apply");
  EXPECT_EQ(object->at("user").type, JsonValue::Type::kNumber);
  EXPECT_DOUBLE_EQ(object->at("user").number_value, 7.0);
  EXPECT_DOUBLE_EQ(object->at("ratio").number_value, -2.5);
  EXPECT_EQ(object->at("wait").type, JsonValue::Type::kBool);
  EXPECT_FALSE(object->at("wait").bool_value);
  EXPECT_EQ(object->at("tag").type, JsonValue::Type::kNull);
}

TEST(JsonlParseTest, WhitespaceAndEmptyObject) {
  EXPECT_TRUE(ParseJsonObject("  { }  ").ok());
  auto object = ParseJsonObject(" { \"a\" : 1 , \"b\" : \"x\" } ");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->size(), 2u);
}

TEST(JsonlParseTest, StringEscapes) {
  auto object = ParseJsonObject(R"({"s":"a\"b\\c\nd\tA"})");
  ASSERT_TRUE(object.ok()) << object.status();
  EXPECT_EQ(object->at("s").string_value, "a\"b\\c\nd\tA");
}

TEST(JsonlParseTest, MalformedInputsRejected) {
  EXPECT_FALSE(ParseJsonObject("").ok());
  EXPECT_FALSE(ParseJsonObject("not json").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\":1").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\":tru}").ok());
  EXPECT_FALSE(ParseJsonObject("{\"a\":\"unterminated}").ok());
}

TEST(JsonlParseTest, NestedStructuresRejected) {
  EXPECT_FALSE(ParseJsonObject(R"({"a":{"b":1}})").ok());
  EXPECT_FALSE(ParseJsonObject(R"({"a":[1,2]})").ok());
}

TEST(JsonlWriteTest, InsertionOrderAndTypes) {
  JsonWriter writer;
  writer.Add("ok", true);
  writer.Add("seq", static_cast<uint64_t>(12));
  writer.Add("utility", 88.25);
  writer.Add("name", "week of 3/2");
  writer.AddRaw("stops", "[1,2]");
  EXPECT_EQ(writer.Finish(),
            R"({"ok":true,"seq":12,"utility":88.25,"name":"week of 3/2","stops":[1,2]})");
}

TEST(JsonlWriteTest, EscapingRoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01";
  JsonWriter writer;
  writer.Add("s", nasty);
  auto parsed = ParseJsonObject(writer.Finish());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->at("s").string_value, nasty);
}

TEST(JsonlWriteTest, NumbersRoundTrip) {
  for (const double value :
       {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 12.880807237860413, 1e-9, 1e17}) {
    const std::string rendered = JsonNumber(value);
    EXPECT_EQ(std::strtod(rendered.c_str(), nullptr), value)
        << "value " << value << " rendered as " << rendered;
  }
}

TEST(JsonlWriteTest, EmptyObject) {
  JsonWriter writer;
  EXPECT_EQ(writer.Finish(), "{}");
}

}  // namespace
}  // namespace gepc
