#include "temporal/conflict_graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gepc {
namespace {

TEST(ConflictGraphTest, EmptyGraph) {
  ConflictGraph graph(std::vector<Interval>{});
  EXPECT_EQ(graph.size(), 0);
  EXPECT_EQ(graph.conflict_pair_count(), 0);
  EXPECT_DOUBLE_EQ(graph.ConflictRatio(), 0.0);
}

TEST(ConflictGraphTest, SingleIntervalSelfConflictsOnly) {
  ConflictGraph graph({{0, 10}});
  EXPECT_TRUE(graph.conflicts(0, 0));
  EXPECT_TRUE(graph.neighbors(0).empty());
  EXPECT_DOUBLE_EQ(graph.ConflictRatio(), 0.0);
}

TEST(ConflictGraphTest, PairwiseRelations) {
  ConflictGraph graph({{0, 10}, {5, 15}, {20, 30}});
  EXPECT_TRUE(graph.conflicts(0, 1));
  EXPECT_TRUE(graph.conflicts(1, 0));
  EXPECT_FALSE(graph.conflicts(0, 2));
  EXPECT_FALSE(graph.conflicts(1, 2));
  EXPECT_EQ(graph.conflict_pair_count(), 1);
}

TEST(ConflictGraphTest, NeighborsSortedAndSymmetric) {
  ConflictGraph graph({{0, 100}, {10, 20}, {30, 40}, {200, 300}});
  EXPECT_EQ(graph.neighbors(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(graph.neighbors(1), (std::vector<int>{0}));
  EXPECT_EQ(graph.neighbors(3), (std::vector<int>{}));
}

TEST(ConflictGraphTest, ConflictRatioCountsTouchedEvents) {
  // Events 0 and 1 conflict; 2 and 3 are free => ratio 0.5.
  ConflictGraph graph({{0, 10}, {5, 15}, {20, 25}, {30, 35}});
  EXPECT_DOUBLE_EQ(graph.ConflictRatio(), 0.5);
}

TEST(ConflictGraphTest, MaxConflictDegree) {
  // Interval 0 overlaps everything; the others are mutually disjoint.
  ConflictGraph graph({{0, 100}, {1, 10}, {20, 30}, {40, 50}});
  EXPECT_EQ(graph.MaxConflictDegree(), 3);
}

TEST(ConflictGraphTest, TouchingIntervalsConflict) {
  ConflictGraph graph({{0, 10}, {10, 20}});
  EXPECT_TRUE(graph.conflicts(0, 1));
}

TEST(ConflictGraphTest, MatchesBruteForceOnRandomIntervals) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Interval> intervals;
    const int n = 2 + static_cast<int>(rng.UniformUint64(40));
    for (int i = 0; i < n; ++i) {
      const Minutes start = static_cast<Minutes>(rng.UniformInt(0, 500));
      const Minutes end =
          start + 1 + static_cast<Minutes>(rng.UniformInt(0, 120));
      intervals.push_back({start, end});
    }
    ConflictGraph graph(intervals);
    for (int a = 0; a < n; ++a) {
      for (int b = 0; b < n; ++b) {
        const bool expected =
            a == b || Conflicts(intervals[static_cast<size_t>(a)],
                                intervals[static_cast<size_t>(b)]);
        EXPECT_EQ(graph.conflicts(a, b), expected)
            << "trial " << trial << " pair (" << a << ", " << b << ")";
      }
    }
  }
}

TEST(ConflictGraphTest, AllOverlappingIsComplete) {
  ConflictGraph graph({{0, 100}, {1, 99}, {2, 98}, {3, 97}});
  EXPECT_EQ(graph.conflict_pair_count(), 6);
  EXPECT_DOUBLE_EQ(graph.ConflictRatio(), 1.0);
  EXPECT_EQ(graph.MaxConflictDegree(), 3);
}

TEST(ConflictGraphTest, IdenticalIntervalsConflict) {
  ConflictGraph graph({{5, 10}, {5, 10}, {5, 10}});
  EXPECT_EQ(graph.conflict_pair_count(), 3);
}

}  // namespace
}  // namespace gepc
