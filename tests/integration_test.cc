// End-to-end pipeline: generate a synthetic city, plan it with both GEPC
// algorithms, then drive a day of incremental changes through the planner —
// the full production flow of the library.

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/cities.h"
#include "gepc/solver.h"
#include "iep/planner.h"

namespace gepc {
namespace {

TEST(IntegrationTest, BeijingScaleCityBothAlgorithms) {
  auto city = FindCity("Beijing");
  ASSERT_TRUE(city.ok());
  auto instance = GenerateCity(*city, /*seed=*/2024, /*scale=*/1.0);
  ASSERT_TRUE(instance.ok()) << instance.status();

  double gap_utility = 0.0;
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(*instance, options);
    ASSERT_TRUE(result.ok()) << result.status();
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(*instance, result->plan, validation).ok());
    EXPECT_GT(result->total_utility, 0.0);
    if (algorithm == GepcAlgorithm::kGapBased) {
      gap_utility = result->total_utility;
    }
  }
  EXPECT_GT(gap_utility, 0.0);
}

TEST(IntegrationTest, FullDayOfIncrementalChanges) {
  auto city = FindCity("Beijing");
  ASSERT_TRUE(city.ok());
  auto instance = GenerateCity(*city, 7, 0.5);
  ASSERT_TRUE(instance.ok());

  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  auto initial = SolveGepc(*instance, options);
  ASSERT_TRUE(initial.ok());

  auto planner = IncrementalPlanner::Create(*instance, initial->plan);
  ASSERT_TRUE(planner.ok());

  // A realistic mixed sequence: venue shrink, demand bump, reschedule,
  // a user losing interest, a budget cut, a new event announcement.
  const int m = planner->instance().num_events();
  std::vector<AtomicOp> day = {
      AtomicOp::UpperBoundChange(0 % m,
                                 planner->instance().event(0 % m).upper_bound / 2),
      AtomicOp::LowerBoundChange(1 % m,
                                 planner->instance().event(1 % m).lower_bound + 1),
      AtomicOp::TimeChange(2 % m,
                           {planner->instance().event(2 % m).time.start + 60,
                            planner->instance().event(2 % m).time.end + 60}),
      AtomicOp::UtilityChange(0, 3 % m, 0.0),
      AtomicOp::BudgetChange(1, planner->instance().user(1).budget * 0.5),
  };
  Event fresh;
  fresh.location = {50, 50};
  fresh.lower_bound = 1;
  fresh.upper_bound = 10;
  fresh.time = {5, 25};
  std::vector<double> utilities(
      static_cast<size_t>(planner->instance().num_users()), 0.4);
  day.push_back(AtomicOp::NewEvent(fresh, std::move(utilities)));

  int64_t total_dif = 0;
  for (size_t step = 0; step < day.size(); ++step) {
    auto result = planner->Apply(day[step]);
    ASSERT_TRUE(result.ok()) << "step " << step << ": " << result.status();
    total_dif += result->negative_impact;
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    ASSERT_TRUE(
        ValidatePlan(planner->instance(), planner->plan(), validation).ok())
        << "step " << step;
  }
  // The day's churn should be bounded: a handful of atomic ops cannot nuke
  // the whole plan.
  EXPECT_LT(total_dif, planner->plan().TotalAssignments());
}

TEST(IntegrationTest, IncrementalDisturbsFewPlansOnEtaDecrease) {
  auto city = FindCity("Auckland");
  ASSERT_TRUE(city.ok());
  auto instance = GenerateCity(*city, 11, 0.3);
  ASSERT_TRUE(instance.ok());

  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  auto initial = SolveGepc(*instance, options);
  ASSERT_TRUE(initial.ok());
  auto planner = IncrementalPlanner::Create(*instance, initial->plan);
  ASSERT_TRUE(planner.ok());

  // Halve the capacity of the most-attended event; at most that many
  // attendances can be disturbed, everyone else's plan must be byte-equal.
  EventId target = 0;
  for (int j = 1; j < planner->instance().num_events(); ++j) {
    if (planner->plan().attendance(j) > planner->plan().attendance(target)) {
      target = j;
    }
  }
  const Plan before = planner->plan();
  const int attendance = before.attendance(target);
  const int new_eta = std::max(0, attendance / 2);
  auto result =
      planner->Apply(AtomicOp::UpperBoundChange(target, new_eta));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, attendance - new_eta);
  int untouched = 0;
  for (int i = 0; i < before.num_users(); ++i) {
    std::vector<EventId> a = before.events_of(i);
    std::vector<EventId> b = result->plan.events_of(i);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a == b) ++untouched;
  }
  EXPECT_GE(untouched,
            before.num_users() - (attendance - new_eta));
}

}  // namespace
}  // namespace gepc
