#include "gepc/ilp.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/exact.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(GepcIlpTest, SolvesPaperInstanceFeasibly) {
  const Instance instance = MakePaperInstance();
  auto result = SolveGepcIlp(instance);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->feasible);
  EXPECT_TRUE(ValidatePlan(instance, result->plan).ok());
  EXPECT_GE(result->total_utility, 6.3 - 1e-9);  // Table I plan is feasible
  EXPECT_NEAR(result->total_utility, result->plan.TotalUtility(instance),
              1e-6);
}

TEST(GepcIlpTest, MatchesCombinatorialExactOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  auto ilp = SolveGepcIlp(instance);
  auto exact = SolveGepcExact(instance);
  ASSERT_TRUE(ilp.ok() && exact.ok());
  ASSERT_TRUE(ilp->feasible && exact->feasible);
  EXPECT_NEAR(ilp->total_utility, exact->total_utility, 1e-6);
}

TEST(GepcIlpTest, MatchesCombinatorialExactOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    GeneratorConfig config;
    config.num_users = 6;
    config.num_events = 5;
    config.num_groups = 3;
    config.mean_eta = 3.0;
    config.mean_xi = 1.0;
    config.conflict_ratio = 0.4;
    config.seed = seed * 101;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto ilp = SolveGepcIlp(*instance);
    auto exact = SolveGepcExact(*instance);
    ASSERT_TRUE(ilp.ok()) << "seed " << seed << ": " << ilp.status();
    ASSERT_TRUE(exact.ok()) << "seed " << seed;
    ASSERT_EQ(ilp->feasible, exact->feasible) << "seed " << seed;
    if (ilp->feasible) {
      EXPECT_NEAR(ilp->total_utility, exact->total_utility, 1e-6)
          << "seed " << seed;
      EXPECT_TRUE(ValidatePlan(*instance, ilp->plan).ok()) << "seed " << seed;
    }
  }
}

TEST(GepcIlpTest, DetectsInfeasibility) {
  // One user, two simultaneous events each requiring an attendee.
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{1, 0}, 1, 1, {0, 10}},
                               {{0, 1}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.5);
  instance.set_utility(0, 1, 0.5);
  auto result = SolveGepcIlp(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
}

TEST(GepcIlpTest, InfeasibleWhenLowerBoundUnreachable) {
  // xi = 1 but the only user cannot afford the event.
  std::vector<User> users = {{{0, 0}, 1.0}};
  std::vector<Event> events = {{{100, 100}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  auto result = SolveGepcIlp(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
}

TEST(GepcIlpTest, RejectsOversizedInstances) {
  GepcIlpOptions options;
  options.max_users = 2;
  EXPECT_EQ(SolveGepcIlp(MakePaperInstance(), options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gepc
