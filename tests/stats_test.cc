#include "benchutil/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gepc {
namespace {

TEST(SampleStatsTest, EmptyStats) {
  SampleStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.median(), 0.0);
}

TEST(SampleStatsTest, SingleSample) {
  SampleStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.median(), 4.0);
}

TEST(SampleStatsTest, KnownMeanAndStddev) {
  SampleStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleStatsTest, Percentiles) {
  SampleStats stats;
  for (int v = 1; v <= 100; ++v) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
}

TEST(SampleStatsTest, MinMax) {
  SampleStats stats;
  stats.Add(-3.0);
  stats.Add(10.0);
  stats.Add(2.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(SampleStatsTest, WelfordMatchesTwoPassOnRandomData) {
  Rng rng(77);
  SampleStats stats;
  std::vector<double> values;
  for (int k = 0; k < 1000; ++k) {
    const double v = rng.Gaussian(5.0, 3.0);
    values.push_back(v);
    stats.Add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.stddev(), std::sqrt(var), 1e-9);
}

}  // namespace
}  // namespace gepc
