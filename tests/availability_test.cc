#include "iep/availability.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(AvailabilityTest, PaperIntroExample) {
  // Sec. II-B: u1's availability shrinks to 2:00 p.m. - 8:00 p.m.; e1
  // (1:00-3:00 p.m.) and e3 (1:30-3:00 p.m.) start before 2 p.m., so both
  // utilities zero; e2 (4-6 p.m.) and e4 (6-8 p.m.) stay attendable.
  const Instance instance = MakePaperInstance();
  const std::vector<AtomicOp> ops =
      AvailabilityChangeOps(instance, 0, {14 * 60, 20 * 60});
  ASSERT_EQ(ops.size(), 2u);
  for (const AtomicOp& op : ops) {
    EXPECT_EQ(op.kind, AtomicOp::Kind::kUtilityChanged);
    EXPECT_EQ(op.user, 0);
    EXPECT_DOUBLE_EQ(op.new_utility, 0.0);
    EXPECT_TRUE(op.event == kE1 || op.event == kE3);
  }
}

TEST(AvailabilityTest, FullDayWindowChangesNothing) {
  const Instance instance = MakePaperInstance();
  EXPECT_TRUE(AvailabilityChangeOps(instance, 0, {0, 24 * 60}).empty());
}

TEST(AvailabilityTest, ZeroUtilityEventsSkipped) {
  Instance instance = MakePaperInstance();
  instance.set_utility(0, kE1, 0.0);
  const std::vector<AtomicOp> ops =
      AvailabilityChangeOps(instance, 0, {14 * 60, 20 * 60});
  ASSERT_EQ(ops.size(), 1u);  // only e3 remains to zero
  EXPECT_EQ(ops[0].event, kE3);
}

TEST(AvailabilityTest, AppliedChangeRemovesEventsAndRepairs) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  auto batch = ApplyAvailabilityChange(&*planner, 0, {14 * 60, 20 * 60});
  ASSERT_TRUE(batch.ok()) << batch.status();
  // u1 loses e1 (the plan held it); utilities for e1/e3 are now zero.
  EXPECT_FALSE(planner->plan().Contains(0, kE1));
  EXPECT_DOUBLE_EQ(planner->instance().utility(0, kE1), 0.0);
  EXPECT_DOUBLE_EQ(planner->instance().utility(0, kE3), 0.0);
  EXPECT_GE(batch->negative_impact, 1);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(planner->instance(), planner->plan(), options).ok());
}

TEST(AvailabilityTest, BadArgumentsRejected) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  EXPECT_EQ(ApplyAvailabilityChange(nullptr, 0, {0, 10}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplyAvailabilityChange(&*planner, 99, {0, 10}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ApplyAvailabilityChange(&*planner, 0, {10, 10}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AvailabilityTest, EventExactlyAtWindowEdgesStays) {
  const Instance instance = MakePaperInstance();
  // Window exactly covering e2 (4-6 p.m.).
  const std::vector<AtomicOp> ops =
      AvailabilityChangeOps(instance, 1, {16 * 60, 18 * 60});
  for (const AtomicOp& op : ops) EXPECT_NE(op.event, kE2);
}

}  // namespace
}  // namespace gepc
