#include "core/plan_diff.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(PlanDiffTest, IdenticalPlansAreEmpty) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  const PlanDiff diff = DiffPlans(instance, plan, plan);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.total_lost, 0);
  EXPECT_EQ(diff.total_gained, 0);
  EXPECT_DOUBLE_EQ(diff.utility_delta, 0.0);
  EXPECT_EQ(diff.ToString(), "(no changes)\n");
}

TEST(PlanDiffTest, PaperExample3Delta) {
  // Example 3: u4 swaps e4 for e2; everyone else unchanged.
  const Instance instance = MakePaperInstance();
  const Plan before = MakePaperPlan();
  Plan after = before;
  after.Remove(3, kE4);
  after.Add(3, kE2);
  const PlanDiff diff = DiffPlans(instance, before, after);
  ASSERT_EQ(diff.users.size(), 1u);
  EXPECT_EQ(diff.users[0].user, 3);
  EXPECT_EQ(diff.users[0].lost, (std::vector<EventId>{kE4}));
  EXPECT_EQ(diff.users[0].gained, (std::vector<EventId>{kE2}));
  EXPECT_EQ(diff.total_lost, 1);  // Example 3's dif = 1
  EXPECT_EQ(diff.total_lost, NegativeImpact(before, after));
  EXPECT_NEAR(diff.utility_delta, 0.3 - 0.6, 1e-12);
}

TEST(PlanDiffTest, AggregatesAcrossUsers) {
  const Instance instance = MakePaperInstance();
  const Plan before = MakePaperPlan();
  Plan after = before;
  after.Remove(0, kE1);
  after.Remove(4, kE4);
  after.Add(4, kE3);
  const PlanDiff diff = DiffPlans(instance, before, after);
  ASSERT_EQ(diff.users.size(), 2u);
  EXPECT_EQ(diff.total_lost, 2);
  EXPECT_EQ(diff.total_gained, 1);
  EXPECT_EQ(diff.total_lost, NegativeImpact(before, after));
}

TEST(PlanDiffTest, GrownEventDimensionCountsAsGained) {
  const Instance instance = MakePaperInstance();
  const Plan before = MakePaperPlan();
  Plan after = before;
  after.EnsureEventCapacity(6);
  after.Add(2, 5);
  const PlanDiff diff = DiffPlans(instance, before, after);
  ASSERT_EQ(diff.users.size(), 1u);
  EXPECT_EQ(diff.users[0].gained, (std::vector<EventId>{5}));
  EXPECT_EQ(diff.total_lost, 0);
  // The new event is outside the instance's matrix: utility delta ignores it.
  EXPECT_DOUBLE_EQ(diff.utility_delta, 0.0);
}

TEST(PlanDiffTest, ToStringFormatsSignedEvents) {
  const Instance instance = MakePaperInstance();
  const Plan before = MakePaperPlan();
  Plan after = before;
  after.Remove(3, kE4);
  after.Add(3, kE2);
  const std::string rendered = DiffPlans(instance, before, after).ToString();
  EXPECT_NE(rendered.find("u3:"), std::string::npos);
  EXPECT_NE(rendered.find("-e3"), std::string::npos);  // kE4 == event id 3
  EXPECT_NE(rendered.find("+e1"), std::string::npos);  // kE2 == event id 1
  EXPECT_NE(rendered.find("1 lost"), std::string::npos);
}

}  // namespace
}  // namespace gepc
