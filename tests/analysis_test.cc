#include "gepc/analysis.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "gepc/exact.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(AnalysisTest, UcCountsEventsWithinHalfBudget) {
  // u5 at (4,4), budget 10 -> reach 5: e2 (6,0) at dist ~4.47, e3 (3,8) at
  // ~4.12, e4 (4,2) at 2 are in; e1 (1,-4) at ~8.54 is out.
  const Instance instance = MakePaperInstance();
  EXPECT_EQ(UcOf(instance, 4), 3);
}

TEST(AnalysisTest, BiggerBudgetNeverLowersUc) {
  Instance instance = MakePaperInstance();
  const int before = UcOf(instance, 4);
  instance.set_user_budget(4, 100.0);
  EXPECT_GE(UcOf(instance, 4), before);
  EXPECT_EQ(UcOf(instance, 4), 4);  // everything reachable now
}

TEST(AnalysisTest, FeesShrinkTheRadius) {
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{4.9, 0}, 0, 1, {0, 10}, /*fee=*/0.0}};
  Instance no_fee(users, events);
  EXPECT_EQ(UcOf(no_fee, 0), 1);
  events[0].fee = 2.0;  // 4.9 + 1.0 > 5.0
  Instance with_fee(std::move(users), std::move(events));
  EXPECT_EQ(UcOf(with_fee, 0), 0);
}

TEST(AnalysisTest, UcMaxIsTheMaximum) {
  const Instance instance = MakePaperInstance();
  int expected = 0;
  for (int i = 0; i < instance.num_users(); ++i) {
    expected = std::max(expected, UcOf(instance, i));
  }
  EXPECT_EQ(UcMax(instance), expected);
  EXPECT_EQ(UcMax(instance), 4);  // u4 (budget 30) reaches everything
}

TEST(AnalysisTest, RatioFloorsArePositiveAndOrdered) {
  const Instance instance = MakePaperInstance();
  const double greedy_floor = GreedyRatioFloor(instance);
  const double gap_floor = GapRatioFloor(instance, 0.1);
  EXPECT_GT(greedy_floor, 0.0);
  EXPECT_GT(gap_floor, 0.0);
  // Paper: the GAP-based bound 1/(Uc_max - 1) is tighter (larger) than the
  // greedy bound 1/(2 Uc_max) for Uc_max >= 2 (minus the small eps term).
  EXPECT_GT(gap_floor, greedy_floor);
}

TEST(AnalysisTest, DegenerateInstancesGiveZeroFloors) {
  std::vector<User> users = {{{0, 0}, 0.5}};
  std::vector<Event> events = {{{50, 50}, 0, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  EXPECT_EQ(UcMax(instance), 0);
  EXPECT_DOUBLE_EQ(GreedyRatioFloor(instance), 0.0);
  EXPECT_DOUBLE_EQ(GapRatioFloor(instance), 0.0);
}

TEST(AnalysisTest, MeasuredRatiosRespectTheFloors) {
  // The paper's guarantees hold empirically: on feasible small instances
  // with the lower bounds met, each algorithm's utility / OPT must be at
  // least its proven floor.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorConfig config;
    config.num_users = 6;
    config.num_events = 5;
    config.num_groups = 3;
    config.mean_eta = 3.0;
    config.mean_xi = 1.0;
    config.seed = seed * 211;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto exact = SolveGepcExact(*instance);
    ASSERT_TRUE(exact.ok());
    if (!exact->feasible || exact->total_utility <= 0.0) continue;
    for (GepcAlgorithm algorithm :
         {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
      GepcOptions options;
      options.algorithm = algorithm;
      auto approx = SolveGepc(*instance, options);
      ASSERT_TRUE(approx.ok());
      if (approx->events_below_lower_bound > 0) continue;
      const double ratio = approx->total_utility / exact->total_utility;
      const double floor = algorithm == GepcAlgorithm::kGreedy
                               ? GreedyRatioFloor(*instance)
                               : GapRatioFloor(*instance);
      EXPECT_GE(ratio, floor - 1e-9)
          << GepcAlgorithmName(algorithm) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gepc
