#include "lp/branch_and_bound.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gap/exact_gap.h"
#include "gap/gap_instance.h"

namespace gepc {
namespace {

TEST(BinaryMipTest, KnapsackToy) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2 (0/1) -> a + b = 16.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 3);
  lp.set_objective(0, 10);
  lp.set_objective(1, 6);
  lp.set_objective(2, 4);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::kLessEqual, 2.0);
  auto result = SolveBinaryMip(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 16.0, 1e-7);
  EXPECT_NEAR(result->x[0], 1.0, 1e-9);
  EXPECT_NEAR(result->x[1], 1.0, 1e-9);
  EXPECT_NEAR(result->x[2], 0.0, 1e-9);
}

TEST(BinaryMipTest, FractionalLpOptimumGetsRounded) {
  // max a + b s.t. a + b <= 1.5: LP gives 1.5, MIP must settle for 1.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1);
  lp.set_objective(1, 1);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 1.5);
  auto result = SolveBinaryMip(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 1.0, 1e-7);
}

TEST(BinaryMipTest, MinimizationWithCovering) {
  // min a + b + c s.t. a + b >= 1, b + c >= 1, a + c >= 1 -> 2 variables.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 3);
  for (int v = 0; v < 3; ++v) lp.set_objective(v, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 1.0);
  lp.AddConstraint({{1, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1.0);
  lp.AddConstraint({{0, 1.0}, {2, 1.0}}, Relation::kGreaterEqual, 1.0);
  auto result = SolveBinaryMip(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 2.0, 1e-7);
}

TEST(BinaryMipTest, InfeasibleDetected) {
  // a >= 0.4 and a <= 0.6 has no 0/1 point.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kGreaterEqual, 0.4);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 0.6);
  auto result = SolveBinaryMip(lp);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(BinaryMipTest, NodeBudgetAborts) {
  LinearProgram lp(LinearProgram::Sense::kMaximize, 6);
  for (int v = 0; v < 6; ++v) lp.set_objective(v, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0},
                    {5, 1.0}},
                   Relation::kLessEqual, 2.5);
  MipOptions options;
  options.max_nodes = 1;
  auto result = SolveBinaryMip(lp, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(BinaryMipTest, AgreesWithCombinatorialExactGapSolver) {
  // Cross-check: the GAP MIP formulation (assignment + capacity rows) must
  // produce the same optimal cost as the dedicated branch-and-bound.
  Rng rng(606);
  int rounds = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const int machines = 3;
    const int jobs = 5;
    GapInstance gap(machines, jobs);
    for (int i = 0; i < machines; ++i) {
      gap.set_capacity(i, rng.UniformDouble(8.0, 14.0));
    }
    for (int j = 0; j < jobs; ++j) {
      for (int i = 0; i < machines; ++i) {
        gap.SetPair(i, j, rng.UniformDouble(1.0, 6.0),
                    rng.UniformDouble(0.0, 1.0));
      }
    }
    auto exact = SolveGapExact(gap);
    ASSERT_TRUE(exact.ok());

    LinearProgram lp(LinearProgram::Sense::kMinimize, machines * jobs);
    auto var = [&](int i, int j) { return i * jobs + j; };
    for (int i = 0; i < machines; ++i) {
      for (int j = 0; j < jobs; ++j) {
        lp.set_objective(var(i, j), gap.cost(i, j));
      }
    }
    for (int j = 0; j < jobs; ++j) {
      std::vector<std::pair<int, double>> terms;
      for (int i = 0; i < machines; ++i) terms.emplace_back(var(i, j), 1.0);
      lp.AddConstraint(std::move(terms), Relation::kEqual, 1.0);
    }
    for (int i = 0; i < machines; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < jobs; ++j) {
        terms.emplace_back(var(i, j), gap.processing(i, j));
      }
      lp.AddConstraint(std::move(terms), Relation::kLessEqual,
                       gap.capacity(i));
    }
    MipOptions options;
    options.max_nodes = 200000;
    auto mip = SolveBinaryMip(lp, options);
    if (!exact->feasible) {
      EXPECT_FALSE(mip.ok()) << "trial " << trial;
      continue;
    }
    ASSERT_TRUE(mip.ok()) << "trial " << trial << ": " << mip.status();
    EXPECT_NEAR(mip->objective_value, exact->total_cost, 1e-6)
        << "trial " << trial;
    ++rounds;
  }
  EXPECT_GT(rounds, 2);
}

}  // namespace
}  // namespace gepc
