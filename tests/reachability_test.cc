#include "spatial/reachability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/feasibility.h"
#include "core/plan.h"
#include "data/generator.h"
#include "gepc/topup.h"
#include "gepc/user_menus.h"
#include "geom/point.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

Instance MakeGenerated(int users, int events, uint64_t seed,
                       double budget_lo = 0.1, double budget_hi = 0.4) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  config.budget_min_fraction = budget_lo;
  config.budget_max_fraction = budget_hi;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

std::vector<EventId> BruteAttendable(const Instance& instance, UserId i) {
  std::vector<EventId> events;
  const User& user = instance.user(i);
  for (EventId j = 0; j < instance.num_events(); ++j) {
    const Event& event = instance.event(j);
    const double round_trip =
        2.0 * Distance(user.location, event.location) + event.fee;
    if (round_trip <= user.budget + ReachabilityFilter::kBudgetEpsilon) {
      events.push_back(j);
    }
  }
  return events;
}

TEST(ReachabilityFilterTest, MatchesBruteForceOnGeneratedInstances) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Instance instance = MakeGenerated(60, 25, seed);
    const ReachabilityFilter filter(instance);
    for (UserId i = 0; i < instance.num_users(); ++i) {
      EXPECT_EQ(filter.AttendableEvents(i), BruteAttendable(instance, i))
          << "seed " << seed << " user " << i;
    }
  }
}

TEST(ReachabilityFilterTest, MatchesBruteForceWithFees) {
  GeneratorConfig config;
  config.num_users = 50;
  config.num_events = 20;
  config.seed = 77;
  config.mean_fee = 5.0;
  config.budget_min_fraction = 0.1;
  config.budget_max_fraction = 0.5;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  const ReachabilityFilter filter(*instance);
  for (UserId i = 0; i < instance->num_users(); ++i) {
    EXPECT_EQ(filter.AttendableEvents(i), BruteAttendable(*instance, i));
    for (EventId j : filter.AttendableEvents(i)) {
      EXPECT_TRUE(filter.CanReach(i, j));
    }
  }
}

TEST(ReachabilityFilterTest, CoversEverySoloAttendableEvent) {
  // Soundness against the real feasibility check: anything CanAttend
  // admits on an empty plan must be inside the filter's candidate set.
  const Instance instance = MakeGenerated(40, 20, 9);
  const ReachabilityFilter filter(instance);
  const Plan empty(instance.num_users(), instance.num_events());
  for (UserId i = 0; i < instance.num_users(); ++i) {
    const std::vector<EventId> candidates = filter.AttendableEvents(i);
    for (EventId j = 0; j < instance.num_events(); ++j) {
      if (!CanAttend(instance, empty, i, j)) continue;
      EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), j) !=
                  candidates.end())
          << "user " << i << " event " << j;
    }
  }
}

TEST(ReachabilityFilterTest, UserMenuIdenticalWithAndWithoutFilter) {
  for (const Instance& instance :
       {MakePaperInstance(), MakeGenerated(30, 12, 5)}) {
    const ReachabilityFilter filter(instance);
    for (UserId i = 0; i < instance.num_users(); ++i) {
      for (bool by_utility : {false, true}) {
        auto plain = BuildUserMenu(instance, i, by_utility);
        auto filtered = BuildUserMenu(instance, i, by_utility, &filter);
        ASSERT_TRUE(plain.ok());
        ASSERT_TRUE(filtered.ok());
        EXPECT_EQ(plain->subsets, filtered->subsets) << "user " << i;
        EXPECT_EQ(plain->utilities, filtered->utilities) << "user " << i;
        EXPECT_EQ(plain->attendable, filtered->attendable) << "user " << i;
        EXPECT_DOUBLE_EQ(plain->best_utility, filtered->best_utility);
      }
    }
  }
}

TEST(ReachabilityFilterTest, TopUpIdenticalWithAndWithoutFilter) {
  const Instance instance = MakeGenerated(50, 20, 13);
  Plan plain(instance.num_users(), instance.num_events());
  Plan filtered = plain;
  const ReachabilityFilter filter(instance);
  const TopUpStats plain_stats = TopUpPlan(instance, &plain);
  const TopUpStats filtered_stats = TopUpPlan(instance, &filtered, &filter);
  EXPECT_EQ(plain_stats.added, filtered_stats.added);
  EXPECT_TRUE(plain == filtered);
}

TEST(ReachabilityFilterTest, ZeroBudgetUserReachesOnlyCoLocatedFreeEvents) {
  std::vector<User> users;
  users.push_back(User{Point{5.0, 5.0}, /*budget=*/0.0});
  std::vector<Event> events;
  Event at_home;
  at_home.location = Point{5.0, 5.0};
  at_home.time = Interval{0, 10};
  at_home.lower_bound = 0;
  at_home.upper_bound = 1;
  Event away = at_home;
  away.location = Point{6.0, 5.0};
  away.time = Interval{20, 30};
  events.push_back(at_home);
  events.push_back(away);
  Instance instance(std::move(users), std::move(events));
  const ReachabilityFilter filter(instance);
  EXPECT_EQ(filter.AttendableEvents(0), std::vector<EventId>{0});
}

}  // namespace
}  // namespace gepc
