// Service-level observability acceptance: replaying the 1k-op determinism
// workload through a journaled PlanningService must yield *exact* latency
// quantiles (the reservoir holds every observation), queue-wait samples for
// queued submissions, and a Prometheus-parseable text exposition combining
// the global registry with the per-service stats block.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "obs/metrics.h"
#include "service/metrics.h"
#include "service/planning_service.h"

namespace gepc {
namespace {

AtomicOp RandomOp(const Instance& instance, Rng* rng) {
  const int num_users = instance.num_users();
  const int num_events = instance.num_events();
  const int user = static_cast<int>(rng->UniformUint64(num_users));
  const int event = static_cast<int>(rng->UniformUint64(num_events));
  switch (rng->UniformUint64(6)) {
    case 0: {
      const int eta = static_cast<int>(rng->UniformUint64(12));
      const int target =
          rng->Bernoulli(0.05) ? num_events + 3 : event;  // 5% invalid id
      return AtomicOp::UpperBoundChange(target, eta);
    }
    case 1:
      return AtomicOp::LowerBoundChange(event,
                                        static_cast<int>(rng->UniformUint64(6)));
    case 2: {
      const int start = static_cast<int>(rng->UniformUint64(20)) * 60;
      const int duration = 30 + static_cast<int>(rng->UniformUint64(4)) * 30;
      return AtomicOp::TimeChange(event, {start, start + duration});
    }
    case 3:
      return AtomicOp::LocationChange(
          event, {rng->UniformDouble(0.0, 100.0),
                  rng->UniformDouble(0.0, 100.0)});
    case 4:
      return AtomicOp::BudgetChange(user, rng->UniformDouble(10.0, 160.0));
    default:
      return AtomicOp::UtilityChange(user, event,
                                     rng->Bernoulli(0.2)
                                         ? 0.0
                                         : rng->UniformDouble(0.0, 1.0));
  }
}

/// Manual nearest-rank quantile over a sorted sample vector — the oracle
/// the HistogramSnapshot must agree with when `exact`.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

/// Minimal Prometheus text-format validator: every line is a # HELP/# TYPE
/// comment or `name[{labels}] value`. Returns the first bad line.
std::string FirstBadPrometheusLine(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  const std::string name_start =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:";
  const std::string name_rest = name_start + "0123456789";
  while (std::getline(in, line)) {
    if (line.empty()) return line + " (blank line)";
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return line;
      }
      continue;
    }
    size_t pos = 0;
    if (name_start.find(line[0]) == std::string::npos) return line;
    while (pos < line.size() && name_rest.find(line[pos]) != std::string::npos) {
      ++pos;
    }
    if (pos < line.size() && line[pos] == '{') {
      const size_t close = line.find('}', pos);
      if (close == std::string::npos) return line;
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') return line;
    const std::string value = line.substr(pos + 1);
    if (value.empty()) return line;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') return line;
    }
  }
  return "";
}

TEST(ObsServiceTest, ThousandOpWorkloadHasExactQuantiles) {
  GeneratorConfig config;
  config.num_users = 60;
  config.num_events = 12;
  config.mean_xi = 2;
  config.mean_eta = 8;
  config.seed = 20260806;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  auto solved = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const Instance base_instance = *instance;

  const std::string journal_path = ::testing::TempDir() + "/obs_service.gops";
  std::remove(journal_path.c_str());
  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(*std::move(instance),
                                         std::move(solved->plan), options);
  ASSERT_TRUE(service.ok()) << service.status();

  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    (*service)->Apply(RandomOp(base_instance, &rng));
  }
  (*service)->Drain();
  const ServiceStats stats = (*service)->Stats();
  (*service)->Shutdown();
  std::remove(journal_path.c_str());

  // 1000 ops fit the 8192-slot reservoir, so the histogram holds every
  // observation and the quantiles are exact — not bucket interpolations.
  ASSERT_EQ(stats.apply_ms.count, 1000u);
  ASSERT_TRUE(stats.apply_ms.exact);
  ASSERT_EQ(stats.apply_ms.samples.size(), 1000u);
  ASSERT_TRUE(std::is_sorted(stats.apply_ms.samples.begin(),
                             stats.apply_ms.samples.end()));

  EXPECT_DOUBLE_EQ(stats.apply_ms_p50,
                   NearestRank(stats.apply_ms.samples, 0.5));
  EXPECT_DOUBLE_EQ(stats.apply_ms_p90,
                   NearestRank(stats.apply_ms.samples, 0.9));
  EXPECT_DOUBLE_EQ(stats.apply_ms_p99,
                   NearestRank(stats.apply_ms.samples, 0.99));
  EXPECT_DOUBLE_EQ(stats.apply_ms_max, stats.apply_ms.samples.back());
  EXPECT_DOUBLE_EQ(stats.apply_ms_p50, stats.apply_ms.Quantile(0.5));

  // Every applied/rejected op passed through the queue exactly once.
  EXPECT_EQ(stats.ops_submitted, 1000u);
  EXPECT_EQ(stats.ops_applied + stats.ops_rejected, 1000u);
  EXPECT_EQ(stats.queue_wait_ms.count, 1000u);
  EXPECT_TRUE(stats.queue_wait_ms.exact);
  EXPECT_GE(stats.queue_wait_ms.max, 0.0);

  // The journal instrumentation in the global registry saw this workload.
  const auto append_ms =
      obs::Registry::Global().GetHistogram("gepc_journal_append_ms");
  EXPECT_GE(append_ms->count(), 1000u);
}

TEST(ObsServiceTest, ExpositionTextParsesAsPrometheus) {
  GeneratorConfig config;
  config.num_users = 30;
  config.num_events = 8;
  config.seed = 99;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  auto solved = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const Instance base_instance = *instance;

  auto service = PlanningService::Create(*std::move(instance),
                                         std::move(solved->plan), {});
  ASSERT_TRUE(service.ok()) << service.status();
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    (*service)->Apply(RandomOp(base_instance, &rng));
  }
  (*service)->Drain();
  const ServiceStats stats = (*service)->Stats();
  (*service)->Shutdown();

  const std::string service_text = RenderServiceStatsText(stats);
  EXPECT_EQ(FirstBadPrometheusLine(service_text), "");
  EXPECT_NE(service_text.find("gepc_service_ops_submitted_total 50"),
            std::string::npos);
  EXPECT_NE(service_text.find("# TYPE gepc_service_apply_ms histogram"),
            std::string::npos);
  EXPECT_NE(service_text.find("gepc_service_apply_ms_count 50"),
            std::string::npos);
  EXPECT_NE(service_text.find("# TYPE gepc_service_queue_wait_ms histogram"),
            std::string::npos);

  const std::string registry_text =
      obs::Registry::Global().RenderPrometheusText();
  EXPECT_EQ(FirstBadPrometheusLine(registry_text), "");
  // The solver ran at least once in this process, so its phase metrics are
  // registered under the documented names.
  EXPECT_NE(registry_text.find("# TYPE gepc_solver_solves_total counter"),
            std::string::npos);
  EXPECT_NE(registry_text.find("# TYPE gepc_solver_total_ms histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace gepc
