#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/baselines.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(SingleAssignmentTest, AtMostOneEventPerUser) {
  const Instance instance = MakePaperInstance();
  auto result = SolveSingleAssignmentOptimal(instance);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int i = 0; i < instance.num_users(); ++i) {
    EXPECT_LE(result->plan.events_of(i).size(), 1u) << "user " << i;
  }
}

TEST(SingleAssignmentTest, EveryAssignmentAffordableAndWanted) {
  const Instance instance = MakePaperInstance();
  auto result = SolveSingleAssignmentOptimal(instance);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < instance.num_users(); ++i) {
    for (EventId j : result->plan.events_of(i)) {
      EXPECT_GT(instance.utility(i, j), 0.0);
      EXPECT_LE(2.0 * instance.UserEventDistance(i, j) +
                    instance.event(j).fee,
                instance.user(i).budget + 1e-9);
    }
  }
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result->plan, options).ok());
}

TEST(SingleAssignmentTest, PicksEveryUsersBestWhenCapacityIsSlack) {
  // With eta larger than n on every event, each user simply gets their
  // affordable argmax.
  Instance instance = MakePaperInstance();
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(instance.set_event_bounds(j, 0, 5).ok());
  }
  auto result = SolveSingleAssignmentOptimal(instance);
  ASSERT_TRUE(result.ok());
  for (int i = 0; i < instance.num_users(); ++i) {
    double best = 0.0;
    for (int j = 0; j < 4; ++j) {
      if (2.0 * instance.UserEventDistance(i, j) <=
          instance.user(i).budget + 1e-9) {
        best = std::max(best, instance.utility(i, j));
      }
    }
    double got = 0.0;
    for (EventId j : result->plan.events_of(i)) {
      got += instance.utility(i, j);
    }
    EXPECT_NEAR(got, best, 1e-9) << "user " << i;
  }
}

TEST(SingleAssignmentTest, CapacityForcesSecondChoices) {
  // One seat on the event everyone loves most; the optimum gives it to the
  // highest-utility user and routes the rest to runners-up.
  std::vector<User> users(3, User{{0, 0}, 100.0});
  std::vector<Event> events = {{{1, 0}, 0, 1, {0, 10}},
                               {{0, 1}, 0, 3, {20, 30}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  instance.set_utility(1, 0, 0.8);
  instance.set_utility(2, 0, 0.7);
  for (int i = 0; i < 3; ++i) instance.set_utility(i, 1, 0.5);
  auto result = SolveSingleAssignmentOptimal(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.Contains(0, 0));
  EXPECT_TRUE(result->plan.Contains(1, 1));
  EXPECT_TRUE(result->plan.Contains(2, 1));
  EXPECT_NEAR(result->total_utility, 0.9 + 0.5 + 0.5, 1e-9);
}

TEST(SingleAssignmentTest, OptimalAmongSingleAssignmentsByBruteForce) {
  Rng rng(2112);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratorConfig config;
    config.num_users = 5;
    config.num_events = 4;
    config.num_groups = 2;
    config.mean_eta = 2.0;
    config.mean_xi = 0.0;
    config.seed = 300 + static_cast<uint64_t>(trial);
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto flow_result = SolveSingleAssignmentOptimal(*instance);
    ASSERT_TRUE(flow_result.ok());

    // Brute force over all (m+1)^n single assignments.
    const int n = instance->num_users();
    const int m = instance->num_events();
    std::vector<int> choice(static_cast<size_t>(n), -1);
    double best = 0.0;
    while (true) {
      std::vector<int> count(static_cast<size_t>(m), 0);
      double utility = 0.0;
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        const int j = choice[static_cast<size_t>(i)];
        if (j < 0) continue;
        if (instance->utility(i, j) <= 0.0 ||
            2.0 * instance->UserEventDistance(i, j) +
                    instance->event(j).fee >
                instance->user(i).budget + 1e-9) {
          ok = false;
          break;
        }
        if (++count[static_cast<size_t>(j)] >
            instance->event(j).upper_bound) {
          ok = false;
          break;
        }
        utility += instance->utility(i, j);
      }
      if (ok) best = std::max(best, utility);
      int k = 0;
      while (k < n && ++choice[static_cast<size_t>(k)] == m) {
        choice[static_cast<size_t>(k)] = -1;
        ++k;
      }
      if (k == n) break;
    }
    EXPECT_NEAR(flow_result->total_utility, best, 1e-6) << "trial " << trial;
  }
}

TEST(SingleAssignmentTest, MultiEventGepcCanBeatSingleAssignment) {
  // The paper's point about [3]: restricting users to one event leaves
  // utility on the table when conflict-free multi-event days are possible.
  const Instance instance = MakePaperInstance();
  auto single = SolveSingleAssignmentOptimal(instance);
  ASSERT_TRUE(single.ok());
  const Plan paper_plan = testing_support::MakePaperPlan();
  EXPECT_GT(paper_plan.TotalUtility(instance), single->total_utility);
}

}  // namespace
}  // namespace gepc
