// Failover torture (src/repl/failover.h): kill the primary at journal
// offsets and assert the promoted follower is byte-identical to the
// reference with zero committed-op loss. The quick suite strides the
// offsets; the slow-labeled suite sweeps every offset like the CI
// repl-torture job.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/logging.h"
#include "repl/failover.h"

namespace gepc {
namespace repl {
namespace {

namespace fs = std::filesystem;

std::string FreshWorkdir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/failover_" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  EXPECT_FALSE(ec) << ec.message();
  return dir;
}

class FailoverTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kError);
  }
  void TearDown() override { SetLogLevel(previous_level_); }
  LogLevel previous_level_ = LogLevel::kInfo;
};

TEST_F(FailoverTortureTest, StridedSweepMatchesReferenceByteForByte) {
  FailoverTortureOptions options;
  options.users = 25;
  options.events = 8;
  options.ops = 12;
  options.seed = 11;
  options.checkpoint_every = 5;
  options.offset_stride = 4;  // offsets 0, 4, 8, 12
  options.workdir = FreshWorkdir("strided");

  auto report = RunFailoverTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->offsets_exercised, 4);
  EXPECT_EQ(report->promotions, 4);
  EXPECT_EQ(report->state_mismatches, 0);
  EXPECT_EQ(report->resumed_write_failures, 0);
  // Every follower starts empty, so every offset ships a checkpoint.
  EXPECT_EQ(report->checkpoint_bootstraps, 4);
}

TEST_F(FailoverTortureTest, DeterministicAcrossRuns) {
  FailoverTortureOptions options;
  options.users = 20;
  options.events = 6;
  options.ops = 6;
  options.seed = 3;
  options.checkpoint_every = 3;
  options.offset_stride = 3;
  options.workdir = FreshWorkdir("deterministic_a");
  auto first = RunFailoverTorture(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  options.workdir = FreshWorkdir("deterministic_b");
  auto second = RunFailoverTorture(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_TRUE(first->passed) << first->failure;
  EXPECT_TRUE(second->passed) << second->failure;
  EXPECT_EQ(first->ops_total, second->ops_total);
  EXPECT_EQ(first->offsets_exercised, second->offsets_exercised);
  EXPECT_EQ(first->promotions, second->promotions);
}

TEST_F(FailoverTortureTest, RejectsMissingWorkdir) {
  FailoverTortureOptions options;
  auto report = RunFailoverTorture(options);
  EXPECT_FALSE(report.ok());

  options.workdir = ::testing::TempDir() + "/failover_does_not_exist";
  report = RunFailoverTorture(options);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace repl
}  // namespace gepc
