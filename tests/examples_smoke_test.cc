// Smoke tests: every example application must run to completion with exit
// code 0 on small arguments (paths injected by CMake). Guards the examples
// against bit-rot as the library evolves.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace gepc {
namespace {

int RunExample(const std::string& command) {
  const int status = std::system((command + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

TEST(ExamplesSmokeTest, Quickstart) {
  EXPECT_EQ(RunExample(GEPC_EXAMPLE_QUICKSTART), 0);
}

TEST(ExamplesSmokeTest, CityPlanner) {
  EXPECT_EQ(RunExample(std::string(GEPC_EXAMPLE_CITY_PLANNER) +
                       " Beijing 0.5"),
            0);
}

TEST(ExamplesSmokeTest, CityPlannerRejectsUnknownCity) {
  EXPECT_NE(RunExample(std::string(GEPC_EXAMPLE_CITY_PLANNER) + " Atlantis"),
            0);
}

TEST(ExamplesSmokeTest, IncrementalDay) {
  EXPECT_EQ(RunExample(std::string(GEPC_EXAMPLE_INCREMENTAL_DAY) + " 3"), 0);
}

TEST(ExamplesSmokeTest, OrganizerWhatif) {
  EXPECT_EQ(RunExample(GEPC_EXAMPLE_ORGANIZER_WHATIF), 0);
}

TEST(ExamplesSmokeTest, WeekSimulation) {
  EXPECT_EQ(RunExample(std::string(GEPC_EXAMPLE_WEEK_SIMULATION) + " 2 5"),
            0);
}

TEST(ExamplesSmokeTest, TicketedFestival) {
  EXPECT_EQ(RunExample(GEPC_EXAMPLE_TICKETED_FESTIVAL), 0);
}

}  // namespace
}  // namespace gepc
