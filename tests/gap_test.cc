#include "gap/shmoys_tardos.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "gap/gap_instance.h"
#include "gap/gap_lp.h"

namespace gepc {
namespace {

GapInstance MakeRandomGap(int machines, int jobs, Rng* rng,
                          double tightness = 2.0) {
  GapInstance gap(machines, jobs);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, rng->UniformDouble(5.0, 15.0) * tightness);
  }
  for (int j = 0; j < jobs; ++j) {
    for (int i = 0; i < machines; ++i) {
      if (rng->Bernoulli(0.15)) continue;  // some ineligible pairs
      gap.SetPair(i, j, rng->UniformDouble(1.0, 8.0),
                  rng->UniformDouble(0.0, 1.0));
    }
  }
  return gap;
}

TEST(GapInstanceTest, ValidateRequiresEligibleMachinePerJob) {
  GapInstance gap(2, 1);
  gap.set_capacity(0, 10.0);
  gap.set_capacity(1, 10.0);
  EXPECT_EQ(gap.Validate().code(), StatusCode::kInfeasible);
  gap.SetPair(0, 0, 3.0, 0.5);
  EXPECT_TRUE(gap.Validate().ok());
}

TEST(GapInstanceTest, EligibilityNeedsJobToFitAlone) {
  GapInstance gap(1, 1);
  gap.set_capacity(0, 2.0);
  gap.SetPair(0, 0, 5.0, 0.1);  // does not fit
  EXPECT_FALSE(gap.Eligible(0, 0));
  EXPECT_EQ(gap.Validate().code(), StatusCode::kInfeasible);
}

TEST(GapInstanceTest, ValidateRejectsNegativeInputs) {
  GapInstance gap(1, 1);
  gap.set_capacity(0, -1.0);
  gap.SetPair(0, 0, 1.0, 0.0);
  EXPECT_EQ(gap.Validate().code(), StatusCode::kInvalidArgument);

  GapInstance gap2(1, 1);
  gap2.set_capacity(0, 5.0);
  gap2.SetPair(0, 0, -1.0, 0.0);
  EXPECT_EQ(gap2.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(GapLpSimplexTest, TrivialSingleChoice) {
  GapInstance gap(1, 2);
  gap.set_capacity(0, 10.0);
  gap.SetPair(0, 0, 3.0, 0.2);
  gap.SetPair(0, 1, 4.0, 0.8);
  auto frac = SolveGapLpSimplex(gap);
  ASSERT_TRUE(frac.ok()) << frac.status();
  ASSERT_EQ(frac->job_shares.size(), 2u);
  for (const auto& shares : frac->job_shares) {
    double total = 0.0;
    for (const auto& s : shares) total += s.fraction;
    EXPECT_NEAR(total, 1.0, 1e-7);
  }
  EXPECT_NEAR(frac->TotalCost(gap), 1.0, 1e-7);
}

TEST(GapLpSimplexTest, PicksCheaperMachineWhenBothFit) {
  GapInstance gap(2, 1);
  gap.set_capacity(0, 10.0);
  gap.set_capacity(1, 10.0);
  gap.SetPair(0, 0, 3.0, 0.9);
  gap.SetPair(1, 0, 3.0, 0.1);
  auto frac = SolveGapLpSimplex(gap);
  ASSERT_TRUE(frac.ok());
  ASSERT_EQ(frac->job_shares[0].size(), 1u);
  EXPECT_EQ(frac->job_shares[0][0].machine, 1);
}

TEST(GapLpSimplexTest, CapacityForcesSplit) {
  // Machine 0 is cheap but only fits one job; two identical jobs.
  GapInstance gap(2, 2);
  gap.set_capacity(0, 4.0);
  gap.set_capacity(1, 10.0);
  for (int j = 0; j < 2; ++j) {
    gap.SetPair(0, j, 4.0, 0.0);
    gap.SetPair(1, j, 4.0, 1.0);
  }
  auto frac = SolveGapLpSimplex(gap);
  ASSERT_TRUE(frac.ok());
  // Fractional optimum: machine 0 carries exactly 1 job's worth of load.
  const auto loads = frac->Loads(gap);
  EXPECT_LE(loads[0], 4.0 + 1e-6);
  EXPECT_NEAR(frac->TotalCost(gap), 1.0, 1e-6);
}

TEST(GapLpSimplexTest, LoadsRespectCapacities) {
  Rng rng(7);
  const GapInstance gap = MakeRandomGap(4, 10, &rng);
  auto frac = SolveGapLpSimplex(gap);
  ASSERT_TRUE(frac.ok()) << frac.status();
  const auto loads = frac->Loads(gap);
  for (int i = 0; i < gap.num_machines(); ++i) {
    EXPECT_LE(loads[static_cast<size_t>(i)], gap.capacity(i) + 1e-6);
  }
}

TEST(GapLpSimplexTest, CandidateCapFallsBackWhenInfeasible) {
  // Job 0's only feasible machine is the expensive one (cheap one lacks
  // capacity for both jobs); with cap 1 the restricted LP may cut it off.
  GapInstance gap(2, 2);
  gap.set_capacity(0, 4.0);
  gap.set_capacity(1, 4.0);
  gap.SetPair(0, 0, 4.0, 0.0);
  gap.SetPair(1, 0, 4.0, 0.9);
  gap.SetPair(0, 1, 4.0, 0.0);
  gap.SetPair(1, 1, 4.0, 0.9);
  GapLpOptions options;
  options.max_candidates_per_job = 1;
  auto frac = SolveGapLpSimplex(gap, options);
  ASSERT_TRUE(frac.ok()) << frac.status();
  double assigned = 0.0;
  for (const auto& shares : frac->job_shares) {
    for (const auto& s : shares) assigned += s.fraction;
  }
  EXPECT_NEAR(assigned, 2.0, 1e-6);
}

TEST(RoundFractionalTest, IntegralInputPassesThrough) {
  GapInstance gap(2, 2);
  gap.set_capacity(0, 10.0);
  gap.set_capacity(1, 10.0);
  for (int j = 0; j < 2; ++j) {
    gap.SetPair(0, j, 1.0, 0.5);
    gap.SetPair(1, j, 1.0, 0.5);
  }
  FractionalAssignment frac;
  frac.job_shares = {{{0, 1.0}}, {{1, 1.0}}};
  auto rounded = RoundFractional(gap, frac);
  ASSERT_TRUE(rounded.ok());
  EXPECT_EQ(rounded->machine_of_job, (std::vector<int>{0, 1}));
}

TEST(RoundFractionalTest, HalfSplitJobLandsSomewhere) {
  GapInstance gap(2, 1);
  gap.set_capacity(0, 10.0);
  gap.set_capacity(1, 10.0);
  gap.SetPair(0, 0, 1.0, 0.3);
  gap.SetPair(1, 0, 1.0, 0.3);
  FractionalAssignment frac;
  frac.job_shares = {{{0, 0.5}, {1, 0.5}}};
  auto rounded = RoundFractional(gap, frac);
  ASSERT_TRUE(rounded.ok());
  EXPECT_EQ(rounded->UnplacedJobs(), 0);
}

TEST(RoundFractionalTest, WrongJobCountRejected) {
  GapInstance gap(1, 2);
  gap.set_capacity(0, 10.0);
  FractionalAssignment frac;
  frac.job_shares = {{{0, 1.0}}};
  EXPECT_EQ(RoundFractional(gap, frac).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RoundFractionalTest, BadMachineIndexRejected) {
  GapInstance gap(1, 1);
  gap.set_capacity(0, 10.0);
  gap.SetPair(0, 0, 1.0, 0.0);
  FractionalAssignment frac;
  frac.job_shares = {{{7, 1.0}}};
  EXPECT_EQ(RoundFractional(gap, frac).status().code(),
            StatusCode::kInvalidArgument);
}

// ---- Shmoys-Tardos end-to-end property sweep ---------------------------

class ShmoysTardosProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShmoysTardosProperty, AllJobsPlacedCostAndLoadBounded) {
  Rng rng(GetParam());
  const int machines = 3 + static_cast<int>(rng.UniformUint64(5));
  const int jobs = 5 + static_cast<int>(rng.UniformUint64(15));
  const GapInstance gap = MakeRandomGap(machines, jobs, &rng);
  if (!gap.Validate().ok()) GTEST_SKIP() << "degenerate random instance";

  auto frac = SolveGapLpSimplex(gap);
  if (!frac.ok()) {
    ASSERT_EQ(frac.status().code(), StatusCode::kInfeasible);
    GTEST_SKIP() << "LP infeasible for this seed";
  }
  auto rounded = RoundFractional(gap, *frac);
  ASSERT_TRUE(rounded.ok()) << rounded.status();

  // (1) Every job is placed on an eligible machine.
  EXPECT_EQ(rounded->UnplacedJobs(), 0);
  for (int j = 0; j < jobs; ++j) {
    const int machine = rounded->machine_of_job[static_cast<size_t>(j)];
    ASSERT_GE(machine, 0);
    EXPECT_TRUE(gap.Eligible(machine, j));
  }

  // (2) Cost does not exceed the fractional (= LP optimal) cost.
  EXPECT_LE(rounded->TotalCost(gap), frac->TotalCost(gap) + 1e-6);

  // (3) Shmoys-Tardos load guarantee: load_i <= T_i + max p_ij over the
  //     jobs fractionally touching machine i.
  const auto loads = rounded->Loads(gap);
  for (int i = 0; i < machines; ++i) {
    double max_p = 0.0;
    for (int j = 0; j < jobs; ++j) {
      for (const auto& share : frac->job_shares[static_cast<size_t>(j)]) {
        if (share.machine == i) max_p = std::max(max_p, gap.processing(i, j));
      }
    }
    EXPECT_LE(loads[static_cast<size_t>(i)],
              gap.capacity(i) + max_p + 1e-6)
        << "machine " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShmoysTardosProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(SolveGapShmoysTardosTest, AutoEngineSolvesSmallInstance) {
  Rng rng(21);
  const GapInstance gap = MakeRandomGap(4, 12, &rng);
  auto result = SolveGapShmoysTardos(gap);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->UnplacedJobs(), 0);
}

TEST(SolveGapMwuTest, ProducesNearFeasibleFractional) {
  Rng rng(23);
  const GapInstance gap = MakeRandomGap(5, 20, &rng, /*tightness=*/3.0);
  auto frac = SolveGapLpMwu(gap);
  ASSERT_TRUE(frac.ok()) << frac.status();
  for (const auto& shares : frac->job_shares) {
    double total = 0.0;
    for (const auto& s : shares) total += s.fraction;
    EXPECT_NEAR(total, 1.0, 1e-9);  // every job fully assigned
  }
  // Loads may overshoot a bit, but not unboundedly.
  const auto loads = frac->Loads(gap);
  for (int i = 0; i < gap.num_machines(); ++i) {
    EXPECT_LE(loads[static_cast<size_t>(i)], 3.0 * gap.capacity(i));
  }
}

TEST(SolveGapMwuTest, RejectsBadOptions) {
  GapInstance gap(1, 1);
  gap.set_capacity(0, 10.0);
  gap.SetPair(0, 0, 1.0, 0.0);
  GapMwuOptions options;
  options.iterations = 0;
  EXPECT_EQ(SolveGapLpMwu(gap, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolveGapGreedyTest, RespectsCapacities) {
  Rng rng(31);
  const GapInstance gap = MakeRandomGap(4, 15, &rng);
  const GapAssignment assignment = SolveGapGreedy(gap);
  const auto loads = assignment.Loads(gap);
  for (int i = 0; i < gap.num_machines(); ++i) {
    EXPECT_LE(loads[static_cast<size_t>(i)], gap.capacity(i) + 1e-9);
  }
}

TEST(SolveGapShmoysTardosTest, CostBeatsOrMatchesGreedyOnAverage) {
  Rng rng(37);
  double st_total = 0.0;
  double greedy_total = 0.0;
  int rounds = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const GapInstance gap = MakeRandomGap(4, 12, &rng, /*tightness=*/3.0);
    if (!gap.Validate().ok()) continue;
    auto st = SolveGapShmoysTardos(gap);
    if (!st.ok()) continue;
    const GapAssignment greedy = SolveGapGreedy(gap);
    if (greedy.UnplacedJobs() > 0 || st->UnplacedJobs() > 0) continue;
    st_total += st->TotalCost(gap);
    greedy_total += greedy.TotalCost(gap);
    ++rounds;
  }
  ASSERT_GT(rounds, 0);
  EXPECT_LE(st_total, greedy_total + 1e-6);
}

}  // namespace
}  // namespace gepc
