#include "gepc/local_search.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(LocalSearchTest, RejectsBadArguments) {
  const Instance instance = MakePaperInstance();
  EXPECT_EQ(RefinePlan(instance, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  Plan wrong(2, 2);
  EXPECT_EQ(RefinePlan(instance, &wrong).status().code(),
            StatusCode::kInvalidArgument);
  Plan plan = MakePaperPlan();
  LocalSearchOptions options;
  options.max_passes = 0;
  EXPECT_EQ(RefinePlan(instance, &plan, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LocalSearchTest, NeverDecreasesUtilityAndStaysFeasible) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    GeneratorConfig config;
    config.num_users = 50;
    config.num_events = 12;
    config.mean_eta = 7.0;
    config.mean_xi = 2.0;
    config.seed = seed * 41;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto solved = SolveGepc(*instance, GepcOptions{});
    ASSERT_TRUE(solved.ok());
    Plan plan = solved->plan;
    const double before = plan.TotalUtility(*instance);
    const int below_before = solved->events_below_lower_bound;
    auto stats = RefinePlan(*instance, &plan);
    ASSERT_TRUE(stats.ok()) << stats.status();
    const double after = plan.TotalUtility(*instance);
    EXPECT_GE(after, before - 1e-9);
    EXPECT_NEAR(after - before, stats->utility_gain, 1e-6);
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(*instance, plan, validation).ok());
    // Met lower bounds stay met.
    int below_after = 0;
    for (int j = 0; j < instance->num_events(); ++j) {
      if (plan.attendance(j) < instance->event(j).lower_bound) ++below_after;
    }
    EXPECT_LE(below_after, below_before);
  }
}

TEST(LocalSearchTest, AddMoveFillsObviousGap) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(4, kE4);  // u5 only; plenty of feasible additions exist
  auto stats = RefinePlan(instance, &plan);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->add_moves, 0);
  EXPECT_GT(plan.TotalAssignments(), 1);
}

TEST(LocalSearchTest, TransferMovesAttendanceToHigherUtilityUser) {
  // e4 attended by u4 (0.6); u5 (0.7) is free and can host it.
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(3, kE4);
  LocalSearchOptions options;
  options.enable_add = false;
  options.enable_replace = false;
  auto stats = RefinePlan(instance, &plan, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->transfer_moves, 1);
  EXPECT_TRUE(plan.Contains(4, kE4));
  EXPECT_FALSE(plan.Contains(3, kE4));
}

TEST(LocalSearchTest, ReplaceRespectsLowerBound) {
  // u2 holds e2 which sits exactly at its lower bound; a replace move must
  // not drop e2 below xi even if something better exists.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE2, 1, 4).ok());
  Plan plan(5, 4);
  plan.Add(1, kE2);  // attendance 1 == xi
  LocalSearchOptions options;
  options.enable_add = false;
  options.enable_transfer = false;
  auto stats = RefinePlan(instance, &plan, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->replace_moves, 0);
  EXPECT_TRUE(plan.Contains(1, kE2));
}

TEST(LocalSearchTest, ReplaceUpgradesWhenSlackAllows) {
  // Two attendees on e2 (xi 1): one may upgrade to the better e3.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE2, 1, 4).ok());
  Plan plan(5, 4);
  plan.Add(1, kE2);  // u2: mu(e2) = 0.5, mu(e3) = 0.8 and e3 fits
  plan.Add(2, kE2);
  LocalSearchOptions options;
  options.enable_add = false;
  options.enable_transfer = false;
  auto stats = RefinePlan(instance, &plan, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->replace_moves, 1);
  EXPECT_GE(plan.attendance(kE2), 1);  // lower bound preserved
}

TEST(LocalSearchTest, MoveCapRespected) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  LocalSearchOptions options;
  options.max_moves = 2;
  auto stats = RefinePlan(instance, &plan, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_LE(stats->add_moves + stats->replace_moves + stats->transfer_moves,
            2);
}

TEST(LocalSearchTest, FixpointIsStable) {
  const Instance instance = MakePaperInstance();
  Plan plan = MakePaperPlan();
  ASSERT_TRUE(RefinePlan(instance, &plan).ok());
  const Plan refined = plan;
  auto again = RefinePlan(instance, &plan);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->add_moves + again->replace_moves + again->transfer_moves,
            0);
  EXPECT_TRUE(plan == refined);
}

TEST(LocalSearchTest, ImprovesGreedySolutionsOnAverage) {
  double gain_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.mean_eta = 6.0;
    config.mean_xi = 2.0;
    config.seed = seed * 61;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto solved = SolveGepc(*instance, GepcOptions{});
    ASSERT_TRUE(solved.ok());
    Plan plan = solved->plan;
    auto stats = RefinePlan(*instance, &plan);
    ASSERT_TRUE(stats.ok());
    gain_total += stats->utility_gain;
  }
  EXPECT_GE(gain_total, 0.0);
}

}  // namespace
}  // namespace gepc
