#include "shard/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/generator.h"
#include "shard/voronoi.h"
#include "spatial/reachability.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  // Small budgets so users' disks are local and many end up interior.
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

TEST(PartitionTest, EventsPartitionedDisjointAndComplete) {
  const Instance instance = MakeLocalInstance(100, 40, 3);
  const ReachabilityFilter filter(instance);
  for (int k : {1, 2, 4, 7}) {
    const ShardPartition partition = PartitionInstance(instance, filter, k);
    EXPECT_EQ(partition.num_shards, k);
    std::vector<int> seen(static_cast<size_t>(instance.num_events()), 0);
    for (int s = 0; s < k; ++s) {
      for (EventId j : partition.shard_events[static_cast<size_t>(s)]) {
        EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], s);
        ++seen[static_cast<size_t>(j)];
      }
      EXPECT_TRUE(std::is_sorted(
          partition.shard_events[static_cast<size_t>(s)].begin(),
          partition.shard_events[static_cast<size_t>(s)].end()));
    }
    for (EventId j = 0; j < instance.num_events(); ++j) {
      EXPECT_EQ(seen[static_cast<size_t>(j)], 1) << "event " << j;
    }
  }
}

TEST(PartitionTest, UsersSplitIntoInteriorAndBoundaryExactly) {
  const Instance instance = MakeLocalInstance(120, 30, 5);
  const ReachabilityFilter filter(instance);
  const ShardPartition partition = PartitionInstance(instance, filter, 4);
  int classified = static_cast<int>(partition.boundary_users.size());
  for (int s = 0; s < partition.num_shards; ++s) {
    classified += static_cast<int>(
        partition.shard_users[static_cast<size_t>(s)].size());
  }
  EXPECT_EQ(classified, instance.num_users());
  for (UserId i : partition.boundary_users) {
    EXPECT_EQ(partition.user_shard[static_cast<size_t>(i)], kBoundaryUser);
  }
}

TEST(PartitionTest, InteriorUsersReachOnlyTheirHomeShard) {
  const Instance instance = MakeLocalInstance(150, 50, 7);
  const ReachabilityFilter filter(instance);
  const ShardPartition partition = PartitionInstance(instance, filter, 4);
  // The instance is local enough that the cut finds interior users at all.
  int interior = 0;
  for (UserId i = 0; i < instance.num_users(); ++i) {
    const int home = partition.user_shard[static_cast<size_t>(i)];
    if (home == kBoundaryUser) continue;
    ++interior;
    for (EventId j : filter.AttendableEvents(i)) {
      EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], home)
          << "interior user " << i << " reaches foreign event " << j;
    }
  }
  EXPECT_GT(interior, 0);
}

TEST(PartitionTest, DeterministicAcrossRepeatedRuns) {
  const Instance instance = MakeLocalInstance(80, 30, 11);
  const ReachabilityFilter filter(instance);
  const ShardPartition a = PartitionInstance(instance, filter, 4);
  const ShardPartition b = PartitionInstance(instance, filter, 4);
  EXPECT_EQ(a.event_shard, b.event_shard);
  EXPECT_EQ(a.user_shard, b.user_shard);
  EXPECT_EQ(a.boundary_users, b.boundary_users);
}

TEST(PartitionTest, SingleShardKeepsEveryoneInterior) {
  const Instance instance = MakeLocalInstance(40, 15, 13);
  const ReachabilityFilter filter(instance);
  const ShardPartition partition = PartitionInstance(instance, filter, 1);
  EXPECT_EQ(partition.num_shards, 1);
  for (EventId j = 0; j < instance.num_events(); ++j) {
    EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], 0);
  }
  // Users who can reach nothing are boundary by definition; everyone else
  // is interior to shard 0.
  for (UserId i = 0; i < instance.num_users(); ++i) {
    if (filter.AttendableEvents(i).empty()) {
      EXPECT_EQ(partition.user_shard[static_cast<size_t>(i)], kBoundaryUser);
    } else {
      EXPECT_EQ(partition.user_shard[static_cast<size_t>(i)], 0);
    }
  }
}

TEST(PartitionTest, MoreShardsThanOccupiedCellsLeavesSpareShardsEmpty) {
  // All events in one spot -> one occupied cell -> one real shard, the
  // rest legitimately empty.
  std::vector<User> users;
  for (int i = 0; i < 10; ++i) {
    users.push_back(User{Point{1.0 * i, 0.0}, /*budget=*/100.0});
  }
  std::vector<Event> events;
  for (int j = 0; j < 5; ++j) {
    Event event;
    event.location = Point{4.0, 4.0};
    event.time = Interval{j * 10, j * 10 + 5};
    event.upper_bound = 10;
    events.push_back(event);
  }
  Instance instance(std::move(users), std::move(events));
  const ReachabilityFilter filter(instance);
  const ShardPartition partition = PartitionInstance(instance, filter, 4);
  int non_empty = 0;
  for (const auto& shard : partition.shard_events) {
    if (!shard.empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, 1);
  size_t total = 0;
  for (const auto& shard : partition.shard_events) total += shard.size();
  EXPECT_EQ(total, 5u);
}

// ---------------------------------------------------------------------------
// Degenerate inputs, for BOTH partitioners: the bisection cut and the
// centroidal-Voronoi cut must survive pathological geometry without
// crashing and still emit a structurally valid partition.

/// Runs `instance` through one partitioner and checks the structural
/// contract: every event in exactly one shard, every user classified
/// exactly once, all ids in range.
void CheckPartitionStructure(const Instance& instance, int num_shards,
                             ShardPartitioner partitioner) {
  const ReachabilityFilter filter(instance);
  const ShardPartition partition =
      partitioner == ShardPartitioner::kVoronoi
          ? PartitionInstanceVoronoi(instance, filter, num_shards)
          : PartitionInstance(instance, filter, num_shards);
  ASSERT_EQ(partition.num_shards, std::max(1, num_shards));
  ASSERT_EQ(partition.event_shard.size(),
            static_cast<size_t>(instance.num_events()));
  ASSERT_EQ(partition.user_shard.size(),
            static_cast<size_t>(instance.num_users()));
  std::vector<int> seen(static_cast<size_t>(instance.num_events()), 0);
  for (int s = 0; s < partition.num_shards; ++s) {
    for (EventId j : partition.shard_events[static_cast<size_t>(s)]) {
      ASSERT_GE(j, 0);
      ASSERT_LT(j, instance.num_events());
      EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], s);
      ++seen[static_cast<size_t>(j)];
    }
  }
  for (EventId j = 0; j < instance.num_events(); ++j) {
    EXPECT_EQ(seen[static_cast<size_t>(j)], 1) << "event " << j;
  }
  size_t classified = partition.boundary_users.size();
  for (int s = 0; s < partition.num_shards; ++s) {
    classified += partition.shard_users[static_cast<size_t>(s)].size();
  }
  EXPECT_EQ(classified, static_cast<size_t>(instance.num_users()));
}

Instance MakeCoincidentUserInstance(int users) {
  std::vector<User> all_users;
  for (int i = 0; i < users; ++i) {
    all_users.push_back(User{Point{2.5, 2.5}, /*budget=*/50.0});
  }
  std::vector<Event> events;
  for (int j = 0; j < 6; ++j) {
    Event event;
    event.location = Point{1.0 * j, 1.0};
    event.time = Interval{j * 10, j * 10 + 5};
    event.upper_bound = users;
    events.push_back(event);
  }
  return Instance(std::move(all_users), std::move(events));
}

TEST(PartitionDegenerateTest, AllUsersAtOnePointSurvivesBothPartitioners) {
  // Every Lloyd cell but one is empty and every bisection split is forced
  // to one side; both must still cut the events cleanly.
  const Instance instance = MakeCoincidentUserInstance(30);
  for (const auto partitioner :
       {ShardPartitioner::kBisection, ShardPartitioner::kVoronoi}) {
    for (const int k : {1, 2, 4}) {
      CheckPartitionStructure(instance, k, partitioner);
    }
  }
}

TEST(PartitionDegenerateTest, FewerUsersThanShardsSurvivesBothPartitioners) {
  std::vector<User> users = {User{Point{0.0, 0.0}, 10.0},
                             User{Point{9.0, 9.0}, 10.0}};
  std::vector<Event> events;
  for (int j = 0; j < 4; ++j) {
    Event event;
    event.location = Point{3.0 * j, 3.0 * j};
    event.time = Interval{j * 10, j * 10 + 5};
    event.upper_bound = 2;
    events.push_back(event);
  }
  const Instance instance(std::move(users), std::move(events));
  for (const auto partitioner :
       {ShardPartitioner::kBisection, ShardPartitioner::kVoronoi}) {
    CheckPartitionStructure(instance, 5, partitioner);
  }
}

TEST(PartitionDegenerateTest, EmptyInstanceSurvivesBothPartitioners) {
  const Instance instance;
  for (const auto partitioner :
       {ShardPartitioner::kBisection, ShardPartitioner::kVoronoi}) {
    for (const int k : {1, 3}) {
      CheckPartitionStructure(instance, k, partitioner);
    }
  }
}

TEST(PartitionDegenerateTest, VoronoiMatchesBisectionClassificationContract) {
  // Same classification pass behind both cuts: given identical event
  // shards, users classify identically. Force that by feeding Voronoi the
  // degenerate one-site case, where every event lands in shard 0 — exactly
  // the k=1 bisection cut.
  const Instance instance = MakeCoincidentUserInstance(12);
  const ReachabilityFilter filter(instance);
  const ShardPartition bisection = PartitionInstance(instance, filter, 1);
  const ShardPartition voronoi =
      PartitionInstanceVoronoi(instance, filter, 1);
  EXPECT_EQ(bisection, voronoi);
}

}  // namespace
}  // namespace gepc
