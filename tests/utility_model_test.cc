#include "data/utility_model.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace gepc {
namespace {

const TagVector kA({1, 2, 3});
const TagVector kB({2, 3, 4});
const Point kOrigin{0, 0};
const Point kFar{100, 0};

TEST(UtilityModelTest, CosineKernel) {
  UtilityModel model;
  EXPECT_NEAR(model.Score(kA, kB, kOrigin, kOrigin), 2.0 / 3.0, 1e-12);
}

TEST(UtilityModelTest, JaccardKernel) {
  UtilityModel model;
  model.kernel = UtilityKernel::kJaccard;
  EXPECT_NEAR(model.Score(kA, kB, kOrigin, kOrigin), 0.5, 1e-12);
}

TEST(UtilityModelTest, OverlapKernelClampsAtOne) {
  UtilityModel model;
  model.kernel = UtilityKernel::kOverlapCount;
  model.overlap_normalizer = 4.0;
  EXPECT_NEAR(model.Score(kA, kB, kOrigin, kOrigin), 0.5, 1e-12);
  model.overlap_normalizer = 1.0;
  EXPECT_DOUBLE_EQ(model.Score(kA, kB, kOrigin, kOrigin), 1.0);
}

TEST(UtilityModelTest, DistanceDecayReducesScore) {
  UtilityModel model;
  model.distance_decay_scale = 50.0;
  const double near = model.Score(kA, kB, kOrigin, kOrigin);
  const double far = model.Score(kA, kB, kOrigin, kFar);
  EXPECT_GT(near, far);
  EXPECT_NEAR(far, near * std::exp(-2.0), 1e-12);
}

TEST(UtilityModelTest, DisjointTagsAlwaysZero) {
  UtilityModel model;
  model.distance_decay_scale = 10.0;
  EXPECT_DOUBLE_EQ(
      model.Score(TagVector({1}), TagVector({2}), kOrigin, kOrigin), 0.0);
}

TEST(UtilityModelTest, MinUtilityThresholdClampsToZero) {
  UtilityModel model;
  model.min_utility = 0.7;
  EXPECT_DOUBLE_EQ(model.Score(kA, kB, kOrigin, kOrigin), 0.0);  // 0.667 < 0.7
  model.min_utility = 0.5;
  EXPECT_GT(model.Score(kA, kB, kOrigin, kOrigin), 0.0);
}

TEST(UtilityModelTest, GeneratorHonorsKernelChoice) {
  GeneratorConfig config;
  config.num_users = 30;
  config.num_events = 8;
  config.mean_eta = 5.0;
  config.mean_xi = 1.0;
  config.seed = 11;
  auto cosine = GenerateInstance(config);
  config.utility_model.kernel = UtilityKernel::kJaccard;
  auto jaccard = GenerateInstance(config);
  ASSERT_TRUE(cosine.ok() && jaccard.ok());
  bool any_difference = false;
  for (int i = 0; i < cosine->num_users() && !any_difference; ++i) {
    for (int j = 0; j < cosine->num_events(); ++j) {
      if (cosine->utility(i, j) != jaccard->utility(i, j)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
  // Jaccard <= cosine pointwise for binary vectors.
  for (int i = 0; i < cosine->num_users(); ++i) {
    for (int j = 0; j < cosine->num_events(); ++j) {
      EXPECT_LE(jaccard->utility(i, j), cosine->utility(i, j) + 1e-12);
    }
  }
}

TEST(UtilityModelTest, GeneratorDistanceDecayShrinksUtilityMass) {
  GeneratorConfig config;
  config.num_users = 30;
  config.num_events = 8;
  config.mean_eta = 5.0;
  config.mean_xi = 1.0;
  config.seed = 13;
  auto plain = GenerateInstance(config);
  config.utility_model.distance_decay_scale = 30.0;
  auto decayed = GenerateInstance(config);
  ASSERT_TRUE(plain.ok() && decayed.ok());
  double plain_mass = 0.0;
  double decayed_mass = 0.0;
  for (int i = 0; i < plain->num_users(); ++i) {
    for (int j = 0; j < plain->num_events(); ++j) {
      plain_mass += plain->utility(i, j);
      decayed_mass += decayed->utility(i, j);
    }
  }
  EXPECT_LT(decayed_mass, plain_mass);
}

}  // namespace
}  // namespace gepc
