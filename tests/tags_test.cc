#include "data/tags.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gepc {
namespace {

TEST(TagVectorTest, ConstructorSortsAndDedups) {
  TagVector v({5, 1, 3, 1, 5});
  EXPECT_EQ(v.tags(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(v.size(), 3);
}

TEST(TagVectorTest, EmptyVector) {
  TagVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0);
}

TEST(TagVectorTest, OverlapCount) {
  TagVector a({1, 2, 3});
  TagVector b({2, 3, 4});
  EXPECT_EQ(TagVector::OverlapCount(a, b), 2);
  EXPECT_EQ(TagVector::OverlapCount(a, a), 3);
  EXPECT_EQ(TagVector::OverlapCount(a, TagVector({9})), 0);
}

TEST(TagVectorTest, CosineIdenticalIsOne) {
  TagVector a({1, 2, 3});
  EXPECT_DOUBLE_EQ(TagVector::Cosine(a, a), 1.0);
}

TEST(TagVectorTest, CosineDisjointIsZero) {
  EXPECT_DOUBLE_EQ(TagVector::Cosine(TagVector({1}), TagVector({2})), 0.0);
}

TEST(TagVectorTest, CosinePartialOverlap) {
  TagVector a({1, 2});
  TagVector b({2, 3, 4, 5});
  // 1 / sqrt(2 * 4)
  EXPECT_NEAR(TagVector::Cosine(a, b), 1.0 / std::sqrt(8.0), 1e-12);
}

TEST(TagVectorTest, CosineWithEmptyIsZero) {
  EXPECT_DOUBLE_EQ(TagVector::Cosine(TagVector(), TagVector({1})), 0.0);
}

TEST(TagVectorTest, CosineStaysInUnitInterval) {
  Rng rng(5);
  for (int t = 0; t < 50; ++t) {
    TagVector a = TagVector::Sample(50, 5, &rng);
    TagVector b = TagVector::Sample(50, 7, &rng);
    const double c = TagVector::Cosine(a, b);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(TagVectorTest, JaccardBasics) {
  TagVector a({1, 2, 3});
  TagVector b({2, 3, 4});
  EXPECT_NEAR(TagVector::Jaccard(a, b), 2.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(TagVector::Jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(TagVector::Jaccard(TagVector(), TagVector()), 0.0);
}

TEST(TagVectorTest, SampleProducesRequestedCount) {
  Rng rng(9);
  TagVector v = TagVector::Sample(100, 6, &rng);
  EXPECT_EQ(v.size(), 6);
  for (int tag : v.tags()) {
    EXPECT_GE(tag, 0);
    EXPECT_LT(tag, 100);
  }
}

TEST(TagVectorTest, SampleIsDeterministicPerSeed) {
  Rng a(11);
  Rng b(11);
  EXPECT_EQ(TagVector::Sample(80, 5, &a).tags(),
            TagVector::Sample(80, 5, &b).tags());
}

TEST(TagVectorTest, SampleSkewsTowardPopularTags) {
  Rng rng(13);
  int low_half = 0;
  int total = 0;
  for (int t = 0; t < 400; ++t) {
    TagVector v = TagVector::Sample(100, 4, &rng);
    for (int tag : v.tags()) {
      ++total;
      if (tag < 50) ++low_half;
    }
  }
  // u^2 sampling puts ~ sqrt(1/2) ~ 70% of mass below the median id.
  EXPECT_GT(static_cast<double>(low_half) / total, 0.6);
}

}  // namespace
}  // namespace gepc
