// Cross-validation between independent substrates: the LP solver, the
// min-cost-flow solver, the GAP brute force, and the Shmoys-Tardos pipeline
// must agree wherever their domains overlap. Catching a disagreement here
// localizes bugs that single-module tests cannot see.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "flow/min_cost_flow.h"
#include "gap/gap_lp.h"
#include "gap/shmoys_tardos.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {
namespace {

// ---- Min-cost flow vs LP ------------------------------------------------

/// Solves a min-cost-flow instance as an LP (flow conservation + capacity)
/// and compares against MinCostFlow. The LP needs the target flow value, so
/// we first compute max flow with the solver and then fix it.
TEST(CrossValidationTest, MinCostFlowMatchesLpFormulation) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 5;
    struct EdgeSpec {
      int from, to;
      int64_t cap;
      double cost;
    };
    std::vector<EdgeSpec> specs;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.Bernoulli(0.5)) {
          specs.push_back({u, v, static_cast<int64_t>(rng.UniformInt(1, 4)),
                           rng.UniformDouble(0.0, 3.0)});
        }
      }
    }
    MinCostFlow flow(n);
    for (const auto& e : specs) flow.AddEdge(e.from, e.to, e.cap, e.cost);
    auto result = flow.Solve(0, n - 1);
    ASSERT_TRUE(result.ok());
    if (result->flow == 0) continue;

    // LP: variables f_e in [0, cap]; conservation at internal nodes;
    // net outflow at source = flow value; minimize total cost.
    LinearProgram lp(LinearProgram::Sense::kMinimize,
                     static_cast<int>(specs.size()));
    for (size_t e = 0; e < specs.size(); ++e) {
      lp.set_objective(static_cast<int>(e), specs[e].cost);
      lp.AddConstraint({{static_cast<int>(e), 1.0}}, Relation::kLessEqual,
                       static_cast<double>(specs[e].cap));
    }
    for (int v = 1; v < n - 1; ++v) {
      std::vector<std::pair<int, double>> terms;
      for (size_t e = 0; e < specs.size(); ++e) {
        if (specs[e].from == v) terms.emplace_back(static_cast<int>(e), 1.0);
        if (specs[e].to == v) terms.emplace_back(static_cast<int>(e), -1.0);
      }
      if (!terms.empty()) {
        lp.AddConstraint(std::move(terms), Relation::kEqual, 0.0);
      }
    }
    std::vector<std::pair<int, double>> source_terms;
    for (size_t e = 0; e < specs.size(); ++e) {
      if (specs[e].from == 0) {
        source_terms.emplace_back(static_cast<int>(e), 1.0);
      }
      if (specs[e].to == 0) {
        source_terms.emplace_back(static_cast<int>(e), -1.0);
      }
    }
    lp.AddConstraint(std::move(source_terms), Relation::kEqual,
                     static_cast<double>(result->flow));
    auto lp_solution = SolveLp(lp);
    ASSERT_TRUE(lp_solution.ok()) << "trial " << trial << ": "
                                  << lp_solution.status();
    EXPECT_NEAR(lp_solution->objective_value, result->cost, 1e-6)
        << "trial " << trial;
  }
}

// ---- GAP: brute force vs LP vs Shmoys-Tardos ----------------------------

/// Exhaustive integral GAP optimum for tiny instances.
double BruteForceGapCost(const GapInstance& gap) {
  const int n = gap.num_machines();
  const int m = gap.num_jobs();
  std::vector<int> assignment(static_cast<size_t>(m), 0);
  double best = std::numeric_limits<double>::infinity();
  std::vector<double> load(static_cast<size_t>(n));
  while (true) {
    std::fill(load.begin(), load.end(), 0.0);
    double cost = 0.0;
    bool feasible = true;
    for (int j = 0; j < m && feasible; ++j) {
      const int i = assignment[static_cast<size_t>(j)];
      if (!gap.Eligible(i, j)) {
        feasible = false;
        break;
      }
      load[static_cast<size_t>(i)] += gap.processing(i, j);
      if (load[static_cast<size_t>(i)] > gap.capacity(i) + 1e-12) {
        feasible = false;
      }
      cost += gap.cost(i, j);
    }
    if (feasible) best = std::min(best, cost);
    int k = 0;
    while (k < m && ++assignment[static_cast<size_t>(k)] == n) {
      assignment[static_cast<size_t>(k)] = 0;
      ++k;
    }
    if (k == m) break;
  }
  return best;
}

TEST(CrossValidationTest, GapLpLowerBoundsBruteForceAndRoundingHonorsIt) {
  Rng rng(23);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int machines = 3;
    const int jobs = 2 + static_cast<int>(rng.UniformUint64(4));
    GapInstance gap(machines, jobs);
    for (int i = 0; i < machines; ++i) {
      gap.set_capacity(i, rng.UniformDouble(6.0, 12.0));
    }
    for (int j = 0; j < jobs; ++j) {
      for (int i = 0; i < machines; ++i) {
        gap.SetPair(i, j, rng.UniformDouble(1.0, 6.0),
                    rng.UniformDouble(0.0, 1.0));
      }
    }
    if (!gap.Validate().ok()) continue;
    const double brute = BruteForceGapCost(gap);

    auto frac = SolveGapLpSimplex(gap);
    if (!frac.ok()) {
      // LP infeasible implies the integral problem is infeasible too.
      EXPECT_TRUE(std::isinf(brute)) << "trial " << trial;
      continue;
    }
    ++checked;
    if (!std::isinf(brute)) {
      // LP relaxation lower-bounds the integral optimum.
      EXPECT_LE(frac->TotalCost(gap), brute + 1e-6) << "trial " << trial;
    }
    auto rounded = RoundFractional(gap, *frac);
    ASSERT_TRUE(rounded.ok());
    // Rounding never exceeds the fractional cost (Shmoys-Tardos property),
    // hence also never exceeds the integral optimum.
    EXPECT_LE(rounded->TotalCost(gap), frac->TotalCost(gap) + 1e-6)
        << "trial " << trial;
    if (!std::isinf(brute)) {
      EXPECT_LE(rounded->TotalCost(gap), brute + 1e-6) << "trial " << trial;
    }
  }
  EXPECT_GT(checked, 5);
}

// ---- MWU vs simplex on the same relaxation ------------------------------

TEST(CrossValidationTest, MwuCostApproachesSimplexCost) {
  Rng rng(29);
  double simplex_total = 0.0;
  double mwu_total = 0.0;
  int rounds = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const int machines = 4;
    const int jobs = 10;
    GapInstance gap(machines, jobs);
    for (int i = 0; i < machines; ++i) {
      gap.set_capacity(i, rng.UniformDouble(20.0, 30.0));
    }
    for (int j = 0; j < jobs; ++j) {
      for (int i = 0; i < machines; ++i) {
        gap.SetPair(i, j, rng.UniformDouble(1.0, 5.0),
                    rng.UniformDouble(0.0, 1.0));
      }
    }
    auto exact = SolveGapLpSimplex(gap);
    auto approx = SolveGapLpMwu(gap);
    if (!exact.ok() || !approx.ok()) continue;
    simplex_total += exact->TotalCost(gap);
    mwu_total += approx->TotalCost(gap);
    ++rounds;
  }
  ASSERT_GT(rounds, 0);
  // MWU is approximate in both directions: it can exceed the LP cost, and
  // because its loads may overshoot T_i it can also dip below it. On these
  // loosely-capacitated instances it must land in a tight band around the
  // exact LP cost.
  EXPECT_LE(mwu_total, 1.25 * simplex_total + 1e-9);
  EXPECT_GE(mwu_total, 0.75 * simplex_total - 1e-9);
}

}  // namespace
}  // namespace gepc
