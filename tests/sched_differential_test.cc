#include <gtest/gtest.h>

#include <vector>

#include "data/friendship.h"
#include "sched/schedule.h"

namespace gepc {
namespace {

/// The PR's differential acceptance: on instances small enough to
/// enumerate, the greedy + hill-climbing search must find a configuration
/// with exactly the exhaustive optimum's score. Both paths share the same
/// evaluation machinery (fingerprint-derived oracle seeds, one cache), so
/// score equality is bitwise, not approximate.
void ExpectSearchMatchesExhaustive(uint64_t seed, double lambda) {
  ScheduleGenConfig config;
  config.num_users = 40;
  config.num_drafts = 3;
  config.candidates_per_draft = 3;
  config.seed = seed;
  const ScheduleProblem problem = GenerateScheduleProblem(config);

  FriendshipGraph graph;
  ScheduleOptions options;
  options.seed = seed;
  options.restarts = 4;
  options.max_passes = 6;
  if (lambda > 0.0) {
    FriendshipConfig fc;
    fc.mean_degree = 5.0;
    fc.seed = seed + 1;
    graph = GenerateFriendshipGraph(problem.users, fc);
    options.affinity.graph = &graph;
    options.affinity.lambda = lambda;
  }

  ScheduleCache cache;  // shared: identical evals for identical configs
  auto searched = SolveSchedule(problem, options, &cache);
  auto exhaustive = EnumerateSchedule(problem, options, &cache);
  ASSERT_TRUE(searched.ok()) << searched.status();
  ASSERT_TRUE(exhaustive.ok()) << exhaustive.status();
  EXPECT_EQ(searched->score, exhaustive->score)
      << "seed " << seed << " lambda " << lambda << ": search found "
      << searched->score << ", optimum is " << exhaustive->score;
}

TEST(SchedDifferentialTest, SearchFindsTheExhaustiveOptimum) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ExpectSearchMatchesExhaustive(seed, /*lambda=*/0.0);
  }
}

TEST(SchedDifferentialTest, SearchFindsTheOptimumWithAffinity) {
  for (const uint64_t seed : {1u, 3u, 5u}) {
    ExpectSearchMatchesExhaustive(seed, /*lambda=*/0.5);
  }
}

TEST(SchedDifferentialTest, ExhaustiveTieBreaksLexicographically) {
  // Two drafts with identical candidate lists: several configurations tie,
  // and the enumerator must return the lexicographically smallest winner so
  // the search (which breaks ties toward lower candidate indices) can agree.
  ScheduleGenConfig config;
  config.num_users = 20;
  config.num_drafts = 2;
  config.candidates_per_draft = 2;
  config.seed = 9;
  ScheduleProblem problem = GenerateScheduleProblem(config);
  // Make every candidate of draft 1 a copy of draft 1's first candidate:
  // choosing index 0 or 1 is indistinguishable, so the optimum is tied.
  problem.drafts[1].candidates[1] = problem.drafts[1].candidates[0];
  ScheduleOptions options;
  options.seed = 9;
  auto exhaustive = EnumerateSchedule(problem, options);
  auto searched = SolveSchedule(problem, options);
  ASSERT_TRUE(exhaustive.ok() && searched.ok());
  EXPECT_EQ(exhaustive->choice[1], 0);
  EXPECT_EQ(searched->score, exhaustive->score);
}

TEST(SchedDifferentialTest, EnumerateIsDeterministicAcrossThreadCounts) {
  ScheduleGenConfig config;
  config.num_users = 30;
  config.num_drafts = 3;
  config.candidates_per_draft = 2;
  config.seed = 12;
  const ScheduleProblem problem = GenerateScheduleProblem(config);
  ScheduleOptions one;
  one.seed = 12;
  one.threads = 1;
  ScheduleOptions four = one;
  four.threads = 4;
  auto a = EnumerateSchedule(problem, one);
  auto b = EnumerateSchedule(problem, four);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->choice, b->choice);
  EXPECT_EQ(a->score, b->score);
}

}  // namespace
}  // namespace gepc
