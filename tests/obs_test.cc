// Unit tests for the observability layer (src/obs): lock-free metric value
// types, exact-quantile histogram snapshots, the process-global registry's
// Prometheus text exposition, the enable gate, and chrome://tracing export.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gepc {
namespace obs {
namespace {

/// Restores the global enable gate on scope exit — tests flip it.
struct EnabledGuard {
  ~EnabledGuard() { SetEnabled(true); }
};

/// Validates Prometheus text exposition line by line: every line is either
/// a `# HELP name ...` / `# TYPE name counter|gauge|histogram|summary`
/// comment or a `name{labels} value` sample whose name matches the metric
/// grammar. Returns the first offending line ("" when the text parses).
std::string FirstBadPrometheusLine(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  const std::string name_start =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:";
  const std::string name_rest = name_start + "0123456789";
  while (std::getline(in, line)) {
    if (line.empty()) return line + " (blank line)";
    if (line[0] == '#') {
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        return line;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const size_t type_at = line.rfind(' ');
        const std::string type = line.substr(type_at + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary") {
          return line;
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t pos = 0;
    if (name_start.find(line[0]) == std::string::npos) return line;
    while (pos < line.size() && name_rest.find(line[pos]) != std::string::npos) {
      ++pos;
    }
    if (pos < line.size() && line[pos] == '{') {
      const size_t close = line.find('}', pos);
      if (close == std::string::npos) return line;
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') return line;
    const std::string value = line.substr(pos + 1);
    if (value.empty() || value.find(' ') != std::string::npos) return line;
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') return line;
    }
  }
  return "";
}

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(CounterTest, NotGatedByEnabled) {
  EnabledGuard guard;
  SetEnabled(false);
  Counter counter;
  counter.Increment();
  EXPECT_EQ(counter.value(), 1u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Observe(50.0);
  histogram.Observe(500.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 555.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 500.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 555.5 / 4.0);
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
}

TEST(HistogramTest, BoundaryValueLandsInLowerBucket) {
  // le semantics: an observation equal to a bound belongs to that bucket.
  Histogram histogram({1.0, 10.0});
  histogram.Observe(1.0);
  histogram.Observe(10.0);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 0u);
}

TEST(HistogramTest, ExactQuantilesWhileReservoirHolds) {
  Histogram histogram({1.0, 10.0, 100.0});
  // 1..100 in scrambled order; every deterministic quantile is knowable.
  for (int k = 0; k < 100; ++k) histogram.Observe(((k * 37) % 100) + 1);
  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_TRUE(snap.exact);
  ASSERT_EQ(snap.samples.size(), 100u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 50.0);   // nearest rank: ceil(50)=50th
  EXPECT_DOUBLE_EQ(snap.Quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 100.0);
}

TEST(HistogramTest, OverflowFallsBackToBucketInterpolation) {
  Histogram histogram({1.0, 10.0, 100.0}, /*reservoir_capacity=*/8);
  for (int k = 1; k <= 64; ++k) histogram.Observe(static_cast<double>(k));
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_FALSE(snap.exact);
  EXPECT_EQ(snap.count, 64u);
  EXPECT_EQ(snap.samples.size(), 8u);  // first 8 retained
  // The interpolated median must land inside the bucket that holds rank 32
  // ((10, 100]) and inside the observed range.
  const double p50 = snap.Quantile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 64.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram histogram({1.0});
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram histogram({1.0});
  histogram.Observe(2.0);
  histogram.Reset();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_TRUE(snap.samples.empty());
  histogram.Observe(3.0);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(HistogramTest, ObserveGatedByEnabled) {
  EnabledGuard guard;
  Histogram histogram({1.0});
  SetEnabled(false);
  histogram.Observe(0.5);
  EXPECT_EQ(histogram.count(), 0u);
  SetEnabled(true);
  histogram.Observe(0.5);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(HistogramTest, ConcurrentObserversAgreeOnCount) {
  Histogram histogram(Histogram::DefaultLatencyBucketsMs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int k = 0; k < kPerThread; ++k) {
        histogram.Observe(0.1 * ((t + k) % 10 + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (const uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ScopedTimerTest, ObservesOncePerScope) {
  Histogram histogram(Histogram::DefaultLatencyBucketsMs());
  { ScopedTimerMs timer(&histogram); }
  EXPECT_EQ(histogram.count(), 1u);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_GE(snap.max, 0.0);
}

TEST(ScopedTimerTest, SkipsWhenDisabledOrNull) {
  EnabledGuard guard;
  Histogram histogram(Histogram::DefaultLatencyBucketsMs());
  SetEnabled(false);
  { ScopedTimerMs timer(&histogram); }
  EXPECT_EQ(histogram.count(), 0u);
  SetEnabled(true);
  { ScopedTimerMs timer(nullptr); }  // must not crash
}

TEST(RegistryTest, GetOrCreateReturnsSameInstance) {
  Registry& registry = Registry::Global();
  const auto a = registry.GetCounter("obs_test_shared_total", "help");
  const auto b = registry.GetCounter("obs_test_shared_total");
  EXPECT_EQ(a.get(), b.get());
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, TypeMismatchReturnsDetachedInstance) {
  Registry& registry = Registry::Global();
  const auto counter = registry.GetCounter("obs_test_mismatch_total");
  const auto gauge = registry.GetGauge("obs_test_mismatch_total");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(5);
  counter->Increment();
  // The registry still renders the original counter, not the detached gauge.
  const std::string text = registry.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE obs_test_mismatch_total counter"),
            std::string::npos);
}

TEST(RegistryTest, RenderPrometheusTextParses) {
  Registry& registry = Registry::Global();
  registry.GetCounter("obs_test_render_total", "a counter")->Increment(3);
  registry.GetGauge("obs_test_render_depth", "a gauge")->Set(-2);
  const auto histogram =
      registry.GetHistogram("obs_test_render_ms", "a histogram", {1.0, 10.0});
  histogram->Observe(0.5);
  histogram->Observe(5.0);

  const std::string text = registry.RenderPrometheusText();
  EXPECT_EQ(FirstBadPrometheusLine(text), "");
  EXPECT_NE(text.find("obs_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_depth -2"), std::string::npos);
  // Cumulative buckets plus the +Inf bucket equal to _count.
  EXPECT_NE(text.find("obs_test_render_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_ms_count 2"), std::string::npos);
}

TEST(RegistryTest, ResetValuesKeepsRegistrations) {
  Registry& registry = Registry::Global();
  const auto counter = registry.GetCounter("obs_test_reset_total");
  counter->Increment(7);
  const size_t size_before = registry.size();
  registry.ResetValues();
  EXPECT_EQ(registry.size(), size_before);
  EXPECT_EQ(counter->value(), 0u);  // cached pointer still live
  counter->Increment();
  EXPECT_EQ(counter->value(), 1u);
}

TEST(RegistryTest, InstrumentedSolverMetricsAreRegistered) {
  // The library registers its phase metrics on first use; merely asking for
  // them here must agree with the instrumented sites' names.
  Registry& registry = Registry::Global();
  const std::string text = registry.RenderPrometheusText();
  (void)text;
  const auto solves = registry.GetCounter("gepc_solver_solves_total");
  ASSERT_NE(solves, nullptr);
}

TEST(SummaryTextTest, QuantileLinesParse) {
  Histogram histogram({1.0, 10.0});
  for (int k = 1; k <= 10; ++k) histogram.Observe(static_cast<double>(k));
  std::string out;
  AppendSummaryText("obs_test_summary_ms", "quantiles", histogram.Snapshot(),
                    &out);
  EXPECT_EQ(FirstBadPrometheusLine(out), "");
  EXPECT_NE(out.find("obs_test_summary_ms{quantile=\"0.5\"} 5"),
            std::string::npos);
  EXPECT_NE(out.find("obs_test_summary_ms{quantile=\"0.99\"} 10"),
            std::string::npos);
  EXPECT_NE(out.find("obs_test_summary_ms_count 10"), std::string::npos);
}

TEST(FormatMetricValueTest, Infinities) {
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-Inf");
  EXPECT_EQ(FormatMetricValue(0.25), "0.25");
}

TEST(TraceRecorderTest, RecordsSpansWhenStarted) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    GEPC_TRACE_SPAN("obs_test.span_a");
    GEPC_TRACE_SPAN("obs_test.span_b", "testcat");
  }
  recorder.Stop();
  EXPECT_GE(recorder.span_count(), 2u);
  const std::string json = recorder.RenderChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"testcat\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceRecorderTest, DisabledSpansAreFree) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  recorder.Stop();
  { GEPC_TRACE_SPAN("obs_test.not_recorded"); }
  EXPECT_EQ(recorder.span_count(), 0u);
}

TEST(TraceRecorderTest, CapacityBoundsBufferAndCountsDrops) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_capacity(4);
  recorder.Start();
  for (int k = 0; k < 10; ++k) {
    GEPC_TRACE_SPAN("obs_test.capped");
  }
  recorder.Stop();
  EXPECT_EQ(recorder.span_count(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);
  recorder.set_capacity(1 << 20);  // restore for other tests
}

TEST(TraceRecorderTest, WriteChromeTraceRoundTrips) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  { GEPC_TRACE_SPAN("obs_test.file_span"); }
  recorder.Stop();
  const std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("obs_test.file_span"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"displayTimeUnit\":\"ms\""),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace gepc
