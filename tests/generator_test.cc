#include "data/generator.h"

#include <gtest/gtest.h>

#include "data/cities.h"

namespace gepc {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_users = 60;
  config.num_events = 20;
  config.mean_eta = 10.0;
  config.mean_xi = 3.0;
  config.seed = 1234;
  return config;
}

TEST(GeneratorTest, ProducesRequestedDimensions) {
  auto instance = GenerateInstance(SmallConfig());
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_users(), 60);
  EXPECT_EQ(instance->num_events(), 20);
}

TEST(GeneratorTest, InstanceValidates) {
  auto instance = GenerateInstance(SmallConfig());
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->Validate().ok());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  auto a = GenerateInstance(SmallConfig());
  auto b = GenerateInstance(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_users(), b->num_users());
  for (int i = 0; i < a->num_users(); ++i) {
    EXPECT_EQ(a->user(i).location, b->user(i).location);
    EXPECT_DOUBLE_EQ(a->user(i).budget, b->user(i).budget);
  }
  for (int j = 0; j < a->num_events(); ++j) {
    EXPECT_EQ(a->event(j).time, b->event(j).time);
    EXPECT_EQ(a->event(j).lower_bound, b->event(j).lower_bound);
  }
  for (int i = 0; i < a->num_users(); ++i) {
    for (int j = 0; j < a->num_events(); ++j) {
      EXPECT_DOUBLE_EQ(a->utility(i, j), b->utility(i, j));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config = SmallConfig();
  auto a = GenerateInstance(config);
  config.seed = 9999;
  auto b = GenerateInstance(config);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = false;
  for (int i = 0; i < a->num_users() && !any_difference; ++i) {
    if (!(a->user(i).location == b->user(i).location)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, LocationsInsideCity) {
  GeneratorConfig config = SmallConfig();
  config.city_width = 50;
  config.city_height = 30;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < instance->num_users(); ++i) {
    const Point& p = instance->user(i).location;
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 30.0);
  }
  for (int j = 0; j < instance->num_events(); ++j) {
    const Point& p = instance->event(j).location;
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
  }
}

TEST(GeneratorTest, BudgetsInConfiguredBand) {
  GeneratorConfig config = SmallConfig();
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  const double diagonal =
      std::sqrt(config.city_width * config.city_width +
                config.city_height * config.city_height);
  for (int i = 0; i < instance->num_users(); ++i) {
    EXPECT_GE(instance->user(i).budget,
              config.budget_min_fraction * diagonal - 1e-9);
    EXPECT_LE(instance->user(i).budget,
              config.budget_max_fraction * diagonal + 1e-9);
  }
}

TEST(GeneratorTest, BoundsAreConsistent) {
  auto instance = GenerateInstance(SmallConfig());
  ASSERT_TRUE(instance.ok());
  for (int j = 0; j < instance->num_events(); ++j) {
    const Event& e = instance->event(j);
    EXPECT_GE(e.lower_bound, 0);
    EXPECT_LE(e.lower_bound, e.upper_bound);
    EXPECT_TRUE(e.time.IsValid());
  }
}

TEST(GeneratorTest, ConflictRatioNearTarget) {
  GeneratorConfig config = SmallConfig();
  config.num_events = 100;
  config.conflict_ratio = 0.25;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  EXPECT_NEAR(instance->conflicts().ConflictRatio(), 0.25, 0.03);
}

TEST(GeneratorTest, ZeroConflictRatioMeansNoConflicts) {
  GeneratorConfig config = SmallConfig();
  config.conflict_ratio = 0.0;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->conflicts().conflict_pair_count(), 0);
}

TEST(GeneratorTest, FullConflictRatio) {
  GeneratorConfig config = SmallConfig();
  config.num_events = 30;
  config.conflict_ratio = 1.0;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  EXPECT_NEAR(instance->conflicts().ConflictRatio(), 1.0, 0.05);
}

TEST(GeneratorTest, UtilitiesAreCosineBounded) {
  auto instance = GenerateInstance(SmallConfig());
  ASSERT_TRUE(instance.ok());
  for (int i = 0; i < instance->num_users(); ++i) {
    for (int j = 0; j < instance->num_events(); ++j) {
      EXPECT_GE(instance->utility(i, j), 0.0);
      EXPECT_LE(instance->utility(i, j), 1.0);
    }
  }
}

TEST(GeneratorTest, RejectsBadConfig) {
  GeneratorConfig config = SmallConfig();
  config.num_users = 0;
  EXPECT_EQ(GenerateInstance(config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig();
  config.conflict_ratio = 1.5;
  EXPECT_EQ(GenerateInstance(config).status().code(),
            StatusCode::kInvalidArgument);
  config = SmallConfig();
  config.mean_xi = 50.0;  // > mean_eta
  config.mean_eta = 10.0;
  EXPECT_EQ(GenerateInstance(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CutOutTest, KeepsRequestedSubsetSizes) {
  auto base = GenerateInstance(SmallConfig());
  ASSERT_TRUE(base.ok());
  Rng rng(77);
  const Instance cut = CutOut(*base, 20, 10, &rng);
  EXPECT_EQ(cut.num_users(), 20);
  EXPECT_EQ(cut.num_events(), 10);
  EXPECT_TRUE(cut.Validate().ok());
}

TEST(CutOutTest, ClampsOversizedRequests) {
  auto base = GenerateInstance(SmallConfig());
  ASSERT_TRUE(base.ok());
  Rng rng(78);
  const Instance cut = CutOut(*base, 10000, 10000, &rng);
  EXPECT_EQ(cut.num_users(), base->num_users());
  EXPECT_EQ(cut.num_events(), base->num_events());
}

TEST(CutOutTest, UtilitiesComeFromBase) {
  auto base = GenerateInstance(SmallConfig());
  ASSERT_TRUE(base.ok());
  Rng rng(79);
  const Instance cut = CutOut(*base, 30, 15, &rng);
  // Every (user, event) utility of the cut must appear in the base for some
  // matching user/event pair — check via location identity.
  for (int i = 0; i < cut.num_users(); ++i) {
    bool matched = false;
    for (int bi = 0; bi < base->num_users(); ++bi) {
      if (base->user(bi).location == cut.user(i).location &&
          base->user(bi).budget == cut.user(i).budget) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "cut user " << i << " not found in base";
  }
}

TEST(CityPresetTest, FourPaperCities) {
  const auto& cities = PaperCities();
  ASSERT_EQ(cities.size(), 4u);
  EXPECT_EQ(cities[0].name, "Beijing");
  EXPECT_EQ(cities[0].num_users, 113);
  EXPECT_EQ(cities[0].num_events, 16);
  EXPECT_EQ(cities[1].name, "Vancouver");
  EXPECT_EQ(cities[1].num_users, 2012);
  EXPECT_EQ(cities[1].num_events, 225);
  for (const auto& city : cities) {
    EXPECT_DOUBLE_EQ(city.mean_xi, 10.0);
    EXPECT_DOUBLE_EQ(city.mean_eta, 50.0);
    EXPECT_DOUBLE_EQ(city.conflict_ratio, 0.25);
  }
}

TEST(CityPresetTest, FindCity) {
  auto city = FindCity("Auckland");
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(city->num_users, 569);
  EXPECT_EQ(FindCity("Atlantis").status().code(), StatusCode::kNotFound);
}

TEST(CityPresetTest, GenerateScaledCity) {
  auto city = FindCity("Beijing");
  ASSERT_TRUE(city.ok());
  auto instance = GenerateCity(*city, /*seed=*/5, /*scale=*/1.0);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_users(), 113);
  EXPECT_EQ(instance->num_events(), 16);

  auto half = GenerateCity(*city, 5, 0.5);
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->num_users(), 57);
  EXPECT_EQ(half->num_events(), 8);

  EXPECT_EQ(GenerateCity(*city, 5, 0.0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gepc
