// Satellite of the fault-injection PR: drive the planning service through
// injected journal and queue failures and verify the recovery contract —
// transient faults are retried with backoff and surfaced via the
// journal_retries counter, permanent faults reject the op without ever
// corrupting the journal tail, and queue faults surface as backpressure.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fault/fault.h"
#include "service/journal.h"
#include "service/planning_service.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::string Tmp(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class ServiceFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Reset(); }
  void TearDown() override { fault::Registry::Global().Reset(); }

  // A journaled service with instant (sleep-free) retries for tests.
  Result<std::unique_ptr<PlanningService>> MakeService(
      const std::string& journal_name) {
    journal_path_ = Tmp(journal_name);
    std::remove(journal_path_.c_str());
    ServiceOptions options;
    options.journal_path = journal_path_;
    options.journal_backoff_initial_ms = 0;
    return PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                   options);
  }

  void ExpectCleanJournal(size_t ops) {
    auto scan = ScanJournalFile(journal_path_);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_EQ(scan->ops.size(), ops);
    EXPECT_EQ(scan->torn_bytes, 0);
  }

  std::string journal_path_;
};

TEST_F(ServiceFaultTest, TransientAppendFaultIsRetriedAndCounted) {
  auto service = MakeService("service_fault_transient.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(
      fault::ArmFromSpec("journal.append=unavailable:count=2").ok());

  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::BudgetChange(0, 21.0));
  EXPECT_TRUE(outcome.applied) << outcome.error;
  EXPECT_EQ(outcome.sequence, 1u);
  EXPECT_EQ((*service)->Stats().journal_retries, 2u);

  fault::Registry::Global().Reset();
  (*service)->Shutdown();
  // Exactly one committed row: the failed attempts left no trace.
  ExpectCleanJournal(1);
}

TEST_F(ServiceFaultTest, PermanentFaultRejectsWithoutCorruptingTail) {
  auto service = MakeService("service_fault_permanent.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // One good op first, so there is a committed tail worth corrupting.
  ASSERT_TRUE((*service)->Apply(AtomicOp::BudgetChange(0, 21.0)).applied);

  ASSERT_TRUE(fault::ArmFromSpec("journal.append=unavailable").ok());
  const ApplyOutcome rejected =
      (*service)->Apply(AtomicOp::BudgetChange(1, 22.0));
  EXPECT_FALSE(rejected.applied);
  EXPECT_EQ(rejected.sequence, 0u);
  EXPECT_NE(rejected.error.find("journal"), std::string::npos);
  // Initial attempt + full retry budget, all failed.
  EXPECT_EQ((*service)->Stats().journal_retries, 3u);
  EXPECT_EQ((*service)->Stats().ops_rejected, 1u);

  // Clear the fault: the service keeps going as if nothing happened.
  fault::Registry::Global().Reset();
  const ApplyOutcome after =
      (*service)->Apply(AtomicOp::BudgetChange(1, 22.0));
  EXPECT_TRUE(after.applied) << after.error;
  EXPECT_EQ(after.sequence, 2u);
  (*service)->Shutdown();

  ExpectCleanJournal(2);
  // Replay agrees: the rejected op never became durable.
  auto replay =
      ReplayJournal(MakePaperInstance(), MakePaperPlan(), journal_path_);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->ops_applied, 2u);
  EXPECT_EQ(replay->ops_rejected, 0u);
}

TEST_F(ServiceFaultTest, NonTransientFaultIsNotRetried) {
  auto service = MakeService("service_fault_internal.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(fault::ArmFromSpec("journal.append=internal:count=1").ok());

  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::BudgetChange(0, 21.0));
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ((*service)->Stats().journal_retries, 0u);

  const ApplyOutcome after =
      (*service)->Apply(AtomicOp::BudgetChange(0, 21.0));
  EXPECT_TRUE(after.applied) << after.error;
  (*service)->Shutdown();
  ExpectCleanJournal(1);
}

TEST_F(ServiceFaultTest, TornAppendRestoresTailAndRetrySucceeds) {
  auto service = MakeService("service_fault_torn.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->Apply(AtomicOp::BudgetChange(0, 21.0)).applied);

  // First append of the next op writes only a prefix of the row (a simulated
  // crash mid-write), restores the tail, and reports kUnavailable; the
  // service's retry then lands the full row.
  ASSERT_TRUE(
      fault::ArmFromSpec("journal.torn_tail=unavailable:count=1:arg=4").ok());
  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::UpperBoundChange(1, 3));
  EXPECT_TRUE(outcome.applied) << outcome.error;
  EXPECT_EQ(outcome.sequence, 2u);
  EXPECT_EQ((*service)->Stats().journal_retries, 1u);
  (*service)->Shutdown();
  ExpectCleanJournal(2);
}

TEST_F(ServiceFaultTest, FlushFaultIsRetriedLikeAppend) {
  auto service = MakeService("service_fault_flush.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(fault::ArmFromSpec("journal.flush=unavailable:count=1").ok());

  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::BudgetChange(0, 21.0));
  EXPECT_TRUE(outcome.applied) << outcome.error;
  EXPECT_EQ((*service)->Stats().journal_retries, 1u);
  (*service)->Shutdown();
  ExpectCleanJournal(1);
}

TEST_F(ServiceFaultTest, QueueFaultSurfacesAsBackpressure) {
  auto service =
      PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(fault::ArmFromSpec("queue.push=unavailable:count=1").ok());

  auto refused = (*service)->TrySubmit(AtomicOp::BudgetChange(0, 21.0));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*service)->Stats().ops_dropped, 1u);

  auto accepted = (*service)->TrySubmit(AtomicOp::BudgetChange(0, 21.0));
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->get().applied);
}

TEST_F(ServiceFaultTest, RecoverAfterFaultyRunMatchesLiveState) {
  auto service = MakeService("service_fault_recover.gops");
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // A run peppered with transient faults: every op still lands.
  ASSERT_TRUE(
      fault::ArmFromSpec("journal.append=unavailable:prob=0.4:seed=11").ok());
  for (int i = 0; i < 8; ++i) {
    const ApplyOutcome outcome = (*service)->Apply(
        AtomicOp::BudgetChange(i % 5, 15.0 + static_cast<double>(i)));
    EXPECT_TRUE(outcome.applied) << i << ": " << outcome.error;
  }
  fault::Registry::Global().Reset();
  const auto live = (*service)->snapshot();
  (*service)->Shutdown();

  ServiceOptions options;
  options.journal_path = journal_path_;
  auto recovered =
      PlanningService::Recover(MakePaperInstance(), MakePaperPlan(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const auto snap = (*recovered)->snapshot();
  EXPECT_EQ(snap->version, live->version);
  EXPECT_DOUBLE_EQ(snap->instance->user(3).budget,
                   live->instance->user(3).budget);
  (*recovered)->Shutdown();
}

}  // namespace
}  // namespace gepc
