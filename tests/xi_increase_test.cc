#include "iep/xi_increase.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(XiIncreaseTest, NoOpWhenAlreadySatisfied) {
  // Example 7 part 1: xi_4 1 -> 2 with two attendees already.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 2, 5).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyXiIncrease(instance, before, kE4);
  EXPECT_EQ(result.negative_impact, 0);
  EXPECT_TRUE(result.plan == before);
}

TEST(XiIncreaseTest, PaperExample7) {
  // xi_4 1 -> 3: the best transfer is u2 from e2 (Delta = -0.1); dif 1.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 3, 5).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyXiIncrease(instance, before, kE4);
  EXPECT_EQ(result.negative_impact, 1);
  EXPECT_FALSE(result.plan.Contains(1, kE2));
  EXPECT_TRUE(result.plan.Contains(1, kE4));
  EXPECT_EQ(result.plan.attendance(kE4), 3);
  EXPECT_EQ(result.events_below_lower_bound, 0);
  EXPECT_TRUE(ValidatePlan(instance, result.plan).ok());
}

TEST(XiIncreaseTest, DonorEventsKeepTheirLowerBounds) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 3, 5).ok());
  const IepResult result = ApplyXiIncrease(instance, MakePaperPlan(), kE4);
  for (int j = 0; j < instance.num_events(); ++j) {
    EXPECT_GE(result.plan.attendance(j), instance.event(j).lower_bound)
        << "event " << j;
  }
}

TEST(XiIncreaseTest, ReportsShortfallWhenNoDonorExists) {
  // Shrink every other event to xi == attendance so nothing can be spared,
  // and block direct additions by zeroing u-side feasibility: set all
  // non-attendee utilities for e4 to 0.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE2, 3, 4).ok());  // e2: 3 = n_2
  ASSERT_TRUE(instance.set_event_bounds(kE4, 4, 5).ok());  // want 4
  instance.set_utility(0, kE4, 0.0);
  instance.set_utility(1, kE4, 0.0);
  instance.set_utility(2, kE4, 0.0);
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyXiIncrease(instance, before, kE4);
  EXPECT_EQ(result.events_below_lower_bound, 1);
  EXPECT_LT(result.plan.attendance(kE4), 4);
}

TEST(XiIncreaseTest, RespectsTargetUpperBound) {
  Instance instance = MakePaperInstance();
  // eta_4 = 2 caps transfers even though xi_4 wants 3.
  ASSERT_TRUE(instance.set_event_bounds(kE4, 2, 2).ok());
  Plan before = MakePaperPlan();  // e4 already has 2 attendees
  const IepResult result = ApplyXiIncrease(instance, before, kE4);
  EXPECT_LE(result.plan.attendance(kE4), 2);
}

TEST(XiIncreaseTest, TransferredUserGetsReoffers) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 3, 5).ok());
  const IepResult result = ApplyXiIncrease(instance, MakePaperPlan(), kE4);
  // u2 swapped e2 -> e4; the re-offer step may add more events for u2 but
  // must never break feasibility.
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result.plan, options).ok());
}

TEST(XiIncreaseTest, UtilityAccountingIsConsistent) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 3, 5).ok());
  const IepResult result = ApplyXiIncrease(instance, MakePaperPlan(), kE4);
  EXPECT_NEAR(result.total_utility, result.plan.TotalUtility(instance),
              1e-12);
}

TEST(XiIncreaseTest, PrefersSmallestUtilityLossAmongDonors) {
  // Both e2 attendees u1 (0.6) and u3 (0.7) could move to e4, but u3's
  // Delta (0.5 - 0.7 = -0.2) loses more than u1's... actually u1's
  // Delta = 0.3 - 0.6 = -0.3, u2's = 0.4 - 0.5 = -0.1 -> u2 moves first.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 3, 5).ok());
  const IepResult result = ApplyXiIncrease(instance, MakePaperPlan(), kE4);
  EXPECT_TRUE(result.plan.Contains(1, kE4));   // u2 (best Delta) moved
  EXPECT_TRUE(result.plan.Contains(0, kE2));   // u1 untouched
  EXPECT_TRUE(result.plan.Contains(2, kE2));   // u3 untouched
}

}  // namespace
}  // namespace gepc
