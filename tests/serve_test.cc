// End-to-end tests of the gepc_serve binary (path injected by CMake as
// GEPC_SERVE_PATH). Each test writes a request script, pipes it through a
// full server session over stdin/stdout, and inspects the JSONL responses.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/generator.h"
#include "data/io.h"
#include "service/journal.h"

namespace gepc {
namespace {

std::string Serve() { return GEPC_SERVE_PATH; }

// Per-test-case temp path: ctest runs every discovered case as its own
// process in parallel, so fixed file names under the shared TempDir would
// collide across cases.
std::string Tmp(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + info->name() + "_" + name;
}

void WriteLines(const std::string& path,
                const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

struct RunResult {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, one response per line
};

RunResult RunSession(const std::string& flags,
                     const std::vector<std::string>& requests) {
  const std::string requests_path = Tmp("serve_requests.jsonl");
  const std::string output_path = Tmp("serve_responses.jsonl");
  WriteLines(requests_path, requests);
  const std::string command = Serve() + " " + flags + " < " + requests_path +
                              " > " + output_path + " 2> /dev/null";
  RunResult result;
  result.exit_code = WEXITSTATUS(std::system(command.c_str()));
  std::ifstream in(output_path);
  std::string line;
  while (std::getline(in, line)) result.lines.push_back(line);
  return result;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_users = 30;
    config.num_events = 8;
    config.mean_xi = 1;
    config.mean_eta = 6;
    config.seed = 11;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    instance_path_ = Tmp("serve_test.gepc");
    ASSERT_TRUE(SaveInstanceToFile(*instance, instance_path_).ok());
  }

  std::string instance_path_;
};

TEST_F(ServeTest, SessionAppliesQueriesAndShutsDown) {
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"query_user","user":0})",
       R"({"cmd":"query_event","event":0})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  // ready + 4 responses + shutdown acknowledgement.
  ASSERT_EQ(result.lines.size(), 6u);
  EXPECT_NE(result.lines[0].find("\"ready\":true"), std::string::npos);
  EXPECT_NE(result.lines[1].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(result.lines[1].find("\"applied\":true"), std::string::npos);
  EXPECT_NE(result.lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(result.lines[2].find("\"user\":0"), std::string::npos);
  EXPECT_NE(result.lines[3].find("\"attendance\":"), std::string::npos);
  EXPECT_NE(result.lines[4].find("\"ops_applied\":1"), std::string::npos);
  EXPECT_NE(result.lines[5].find("\"shutdown\":true"), std::string::npos);
}

TEST_F(ServeTest, ErrorsKeepTheSessionAlive) {
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {"this is not json",
       R"({"cmd":"frobnicate"})",
       R"({"cmd":"apply","op":"bogus:1:2"})",
       R"({"cmd":"apply"})",
       R"({"cmd":"query_user","user":999})",
       R"({"cmd":"apply","op":"eta:99:1"})",
       R"({"cmd":"stats"})"});
  EXPECT_EQ(result.exit_code, 0);  // EOF is a clean shutdown
  ASSERT_EQ(result.lines.size(), 9u);  // ready + 7 + shutdown line
  for (size_t i = 1; i <= 5; ++i) {
    EXPECT_NE(result.lines[i].find("\"ok\":false"), std::string::npos)
        << "line " << i << ": " << result.lines[i];
    EXPECT_NE(result.lines[i].find("\"error\":"), std::string::npos);
  }
  // An op on an unknown event id parses fine but the planner rejects it;
  // the request itself still succeeds.
  EXPECT_NE(result.lines[6].find("\"applied\":false"), std::string::npos);
  EXPECT_NE(result.lines[6].find("\"error\":"), std::string::npos);
  EXPECT_NE(result.lines[7].find("\"ops_rejected\":1"), std::string::npos);
}

TEST_F(ServeTest, JournalSurvivesRestartViaRecover) {
  const std::string journal_path = Tmp("serve_test_journal.gops");
  std::remove(journal_path.c_str());

  const RunResult first = RunSession(
      "--in " + instance_path_ + " --journal " + journal_path,
      {R"({"cmd":"apply","op":"budget:0:55.5"})",
       R"({"cmd":"apply","op":"budget:2:60"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(first.exit_code, 0);
  ASSERT_GE(first.lines.size(), 4u);
  EXPECT_NE(first.lines[3].find("\"ops_applied\":2"), std::string::npos);

  // Without --recover a populated journal is refused (exit nonzero)...
  const RunResult refused = RunSession(
      "--in " + instance_path_ + " --journal " + journal_path,
      {R"({"cmd":"shutdown"})"});
  EXPECT_NE(refused.exit_code, 0);

  // ...with --recover the session resumes at sequence 3.
  const RunResult second = RunSession(
      "--in " + instance_path_ + " --journal " + journal_path + " --recover",
      {R"({"cmd":"apply","op":"budget:1:44.25"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(second.exit_code, 0);
  ASSERT_GE(second.lines.size(), 2u);
  EXPECT_NE(second.lines[0].find("\"recovered_ops\":2"), std::string::npos);
  EXPECT_NE(second.lines[1].find("\"seq\":3"), std::string::npos);
}

TEST_F(ServeTest, SavePlanWritesLoadablePlan) {
  const std::string plan_path = Tmp("serve_test_saved.gpln");
  std::remove(plan_path.c_str());
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"apply","op":"eta:1:2"})",
       R"({"cmd":"save_plan","path":")" + plan_path + R"("})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  auto plan = LoadPlanFromFile(plan_path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LE(plan->attendance(1), 2);
}

TEST_F(ServeTest, AsyncApplyAndDrain) {
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"apply","op":"budget:2:70","wait":false})",
       R"({"cmd":"drain"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 5u);
  EXPECT_NE(result.lines[1].find("\"queued\":true"), std::string::npos);
  EXPECT_NE(result.lines[2].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(result.lines[3].find("\"ops_applied\":1"), std::string::npos);
}

TEST_F(ServeTest, RebuildSwapsInAFreshPlan) {
  const RunResult result = RunSession(
      "--in " + instance_path_ + " --shards 2 --threads 2",
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"rebuild","shards":3,"threads":2})",
       R"({"cmd":"stats"})",
       R"({"cmd":"rebuild","shards":0})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 6u);
  EXPECT_NE(result.lines[0].find("\"ready\":true"), std::string::npos);
  EXPECT_NE(result.lines[2].find("\"rebuilt\":true"), std::string::npos);
  EXPECT_NE(result.lines[2].find("\"shards\":3"), std::string::npos);
  EXPECT_NE(result.lines[2].find("\"utility\":"), std::string::npos);
  // apply + rebuild both count as applied work.
  EXPECT_NE(result.lines[3].find("\"ops_applied\":2"), std::string::npos);
  // Invalid override is a request error, not a session killer.
  EXPECT_NE(result.lines[4].find("\"ok\":false"), std::string::npos);
}

TEST_F(ServeTest, RebuildIsDeterministicAcrossSessions) {
  const std::string a = Tmp("serve_rebuild_a.gpln");
  const std::string b = Tmp("serve_rebuild_b.gpln");
  for (const std::string* path : {&a, &b}) {
    std::remove(path->c_str());
    const RunResult result = RunSession(
        "--in " + instance_path_,
        {R"({"cmd":"rebuild","shards":4,"threads":2})",
         R"({"cmd":"save_plan","path":")" + *path + R"("})",
         R"({"cmd":"shutdown"})"});
    EXPECT_EQ(result.exit_code, 0);
  }
  auto plan_a = LoadPlanFromFile(a);
  auto plan_b = LoadPlanFromFile(b);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  EXPECT_TRUE(*plan_a == *plan_b);
}

TEST_F(ServeTest, MetricsCommandReturnsPrometheusText) {
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"metrics"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 4u);
  const std::string& line = result.lines[2];
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"format\":\"prometheus\""), std::string::npos);
  // The payload carries both the global registry (solver phases) and the
  // per-service block; \n is JSON-escaped inside the line.
  EXPECT_NE(line.find("# TYPE gepc_solver_solves_total counter"),
            std::string::npos);
  EXPECT_NE(line.find("gepc_service_ops_submitted_total 1"),
            std::string::npos);
  EXPECT_NE(line.find("# TYPE gepc_service_apply_ms histogram"),
            std::string::npos);
}

TEST_F(ServeTest, StatsIncludesHistogramSummaries) {
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 4u);
  const std::string& stats = result.lines[2];
  EXPECT_NE(stats.find("\"apply_ms_count\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"apply_ms_exact\":true"), std::string::npos);
  EXPECT_NE(stats.find("\"queue_wait_ms_p99\":"), std::string::npos);
  EXPECT_NE(stats.find("\"queue_wait_ms_max\":"), std::string::npos);
}

TEST_F(ServeTest, MetricsFileWrittenAtShutdown) {
  const std::string metrics_path = Tmp("serve_test_metrics.prom");
  std::remove(metrics_path.c_str());
  const RunResult result = RunSession(
      "--in " + instance_path_ + " --metrics " + metrics_path,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "metrics file not written";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("gepc_service_ops_applied_total 1"),
            std::string::npos);
  EXPECT_NE(buffer.str().find("# TYPE gepc_service_apply_ms histogram"),
            std::string::npos);
}

TEST_F(ServeTest, TraceFileCapturesServiceSpans) {
  const std::string trace_path = Tmp("serve_test_trace.json");
  std::remove(trace_path.c_str());
  const RunResult result = RunSession(
      "--in " + instance_path_ + " --trace " + trace_path,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(buffer.str().find("\"name\":\"service.apply\""),
            std::string::npos);
  EXPECT_NE(buffer.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(ServeTest, ObservabilityFlagsRequireValues) {
  // --metrics / --trace with a missing value are usage errors (exit 64).
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --metrics < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --trace < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
}

TEST_F(ServeTest, CheckpointCommandPublishesAndShowsInStats) {
  const std::string journal_path = Tmp("journal.gops");
  const std::string ckpt_dir = Tmp("ckpt");
  std::remove(journal_path.c_str());
  const RunResult result = RunSession(
      "--in " + instance_path_ + " --journal " + journal_path +
          " --checkpoint-dir " + ckpt_dir,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"apply","op":"budget:1:60"})",
       R"({"cmd":"checkpoint"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 6u);
  const std::string& ckpt = result.lines[3];
  EXPECT_NE(ckpt.find("\"ok\":true"), std::string::npos) << ckpt;
  EXPECT_NE(ckpt.find("\"checkpoint\":true"), std::string::npos);
  EXPECT_NE(ckpt.find("\"version\":2"), std::string::npos);
  EXPECT_NE(ckpt.find("\"compacted\":true"), std::string::npos);
  const std::string& stats = result.lines[4];
  EXPECT_NE(stats.find("\"checkpoints_published\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"last_checkpoint_version\":2"), std::string::npos);
  EXPECT_NE(stats.find("\"checkpoint_failures\":0"), std::string::npos);
}

TEST_F(ServeTest, AutoCheckpointEveryNAndRecoverFromCheckpoint) {
  const std::string journal_path = Tmp("journal.gops");
  const std::string ckpt_dir = Tmp("ckpt");
  std::remove(journal_path.c_str());
  const std::string flags = "--in " + instance_path_ + " --journal " +
                            journal_path + " --checkpoint-dir " + ckpt_dir +
                            " --checkpoint-every 2";
  const RunResult first = RunSession(
      flags,
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"apply","op":"budget:1:60"})",
       R"({"cmd":"apply","op":"budget:2:65"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(first.exit_code, 0);
  ASSERT_EQ(first.lines.size(), 6u);
  // The auto-trigger fired once, at op 2; op 3 sits in the open window.
  EXPECT_NE(first.lines[4].find("\"checkpoints_published\":1"),
            std::string::npos)
      << first.lines[4];
  EXPECT_NE(first.lines[4].find("\"journal_base\":2"), std::string::npos);

  // Recovery loads the checkpoint and replays only the one-op tail.
  const RunResult second = RunSession(
      flags + " --recover",
      {R"({"cmd":"apply","op":"budget:3:50"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(second.exit_code, 0);
  ASSERT_GE(second.lines.size(), 2u);
  EXPECT_NE(second.lines[0].find("\"recovered_ops\":3"), std::string::npos)
      << second.lines[0];
  EXPECT_NE(second.lines[0].find("\"recovered_from_checkpoint\":true"),
            std::string::npos);
  EXPECT_NE(second.lines[0].find("\"recovery_ops_replayed\":1"),
            std::string::npos);
  EXPECT_NE(second.lines[1].find("\"seq\":4"), std::string::npos);
}

TEST_F(ServeTest, CheckpointWithoutDirIsRequestError) {
  // No --checkpoint-dir: the checkpoint command fails but the session
  // lives on.
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"checkpoint"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 4u);
  EXPECT_NE(result.lines[1].find("\"ok\":false"), std::string::npos)
      << result.lines[1];
  EXPECT_NE(result.lines[2].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServeTest, CheckpointFlagValidation) {
  // --checkpoint-every without --checkpoint-dir is a usage error.
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --checkpoint-every 5 < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --checkpoint-dir " + Tmp("ckpt") +
                 " --checkpoint-every nope < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --checkpoint-dir " + Tmp("ckpt") +
                 " --checkpoint-retain 0 < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
}

TEST_F(ServeTest, BadFlagsFail) {
  EXPECT_NE(WEXITSTATUS(std::system(
                (Serve() + " --in /no/such/file.gepc < /dev/null"
                           " > /dev/null 2>&1")
                    .c_str())),
            0);
  EXPECT_NE(WEXITSTATUS(std::system(
                (Serve() + " --bogus-flag < /dev/null > /dev/null 2>&1")
                    .c_str())),
            0);
  EXPECT_NE(WEXITSTATUS(std::system(
                (Serve() + " < /dev/null > /dev/null 2>&1").c_str())),
            0);  // --in is required
  // Sharded-engine flags demand strict positive integers (exit 64).
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --threads 0 < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --shards nope < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
}

TEST_F(ServeTest, RebalanceCommandRunsAndShowsInStats) {
  // --rebalance-every 0 enables the tracker (on-demand rebalances only);
  // the explicit command must run one and the stats must expose the
  // tracker's counters afterwards.
  const RunResult result = RunSession(
      "--in " + instance_path_ + " --shards 2 --rebalance-every 0",
      {R"({"cmd":"apply","op":"budget:0:75.5"})",
       R"({"cmd":"apply","op":"loc:1:0.25:0.75"})",
       R"({"cmd":"rebalance"})",
       R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 6u);
  EXPECT_NE(result.lines[3].find("\"ok\":true"), std::string::npos)
      << result.lines[3];
  EXPECT_NE(result.lines[3].find("\"rebalanced\":true"), std::string::npos)
      << result.lines[3];
  EXPECT_NE(result.lines[3].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(result.lines[4].find("\"rebalance_shards\":2"),
            std::string::npos)
      << result.lines[4];
  EXPECT_NE(result.lines[4].find("\"rebalances\":1"), std::string::npos);
  EXPECT_NE(result.lines[4].find("\"shard_migrations\":"),
            std::string::npos);
}

TEST_F(ServeTest, RebalanceWithoutTrackerIsRequestError) {
  // Without --rebalance-every the tracker never exists; the command must
  // answer an error and leave the session healthy.
  const RunResult result = RunSession(
      "--in " + instance_path_,
      {R"({"cmd":"rebalance"})", R"({"cmd":"stats"})",
       R"({"cmd":"shutdown"})"});
  EXPECT_EQ(result.exit_code, 0);
  ASSERT_EQ(result.lines.size(), 4u);
  EXPECT_NE(result.lines[1].find("\"ok\":false"), std::string::npos)
      << result.lines[1];
  EXPECT_NE(result.lines[2].find("\"ok\":true"), std::string::npos);
}

TEST_F(ServeTest, RebalanceFlagValidation) {
  // The tracker needs at least two shards to balance between (exit 64).
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --rebalance-every 4 < /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --shards 2 --rebalance-every -3 < /dev/null > /dev/null "
                 "2>&1")
                    .c_str())),
            64);
  EXPECT_EQ(WEXITSTATUS(std::system(
                (Serve() + " --in " + instance_path_ +
                 " --shards 2 --rebalance-every 4 --rebalance-skew nope "
                 "< /dev/null > /dev/null 2>&1")
                    .c_str())),
            64);
}

}  // namespace
}  // namespace gepc
