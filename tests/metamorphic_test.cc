// Metamorphic properties of the GEPC solvers: transformations of an
// instance that provably cannot change the optimum must not change the
// solver's answer either.
//
//   * Isometries of the plane (rotation by 90 degrees, axis reflection,
//     translation) leave every pairwise distance — and therefore every
//     budget-feasibility decision — untouched, while utilities live in an
//     explicit n x m matrix that never looks at coordinates. The chosen
//     transforms are FP-*exact*: (x,y) -> (-y,x) and (x,y) -> (y,x) only
//     negate/swap coordinates (squares and the commutative sum in
//     Distance() are bit-identical), and translation is applied to
//     coordinates snapped to a power-of-two grid so the additions never
//     round. The solver must return the *same plan*, not merely an equally
//     good one.
//
//   * Relabelling users/events (a permutation) cannot change what is
//     achievable; a solved plan mapped through the permutation must stay
//     feasible on the relabelled instance with the same total utility. (We
//     deliberately do NOT re-solve: the greedy/regret solvers iterate in
//     index order, so relabelling may find a different — equally valid —
//     local optimum.)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/feasibility.h"
#include "core/instance.h"
#include "core/plan.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "shard/sharded_solver.h"
#include "shard/voronoi.h"
#include "spatial/reachability.h"

namespace gepc {
namespace {

/// Snaps a coordinate to the 2^-10 grid so that later translations by grid
/// multiples are exact in double arithmetic (all values and sums stay far
/// below 2^53 ulp-loss territory).
double Snap(double v) { return std::round(v * 1024.0) / 1024.0; }

Instance MakeSnappedInstance(uint64_t seed, int users = 70, int events = 20) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  auto generated = GenerateInstance(config);
  EXPECT_TRUE(generated.ok()) << generated.status();

  std::vector<User> snapped_users = generated->users();
  for (User& user : snapped_users) {
    user.location = {Snap(user.location.x), Snap(user.location.y)};
  }
  std::vector<Event> snapped_events = generated->events();
  for (Event& event : snapped_events) {
    event.location = {Snap(event.location.x), Snap(event.location.y)};
  }
  Instance instance(std::move(snapped_users), std::move(snapped_events));
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int j = 0; j < instance.num_events(); ++j) {
      instance.set_utility(i, j, generated->utility(i, j));
    }
  }
  return instance;
}

/// Rebuilds `base` with every location mapped through `point_fn`.
template <typename PointFn>
Instance TransformLocations(const Instance& base, PointFn point_fn) {
  std::vector<User> users = base.users();
  for (User& user : users) user.location = point_fn(user.location);
  std::vector<Event> events = base.events();
  for (Event& event : events) event.location = point_fn(event.location);
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < base.num_users(); ++i) {
    for (int j = 0; j < base.num_events(); ++j) {
      instance.set_utility(i, j, base.utility(i, j));
    }
  }
  return instance;
}

void ExpectSameSolve(const Instance& base, const Instance& transformed) {
  auto base_result = SolveGepc(base, GepcOptions{});
  auto transformed_result = SolveGepc(transformed, GepcOptions{});
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  ASSERT_TRUE(transformed_result.ok()) << transformed_result.status();
  EXPECT_DOUBLE_EQ(base_result->total_utility,
                   transformed_result->total_utility);
  EXPECT_TRUE(base_result->plan == transformed_result->plan);
  ValidationOptions lenient;
  lenient.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(transformed, transformed_result->plan, lenient).ok());
}

TEST(MetamorphicTest, QuarterTurnRotationIsInvariant) {
  for (uint64_t seed : {2u, 11u, 23u}) {
    const Instance base = MakeSnappedInstance(seed);
    const Instance rotated = TransformLocations(
        base, [](const Point& p) { return Point{-p.y, p.x}; });
    ExpectSameSolve(base, rotated);
  }
}

TEST(MetamorphicTest, DiagonalReflectionIsInvariant) {
  for (uint64_t seed : {3u, 17u}) {
    const Instance base = MakeSnappedInstance(seed);
    const Instance reflected = TransformLocations(
        base, [](const Point& p) { return Point{p.y, p.x}; });
    ExpectSameSolve(base, reflected);
  }
}

TEST(MetamorphicTest, GridTranslationIsInvariant) {
  for (uint64_t seed : {5u, 29u}) {
    const Instance base = MakeSnappedInstance(seed);
    // Offsets are multiples of the snap grid, so x + dx never rounds.
    const double dx = 512.0 + 1.0 / 1024.0 * 37.0;
    const double dy = -256.0 + 1.0 / 1024.0 * 5.0;
    const Instance translated = TransformLocations(
        base, [dx, dy](const Point& p) { return Point{p.x + dx, p.y + dy}; });
    ExpectSameSolve(base, translated);
  }
}

TEST(MetamorphicTest, ShardedSolverTranslationIsInvariant) {
  // Translation also preserves the spatial bisection used by the sharded
  // partitioner (relative order and exact midpoints are unchanged on the
  // snap grid), so even the partition/solve/merge pipeline must agree
  // bit-for-bit. Rotations would change the widest-axis choice, so they are
  // deliberately NOT tested through SolveSharded.
  const Instance base = MakeSnappedInstance(13, /*users=*/120, /*events=*/30);
  const Instance translated = TransformLocations(
      base, [](const Point& p) { return Point{p.x + 128.0, p.y + 64.0}; });

  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  auto base_result = SolveSharded(base, options);
  auto translated_result = SolveSharded(translated, options);
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  ASSERT_TRUE(translated_result.ok()) << translated_result.status();
  EXPECT_DOUBLE_EQ(base_result->total_utility,
                   translated_result->total_utility);
  EXPECT_TRUE(base_result->plan == translated_result->plan);
}

// ---------------------------------------------------------------------------
// Centroidal-Voronoi metamorphics. Rotation (x,y) -> (-y,x) and reflection
// (x,y) -> (y,x) are FP-exact through the FULL Lloyd iteration: squared
// distances only square/sum the same magnitudes, and cell centroids commute
// with negate/swap bit-for-bit (IEEE negation is exact and rounding is
// sign-symmetric). Translation does NOT commute with the centroid division
// — (sum + n*dx)/n and sum/n + dx may round differently — so translation is
// pinned at the assignment level only (max_iterations = 0), matching the
// file's snap-grid contract. Seeds are passed explicitly (transformed
// alongside the instance) because the bisection seeding is axis-dependent.

std::vector<Point> PickSeedSites(const Instance& instance, int count) {
  std::vector<Point> sites;
  for (int s = 0; s < count; ++s) {
    sites.push_back(
        instance.user((s * 17) % instance.num_users()).location);
  }
  return sites;
}

template <typename PointFn>
std::vector<Point> TransformSites(const std::vector<Point>& sites,
                                  PointFn point_fn) {
  std::vector<Point> out;
  for (const Point& p : sites) out.push_back(point_fn(p));
  return out;
}

template <typename PointFn>
void ExpectLloydExactlyEquivariant(const Instance& base, PointFn point_fn,
                                   int max_iterations) {
  const Instance transformed = TransformLocations(base, point_fn);
  const ReachabilityFilter base_filter(base);
  const ReachabilityFilter transformed_filter(transformed);
  VoronoiOptions base_options;
  base_options.max_iterations = max_iterations;
  base_options.seed_sites = PickSeedSites(base, 3);
  VoronoiOptions transformed_options;
  transformed_options.max_iterations = max_iterations;
  transformed_options.seed_sites =
      TransformSites(base_options.seed_sites, point_fn);

  const VoronoiResult a =
      LloydUserSites(base, base_filter, 3, base_options);
  const VoronoiResult b =
      LloydUserSites(transformed, transformed_filter, 3,
                     transformed_options);
  EXPECT_EQ(a.user_site, b.user_site);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.cost_history, b.cost_history);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (size_t s = 0; s < a.sites.size(); ++s) {
    const Point mapped = point_fn(a.sites[s]);
    EXPECT_EQ(mapped.x, b.sites[s].x) << "site " << s;
    EXPECT_EQ(mapped.y, b.sites[s].y) << "site " << s;
  }

  // The partition built on those sites matches index-for-index too.
  const ShardPartition pa = PartitionInstanceVoronoi(
      base, base_filter, 3, base_options);
  const ShardPartition pb = PartitionInstanceVoronoi(
      transformed, transformed_filter, 3, transformed_options);
  EXPECT_EQ(pa, pb);
}

TEST(MetamorphicTest, VoronoiQuarterTurnIsExactThroughFullLloyd) {
  for (uint64_t seed : {4u, 21u}) {
    const Instance base = MakeSnappedInstance(seed, /*users=*/100,
                                              /*events=*/24);
    ExpectLloydExactlyEquivariant(
        base, [](const Point& p) { return Point{-p.y, p.x}; },
        /*max_iterations=*/25);
  }
}

TEST(MetamorphicTest, VoronoiDiagonalReflectionIsExactThroughFullLloyd) {
  for (uint64_t seed : {6u, 27u}) {
    const Instance base = MakeSnappedInstance(seed, /*users=*/100,
                                              /*events=*/24);
    ExpectLloydExactlyEquivariant(
        base, [](const Point& p) { return Point{p.y, p.x}; },
        /*max_iterations=*/25);
  }
}

TEST(MetamorphicTest, VoronoiGridTranslationIsExactAtAssignmentLevel) {
  for (uint64_t seed : {8u, 31u}) {
    const Instance base = MakeSnappedInstance(seed, /*users=*/100,
                                              /*events=*/24);
    // Offsets are multiples of the snap grid, so every coordinate and
    // coordinate difference stays exact; only the centroid division
    // (skipped at max_iterations = 0) would break the exactness.
    const double dx = 256.0 + 1.0 / 1024.0 * 11.0;
    const double dy = -128.0 + 1.0 / 1024.0 * 3.0;
    ExpectLloydExactlyEquivariant(
        base,
        [dx, dy](const Point& p) { return Point{p.x + dx, p.y + dy}; },
        /*max_iterations=*/0);
  }
}

TEST(MetamorphicTest, VoronoiShardedSolveQuarterTurnIsInvariant) {
  // Full pipeline under the rotation: explicit (rotated) seeds make the
  // Lloyd run exactly equivariant, distances decide everything downstream,
  // so the partition/solve/merge answer must agree bit-for-bit — the
  // rotation analogue of ShardedSolverTranslationIsInvariant, which the
  // axis-dependent bisection cut cannot offer.
  const Instance base = MakeSnappedInstance(35, /*users=*/120, /*events=*/30);
  const Instance rotated = TransformLocations(
      base, [](const Point& p) { return Point{-p.y, p.x}; });

  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  options.partitioner = ShardPartitioner::kVoronoi;
  options.voronoi.seed_sites = PickSeedSites(base, 4);
  ShardedGepcOptions rotated_options = options;
  rotated_options.voronoi.seed_sites = TransformSites(
      options.voronoi.seed_sites,
      [](const Point& p) { return Point{-p.y, p.x}; });

  auto base_result = SolveSharded(base, options);
  auto rotated_result = SolveSharded(rotated, rotated_options);
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  ASSERT_TRUE(rotated_result.ok()) << rotated_result.status();
  EXPECT_DOUBLE_EQ(base_result->total_utility,
                   rotated_result->total_utility);
  EXPECT_TRUE(base_result->plan == rotated_result->plan);
}

TEST(MetamorphicTest, PermutationMapsSolutionToSolution) {
  for (uint64_t seed : {7u, 19u}) {
    const Instance base = MakeSnappedInstance(seed);
    auto solved = SolveGepc(base, GepcOptions{});
    ASSERT_TRUE(solved.ok()) << solved.status();

    // Deterministic shuffles of both index spaces.
    Rng rng(seed * 1000 + 1);
    std::vector<int> user_map(base.num_users());
    std::iota(user_map.begin(), user_map.end(), 0);
    for (size_t k = user_map.size(); k > 1; --k) {
      std::swap(user_map[k - 1], user_map[rng.UniformUint64(k)]);
    }
    std::vector<int> event_map(base.num_events());
    std::iota(event_map.begin(), event_map.end(), 0);
    for (size_t k = event_map.size(); k > 1; --k) {
      std::swap(event_map[k - 1], event_map[rng.UniformUint64(k)]);
    }

    // Relabelled instance: user i becomes user_map[i], event j event_map[j].
    std::vector<User> users(base.num_users());
    for (int i = 0; i < base.num_users(); ++i) {
      users[static_cast<size_t>(user_map[i])] = base.user(i);
    }
    std::vector<Event> events(base.num_events());
    for (int j = 0; j < base.num_events(); ++j) {
      events[static_cast<size_t>(event_map[j])] = base.event(j);
    }
    Instance permuted(std::move(users), std::move(events));
    for (int i = 0; i < base.num_users(); ++i) {
      for (int j = 0; j < base.num_events(); ++j) {
        permuted.set_utility(user_map[i], event_map[j], base.utility(i, j));
      }
    }

    // Map the solved plan through the permutation; it must remain feasible
    // on the relabelled instance with the same utility (summation order
    // differs, hence the tolerance).
    Plan mapped(base.num_users(), base.num_events());
    for (int i = 0; i < base.num_users(); ++i) {
      for (const EventId j : solved->plan.events_of(i)) {
        mapped.Add(user_map[i], event_map[j]);
      }
    }
    ValidationOptions lenient;
    lenient.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(permuted, mapped, lenient).ok());
    EXPECT_NEAR(mapped.TotalUtility(permuted), solved->total_utility, 1e-9);
    EXPECT_EQ(mapped.TotalAssignments(), solved->plan.TotalAssignments());
  }
}

}  // namespace
}  // namespace gepc
