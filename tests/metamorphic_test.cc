// Metamorphic properties of the GEPC solvers: transformations of an
// instance that provably cannot change the optimum must not change the
// solver's answer either.
//
//   * Isometries of the plane (rotation by 90 degrees, axis reflection,
//     translation) leave every pairwise distance — and therefore every
//     budget-feasibility decision — untouched, while utilities live in an
//     explicit n x m matrix that never looks at coordinates. The chosen
//     transforms are FP-*exact*: (x,y) -> (-y,x) and (x,y) -> (y,x) only
//     negate/swap coordinates (squares and the commutative sum in
//     Distance() are bit-identical), and translation is applied to
//     coordinates snapped to a power-of-two grid so the additions never
//     round. The solver must return the *same plan*, not merely an equally
//     good one.
//
//   * Relabelling users/events (a permutation) cannot change what is
//     achievable; a solved plan mapped through the permutation must stay
//     feasible on the relabelled instance with the same total utility. (We
//     deliberately do NOT re-solve: the greedy/regret solvers iterate in
//     index order, so relabelling may find a different — equally valid —
//     local optimum.)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/feasibility.h"
#include "core/instance.h"
#include "core/plan.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

/// Snaps a coordinate to the 2^-10 grid so that later translations by grid
/// multiples are exact in double arithmetic (all values and sums stay far
/// below 2^53 ulp-loss territory).
double Snap(double v) { return std::round(v * 1024.0) / 1024.0; }

Instance MakeSnappedInstance(uint64_t seed, int users = 70, int events = 20) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  auto generated = GenerateInstance(config);
  EXPECT_TRUE(generated.ok()) << generated.status();

  std::vector<User> snapped_users = generated->users();
  for (User& user : snapped_users) {
    user.location = {Snap(user.location.x), Snap(user.location.y)};
  }
  std::vector<Event> snapped_events = generated->events();
  for (Event& event : snapped_events) {
    event.location = {Snap(event.location.x), Snap(event.location.y)};
  }
  Instance instance(std::move(snapped_users), std::move(snapped_events));
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int j = 0; j < instance.num_events(); ++j) {
      instance.set_utility(i, j, generated->utility(i, j));
    }
  }
  return instance;
}

/// Rebuilds `base` with every location mapped through `point_fn`.
template <typename PointFn>
Instance TransformLocations(const Instance& base, PointFn point_fn) {
  std::vector<User> users = base.users();
  for (User& user : users) user.location = point_fn(user.location);
  std::vector<Event> events = base.events();
  for (Event& event : events) event.location = point_fn(event.location);
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < base.num_users(); ++i) {
    for (int j = 0; j < base.num_events(); ++j) {
      instance.set_utility(i, j, base.utility(i, j));
    }
  }
  return instance;
}

void ExpectSameSolve(const Instance& base, const Instance& transformed) {
  auto base_result = SolveGepc(base, GepcOptions{});
  auto transformed_result = SolveGepc(transformed, GepcOptions{});
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  ASSERT_TRUE(transformed_result.ok()) << transformed_result.status();
  EXPECT_DOUBLE_EQ(base_result->total_utility,
                   transformed_result->total_utility);
  EXPECT_TRUE(base_result->plan == transformed_result->plan);
  ValidationOptions lenient;
  lenient.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(transformed, transformed_result->plan, lenient).ok());
}

TEST(MetamorphicTest, QuarterTurnRotationIsInvariant) {
  for (uint64_t seed : {2u, 11u, 23u}) {
    const Instance base = MakeSnappedInstance(seed);
    const Instance rotated = TransformLocations(
        base, [](const Point& p) { return Point{-p.y, p.x}; });
    ExpectSameSolve(base, rotated);
  }
}

TEST(MetamorphicTest, DiagonalReflectionIsInvariant) {
  for (uint64_t seed : {3u, 17u}) {
    const Instance base = MakeSnappedInstance(seed);
    const Instance reflected = TransformLocations(
        base, [](const Point& p) { return Point{p.y, p.x}; });
    ExpectSameSolve(base, reflected);
  }
}

TEST(MetamorphicTest, GridTranslationIsInvariant) {
  for (uint64_t seed : {5u, 29u}) {
    const Instance base = MakeSnappedInstance(seed);
    // Offsets are multiples of the snap grid, so x + dx never rounds.
    const double dx = 512.0 + 1.0 / 1024.0 * 37.0;
    const double dy = -256.0 + 1.0 / 1024.0 * 5.0;
    const Instance translated = TransformLocations(
        base, [dx, dy](const Point& p) { return Point{p.x + dx, p.y + dy}; });
    ExpectSameSolve(base, translated);
  }
}

TEST(MetamorphicTest, ShardedSolverTranslationIsInvariant) {
  // Translation also preserves the spatial bisection used by the sharded
  // partitioner (relative order and exact midpoints are unchanged on the
  // snap grid), so even the partition/solve/merge pipeline must agree
  // bit-for-bit. Rotations would change the widest-axis choice, so they are
  // deliberately NOT tested through SolveSharded.
  const Instance base = MakeSnappedInstance(13, /*users=*/120, /*events=*/30);
  const Instance translated = TransformLocations(
      base, [](const Point& p) { return Point{p.x + 128.0, p.y + 64.0}; });

  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  auto base_result = SolveSharded(base, options);
  auto translated_result = SolveSharded(translated, options);
  ASSERT_TRUE(base_result.ok()) << base_result.status();
  ASSERT_TRUE(translated_result.ok()) << translated_result.status();
  EXPECT_DOUBLE_EQ(base_result->total_utility,
                   translated_result->total_utility);
  EXPECT_TRUE(base_result->plan == translated_result->plan);
}

TEST(MetamorphicTest, PermutationMapsSolutionToSolution) {
  for (uint64_t seed : {7u, 19u}) {
    const Instance base = MakeSnappedInstance(seed);
    auto solved = SolveGepc(base, GepcOptions{});
    ASSERT_TRUE(solved.ok()) << solved.status();

    // Deterministic shuffles of both index spaces.
    Rng rng(seed * 1000 + 1);
    std::vector<int> user_map(base.num_users());
    std::iota(user_map.begin(), user_map.end(), 0);
    for (size_t k = user_map.size(); k > 1; --k) {
      std::swap(user_map[k - 1], user_map[rng.UniformUint64(k)]);
    }
    std::vector<int> event_map(base.num_events());
    std::iota(event_map.begin(), event_map.end(), 0);
    for (size_t k = event_map.size(); k > 1; --k) {
      std::swap(event_map[k - 1], event_map[rng.UniformUint64(k)]);
    }

    // Relabelled instance: user i becomes user_map[i], event j event_map[j].
    std::vector<User> users(base.num_users());
    for (int i = 0; i < base.num_users(); ++i) {
      users[static_cast<size_t>(user_map[i])] = base.user(i);
    }
    std::vector<Event> events(base.num_events());
    for (int j = 0; j < base.num_events(); ++j) {
      events[static_cast<size_t>(event_map[j])] = base.event(j);
    }
    Instance permuted(std::move(users), std::move(events));
    for (int i = 0; i < base.num_users(); ++i) {
      for (int j = 0; j < base.num_events(); ++j) {
        permuted.set_utility(user_map[i], event_map[j], base.utility(i, j));
      }
    }

    // Map the solved plan through the permutation; it must remain feasible
    // on the relabelled instance with the same utility (summation order
    // differs, hence the tolerance).
    Plan mapped(base.num_users(), base.num_events());
    for (int i = 0; i < base.num_users(); ++i) {
      for (const EventId j : solved->plan.events_of(i)) {
        mapped.Add(user_map[i], event_map[j]);
      }
    }
    ValidationOptions lenient;
    lenient.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(permuted, mapped, lenient).ok());
    EXPECT_NEAR(mapped.TotalUtility(permuted), solved->total_utility, 1e-9);
    EXPECT_EQ(mapped.TotalAssignments(), solved->plan.TotalAssignments());
  }
}

}  // namespace
}  // namespace gepc
