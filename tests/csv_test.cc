#include "benchutil/csv.h"

#include <gtest/gtest.h>

#include <fstream>

namespace gepc {
namespace {

TEST(CsvTest, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.ToString(), "a,b\n");
  EXPECT_EQ(csv.num_rows(), 0);
}

TEST(CsvTest, PlainRows) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"3", "4"});
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(csv.num_rows(), 2);
}

TEST(CsvTest, EscapesCommas) {
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
}

TEST(CsvTest, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::Escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvTest, PlainFieldsUntouched) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape(""), "");
}

TEST(CsvTest, RoundTripToFile) {
  CsvWriter csv({"k", "v"});
  csv.AddRow({"name", "has,comma"});
  const std::string path = ::testing::TempDir() + "/gepc_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nname,\"has,comma\"\n");
}

TEST(CsvTest, BadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_EQ(csv.WriteToFile("/nonexistent/dir/file.csv").code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gepc
