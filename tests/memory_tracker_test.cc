#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace gepc {
namespace {

// Note: tests do NOT link the gepc_memhooks allocation hooks, so the byte
// counters stay at their manual values; RecordAlloc/RecordFree are driven
// directly here.

TEST(MemoryTrackerTest, RecordAllocRaisesCurrentAndPeak) {
  MemoryTracker::ResetPeak();
  const int64_t base_current = MemoryTracker::CurrentBytes();
  MemoryTracker::RecordAlloc(1024);
  EXPECT_EQ(MemoryTracker::CurrentBytes(), base_current + 1024);
  EXPECT_GE(MemoryTracker::PeakBytes(), base_current + 1024);
  MemoryTracker::RecordFree(1024);
  EXPECT_EQ(MemoryTracker::CurrentBytes(), base_current);
}

TEST(MemoryTrackerTest, PeakIsHighWaterMark) {
  MemoryTracker::ResetPeak();
  const int64_t base = MemoryTracker::CurrentBytes();
  MemoryTracker::RecordAlloc(4096);
  MemoryTracker::RecordFree(4096);
  MemoryTracker::RecordAlloc(16);
  EXPECT_GE(MemoryTracker::PeakBytes(), base + 4096);
  MemoryTracker::RecordFree(16);
}

TEST(MemoryTrackerTest, ResetPeakDropsToCurrent) {
  MemoryTracker::RecordAlloc(2048);
  MemoryTracker::ResetPeak();
  EXPECT_EQ(MemoryTracker::PeakBytes(), MemoryTracker::CurrentBytes());
  MemoryTracker::RecordFree(2048);
}

TEST(MemoryTrackerTest, RssProbeWorksOnLinux) {
  const int64_t rss = MemoryTracker::CurrentRssBytes();
  ASSERT_GT(rss, 0);
  // A gtest binary resident set is at least 1 MiB and below 100 GiB.
  EXPECT_GT(rss, 1 << 20);
  EXPECT_LT(rss, 100LL << 30);
}

}  // namespace
}  // namespace gepc
