#include "iep/time_change.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(TimeChangeTest, NoOpWhenNewTimeCausesNoConflicts) {
  Instance instance = MakePaperInstance();
  // Shift e4 one hour later: still after everything.
  ASSERT_TRUE(instance.set_event_time(kE4, {19 * 60, 21 * 60}).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyTimeChange(instance, before, kE4);
  EXPECT_EQ(result.negative_impact, 0);
  for (UserId i : before.attendees_of(kE4)) {
    EXPECT_TRUE(result.plan.Contains(i, kE4));
  }
}

TEST(TimeChangeTest, PaperExample8) {
  // e1 moved to 3:30-5:30 p.m.: now conflicts with e2, so u1 drops e1;
  // the refill scan finds u4 (u2/u3 conflict via e2, u5 lacks budget).
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(
      instance.set_event_time(kE1, {15 * 60 + 30, 17 * 60 + 30}).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyTimeChange(instance, before, kE1);
  EXPECT_FALSE(result.plan.Contains(0, kE1));
  EXPECT_TRUE(result.plan.Contains(3, kE1));
  EXPECT_FALSE(result.plan.Contains(1, kE1));
  EXPECT_FALSE(result.plan.Contains(2, kE1));
  EXPECT_FALSE(result.plan.Contains(4, kE1));
  EXPECT_EQ(result.negative_impact, 1);  // only u1's loss counts
  EXPECT_EQ(result.events_below_lower_bound, 0);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result.plan, options).ok());
}

TEST(TimeChangeTest, KeepsNonConflictedAttendees) {
  Instance instance = MakePaperInstance();
  // e3 moved into e2's slot: u2/u3 (who hold e2) must first drop e3 while
  // u4 keeps it; the xi-refill may then transfer users back into e3 at the
  // cost of their e2 attendance, but never leave anyone holding both.
  ASSERT_TRUE(instance.set_event_time(kE3, {16 * 60, 17 * 60}).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyTimeChange(instance, before, kE3);
  EXPECT_TRUE(result.plan.Contains(3, kE3));
  for (UserId i : result.plan.attendees_of(kE3)) {
    EXPECT_FALSE(result.plan.Contains(i, kE2)) << "user " << i;
  }
  EXPECT_GE(result.negative_impact, 2);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result.plan, options).ok());
}

TEST(TimeChangeTest, RefillRespectsUpperBound) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE1, 1, 1).ok());
  ASSERT_TRUE(
      instance.set_event_time(kE1, {15 * 60 + 30, 17 * 60 + 30}).ok());
  const IepResult result = ApplyTimeChange(instance, MakePaperPlan(), kE1);
  EXPECT_LE(result.plan.attendance(kE1), 1);
}

TEST(TimeChangeTest, FallsThroughToTransfersWhenAdditionsInsufficient) {
  // Make e1 unattractive to everyone except the e2 attendees, so the only
  // refill path is Algorithm 4 transfers from e2 (which has a spare).
  Instance instance = MakePaperInstance();
  instance.set_utility(3, kE1, 0.0);  // u4 cannot take it directly
  instance.set_utility(4, kE1, 0.0);  // u5 neither
  ASSERT_TRUE(
      instance.set_event_time(kE1, {15 * 60 + 30, 17 * 60 + 30}).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyTimeChange(instance, before, kE1);
  // u1 dropped e1 (conflict with their e2). Everyone else with positive
  // utility for e1 holds e2 which now conflicts; transfers from e2 (spare:
  // 3 attendees > xi 2) can swap someone out of e2 into e1.
  EXPECT_EQ(result.plan.attendance(kE1) +
                result.events_below_lower_bound,
            1);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result.plan, options).ok());
}

TEST(TimeChangeTest, DisplacedUsersGetReoffers) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(
      instance.set_event_time(kE1, {15 * 60 + 30, 17 * 60 + 30}).ok());
  const IepResult result = ApplyTimeChange(instance, MakePaperPlan(), kE1);
  // u1 still holds e2 and could regain nothing else (e3 conflicts with
  // nothing in the new layout? e3 is 1:30-3:00, e2 4:00-6:00 -> u1 could
  // take e3 if budget allows: 2*d(u1,e3)... tour u1 {e3,e2} = 23.1 > 18,
  // so no re-offer lands. The plan must stay consistent regardless.
  EXPECT_NEAR(result.total_utility, result.plan.TotalUtility(instance),
              1e-12);
}

TEST(TimeChangeTest, UnrelatedPlansUntouched) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(
      instance.set_event_time(kE1, {15 * 60 + 30, 17 * 60 + 30}).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyTimeChange(instance, before, kE1);
  // u5's plan had no relation to e1.
  EXPECT_TRUE(result.plan.Contains(4, kE4));
}

}  // namespace
}  // namespace gepc
