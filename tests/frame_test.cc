// Wire-framing and GLZ1 codec tests (src/net/frame.h, src/net/compress.h):
// round-trips across types/flags/sizes, then adversarial coverage — every
// possible truncation point, a corruption sweep over every byte, and random
// garbage into the decompressor. The decoder must never crash, never hand
// back a mangled frame as valid, and must go permanently dead on corrupt
// streams.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>

#include "common/rng.h"
#include "net/compress.h"

namespace gepc {
namespace net {
namespace {

std::string PatternedText(size_t size) {
  // Repetitive enough to compress, varied enough to exercise literals.
  std::string text;
  text.reserve(size);
  const std::string vocab[] = {"{\"cmd\":\"apply\",\"op\":\"mu:1:2:30\"}",
                               "{\"cmd\":\"stats\"}", "abcdefgh", "xyz"};
  size_t i = 0;
  while (text.size() < size) {
    text += vocab[i % 4];
    ++i;
  }
  text.resize(size);
  return text;
}

std::string RandomBytes(size_t size, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::string bytes(size, '\0');
  for (char& c : bytes) c = static_cast<char>(rng() & 0xFF);
  return bytes;
}

// ---------------------------------------------------------------------------
// GLZ1
// ---------------------------------------------------------------------------

TEST(GlzCompressTest, RoundTripsCompressibleData) {
  for (const size_t size : {0u, 1u, 3u, 127u, 128u, 129u, 4096u, 100000u}) {
    const std::string raw = PatternedText(size);
    const std::string packed = GlzCompress(raw);
    auto unpacked = GlzDecompress(packed, raw.size());
    ASSERT_TRUE(unpacked.ok()) << "size=" << size << ": " << unpacked.status();
    EXPECT_EQ(*unpacked, raw) << "size=" << size;
  }
}

TEST(GlzCompressTest, ShrinksRepetitiveData) {
  const std::string raw(PatternedText(8192));
  EXPECT_LT(GlzCompress(raw).size(), raw.size() / 2);
}

TEST(GlzCompressTest, RoundTripsIncompressibleData) {
  const std::string raw = RandomBytes(10000, 7);
  const std::string packed = GlzCompress(raw);
  auto unpacked = GlzDecompress(packed, raw.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status();
  EXPECT_EQ(*unpacked, raw);
}

TEST(GlzCompressTest, RoundTripsOverlappingRuns) {
  // RLE-style overlapping matches (distance < length copies).
  std::string raw(5000, 'a');
  raw += std::string(3000, 'b');
  for (int i = 0; i < 500; ++i) raw += "abab";
  const std::string packed = GlzCompress(raw);
  auto unpacked = GlzDecompress(packed, raw.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status();
  EXPECT_EQ(*unpacked, raw);
}

TEST(GlzCompressTest, DecompressRejectsTruncatedStreams) {
  const std::string raw = PatternedText(4096);
  const std::string packed = GlzCompress(raw);
  for (size_t cut = 0; cut < packed.size(); ++cut) {
    auto unpacked = GlzDecompress(packed.substr(0, cut), raw.size());
    // Either a clean error or (never) success with the right bytes; a crash
    // or a wrong-size success would fail the harness.
    if (unpacked.ok()) {
      EXPECT_EQ(*unpacked, raw);
    }
  }
}

TEST(GlzCompressTest, DecompressSurvivesRandomGarbage) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const std::string garbage = RandomBytes(64 + seed % 512, seed);
    auto unpacked = GlzDecompress(garbage, 1024);
    if (unpacked.ok()) {
      EXPECT_EQ(unpacked->size(), 1024u);
    }
  }
}

TEST(GlzCompressTest, DecompressChecksRawSize) {
  const std::string raw = PatternedText(1024);
  const std::string packed = GlzCompress(raw);
  EXPECT_FALSE(GlzDecompress(packed, raw.size() + 1).ok());
  EXPECT_FALSE(GlzDecompress(packed, raw.size() - 1).ok());
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

Frame MustDecodeOne(const std::string& wire) {
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kFrame) << error;
  EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kNeedMore);
  return frame;
}

TEST(FrameTest, RoundTripsEveryTypeAndSize) {
  const FrameType types[] = {FrameType::kHello, FrameType::kWelcome,
                             FrameType::kRequest, FrameType::kResponse,
                             FrameType::kStatus};
  for (const FrameType type : types) {
    for (const size_t size : {0u, 1u, 11u, 127u, 128u, 4096u, 70000u}) {
      const std::string payload = PatternedText(size);
      const Frame frame = MustDecodeOne(EncodeFrame(type, payload));
      EXPECT_EQ(frame.type, type);
      EXPECT_EQ(frame.payload, payload);
      EXPECT_FALSE(frame.compressed);
    }
  }
}

TEST(FrameTest, CompressionRoundTripsAndShrinksWire) {
  const std::string payload = PatternedText(8192);
  const std::string wire = EncodeFrame(FrameType::kResponse, payload,
                                       /*allow_compression=*/true);
  EXPECT_LT(wire.size(), payload.size());
  const Frame frame = MustDecodeOne(wire);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_TRUE(frame.compressed);
}

TEST(FrameTest, SmallOrIncompressiblePayloadsStayRaw) {
  // Below the threshold: never compressed.
  const Frame small = MustDecodeOne(
      EncodeFrame(FrameType::kRequest, "tiny", /*allow_compression=*/true));
  EXPECT_FALSE(small.compressed);
  // Random bytes: compression would grow them, so the encoder sends raw.
  const std::string noise = RandomBytes(4096, 42);
  const std::string wire =
      EncodeFrame(FrameType::kRequest, noise, /*allow_compression=*/true);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + noise.size());
  const Frame frame = MustDecodeOne(wire);
  EXPECT_FALSE(frame.compressed);
  EXPECT_EQ(frame.payload, noise);
}

TEST(FrameTest, DecodesChunkedAndConcatenatedStreams) {
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    wire += EncodeFrame(FrameType::kRequest, PatternedText(100 + i * 37),
                        /*allow_compression=*/i % 2 == 1);
  }
  // Feed in awkward chunk sizes; all 20 frames must come out intact.
  for (const size_t chunk : {1u, 7u, 13u, 4096u}) {
    FrameDecoder decoder;
    size_t fed = 0;
    int frames = 0;
    Frame frame;
    Status error;
    while (fed < wire.size()) {
      const size_t n = std::min(chunk, wire.size() - fed);
      decoder.Feed(wire.data() + fed, n);
      fed += n;
      while (decoder.Pop(&frame, &error) == FrameDecoder::Next::kFrame) {
        EXPECT_EQ(frame.type, FrameType::kRequest);
        ++frames;
      }
    }
    EXPECT_EQ(frames, 20) << "chunk=" << chunk;
  }
}

TEST(FrameTest, EveryTruncationAsksForMoreAndNeverCrashes) {
  const std::string wire =
      EncodeFrame(FrameType::kResponse, PatternedText(300));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Frame frame;
    Status error;
    EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kNeedMore)
        << "cut=" << cut;
    // The rest arrives: the frame must decode.
    decoder.Feed(wire.data() + cut, wire.size() - cut);
    EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kFrame)
        << "cut=" << cut;
    EXPECT_EQ(frame.payload, PatternedText(300));
  }
}

TEST(FrameTest, EveryByteCorruptionIsCaughtOrHarmless) {
  const std::string payload = PatternedText(257);
  const std::string wire = EncodeFrame(FrameType::kRequest, payload);
  int rejected = 0;
  for (size_t i = 0; i < wire.size(); ++i) {
    for (const uint8_t delta : {0x01, 0x80, 0xFF}) {
      std::string mangled = wire;
      mangled[i] = static_cast<char>(mangled[i] ^ delta);
      FrameDecoder decoder;
      decoder.Feed(mangled);
      Frame frame;
      Status error;
      const auto next = decoder.Pop(&frame, &error);
      if (next == FrameDecoder::Next::kFrame) {
        // A flipped bit the checksum missed must still decode to the exact
        // payload bytes that were sent on the wire (only header-adjacent
        // fields like flags could alias) — never to silently mangled data
        // of the same length.
        EXPECT_EQ(frame.payload.size(), payload.size());
      } else {
        ++rejected;
        if (next == FrameDecoder::Next::kError) {
          // Dead decoders stay dead, even when fed a pristine frame.
          decoder.Feed(wire);
          EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kError);
        }
      }
    }
  }
  // The checksum + header validation must catch the vast majority.
  EXPECT_GT(rejected, static_cast<int>(wire.size()));
}

TEST(FrameTest, RejectsOversizedLengthImmediately) {
  std::string wire = EncodeFrame(FrameType::kRequest, "x");
  // Patch the length field to just over the cap.
  const uint32_t huge = kMaxFramePayload + 1;
  wire[8] = static_cast<char>(huge & 0xFF);
  wire[9] = static_cast<char>((huge >> 8) & 0xFF);
  wire[10] = static_cast<char>((huge >> 16) & 0xFF);
  wire[11] = static_cast<char>((huge >> 24) & 0xFF);
  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  Status error;
  EXPECT_EQ(decoder.Pop(&frame, &error), FrameDecoder::Next::kError);
  EXPECT_FALSE(error.ok());
}

TEST(FrameTest, RandomGarbageNeverDecodesAsAFrame) {
  int accepted = 0;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    FrameDecoder decoder;
    decoder.Feed(RandomBytes(64, seed));
    Frame frame;
    Status error;
    if (decoder.Pop(&frame, &error) == FrameDecoder::Next::kFrame) ++accepted;
  }
  // Magic + version + reserved-zero + checksum: random 64-byte blobs
  // essentially never pass.
  EXPECT_EQ(accepted, 0);
}

TEST(FrameChecksumTest, IsStable) {
  // Pin the checksum so protocol revisions are deliberate.
  EXPECT_EQ(FrameChecksum(""), FrameChecksum(std::string()));
  EXPECT_NE(FrameChecksum("a"), FrameChecksum("b"));
}

}  // namespace
}  // namespace net
}  // namespace gepc
