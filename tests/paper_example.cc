#include "tests/paper_example.h"

#include <vector>

namespace gepc {
namespace testing_support {

Instance MakePaperInstance() {
  std::vector<User> users = {
      {{0.0, 0.0}, 18.0}, {{5.0, 5.0}, 20.0}, {{4.0, 5.0}, 20.0},
      {{4.0, 6.0}, 30.0}, {{4.0, 4.0}, 10.0},
  };
  std::vector<Event> events = {
      {{1.0, -4.0}, 1, 3, {13 * 60, 15 * 60}},       // e1  1:00-3:00 p.m.
      {{6.0, 0.0}, 2, 4, {16 * 60, 18 * 60}},        // e2  4:00-6:00 p.m.
      {{3.0, 8.0}, 3, 4, {13 * 60 + 30, 15 * 60}},   // e3  1:30-3:00 p.m.
      {{4.0, 2.0}, 1, 5, {18 * 60, 20 * 60}},        // e4  6:00-8:00 p.m.
  };
  Instance instance(std::move(users), std::move(events));
  const double mu[5][4] = {
      {0.7, 0.6, 0.9, 0.3}, {0.6, 0.5, 0.8, 0.4}, {0.4, 0.7, 0.9, 0.5},
      {0.2, 0.3, 0.8, 0.6}, {0.3, 0.1, 0.6, 0.7},
  };
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 4; ++j) instance.set_utility(i, j, mu[i][j]);
  }
  return instance;
}

Plan MakePaperPlan() {
  Plan plan(5, 4);
  plan.Add(0, kE1);
  plan.Add(0, kE2);
  plan.Add(1, kE2);
  plan.Add(1, kE3);
  plan.Add(2, kE2);
  plan.Add(2, kE3);
  plan.Add(3, kE3);
  plan.Add(3, kE4);
  plan.Add(4, kE4);
  return plan;
}

}  // namespace testing_support
}  // namespace gepc
