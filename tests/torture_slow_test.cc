// Full-size crash-recovery torture run, registered under the `slow` ctest
// label so CI can select it with `ctest -L slow` while the default suite
// stays fast. ~6s release build: byte-level truncation of an 80-op journal
// (several thousand recoveries) plus a full service boot per boundary.

#include "service/torture.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/logging.h"

namespace gepc {
namespace {

TEST(TortureSlowTest, FullByteLevelTortureRecoversEverywhere) {
  SetLogLevel(LogLevel::kWarning);
  const std::string workdir = ::testing::TempDir() + "/torture_slow";
  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  ASSERT_FALSE(ec) << ec.message();

  TortureOptions options;
  options.users = 50;
  options.events = 12;
  options.ops = 80;
  options.seed = 7;
  options.byte_level = true;
  options.workdir = workdir;

  auto report = RunCrashRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->ops_journaled, 80u);
  EXPECT_EQ(report->truncation_points,
            static_cast<int>(report->journal_bytes) + 1);
  EXPECT_GT(report->torn_recoveries, 0);
  EXPECT_EQ(report->service_recoveries, 81);
  SetLogLevel(LogLevel::kInfo);
}

TEST(TortureSlowTest, ByteLevelCheckpointTortureRecoversEverywhere) {
  // Every byte of the newest GCKP1 checkpoint AND of the compacted journal
  // is a crash point; fallback warnings fire at each, so only errors show.
  SetLogLevel(LogLevel::kError);
  const std::string workdir = ::testing::TempDir() + "/torture_slow_ckpt";
  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  ASSERT_FALSE(ec) << ec.message();

  TortureOptions options;
  options.users = 40;
  options.events = 10;
  options.ops = 60;
  options.seed = 17;
  options.byte_level = true;
  options.checkpoint_every = 10;
  options.checkpoint_retain = 2;
  options.workdir = workdir;

  auto report = RunCrashRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_GE(report->checkpoints_published, 5u);
  // Byte-level: every checkpoint byte offset 0..size is a truncation point,
  // so there are strictly more crash points than checkpoint bytes... at
  // minimum, far more than the boundary-only variant's handful.
  EXPECT_GT(report->checkpoint_truncation_points, 1000);
  EXPECT_GT(report->rotated_truncation_points, 100);
  EXPECT_GT(report->checkpoint_fallbacks, 0);
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace gepc
