#include "data/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generator.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(IoTest, RoundTripPaperInstance) {
  const Instance original = MakePaperInstance();
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(original, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_users(), original.num_users());
  ASSERT_EQ(loaded->num_events(), original.num_events());
  for (int i = 0; i < original.num_users(); ++i) {
    EXPECT_EQ(loaded->user(i).location, original.user(i).location);
    EXPECT_DOUBLE_EQ(loaded->user(i).budget, original.user(i).budget);
  }
  for (int j = 0; j < original.num_events(); ++j) {
    EXPECT_EQ(loaded->event(j).time, original.event(j).time);
    EXPECT_EQ(loaded->event(j).lower_bound, original.event(j).lower_bound);
    EXPECT_EQ(loaded->event(j).upper_bound, original.event(j).upper_bound);
  }
  for (int i = 0; i < original.num_users(); ++i) {
    for (int j = 0; j < original.num_events(); ++j) {
      EXPECT_DOUBLE_EQ(loaded->utility(i, j), original.utility(i, j));
    }
  }
}

TEST(IoTest, RoundTripGeneratedInstanceExactDoubles) {
  GeneratorConfig config;
  config.num_users = 30;
  config.num_events = 8;
  config.mean_eta = 6.0;
  config.mean_xi = 2.0;
  config.seed = 55;
  auto original = GenerateInstance(config);
  ASSERT_TRUE(original.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*original, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (int i = 0; i < original->num_users(); ++i) {
    // 17 significant digits round-trip doubles exactly.
    EXPECT_DOUBLE_EQ(loaded->user(i).budget, original->user(i).budget);
    EXPECT_DOUBLE_EQ(loaded->user(i).location.x,
                     original->user(i).location.x);
  }
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "GEPC1 1 1\n"
      "# users\n"
      "u 0 0 10\n"
      "e 1 1 0 2 0 10\n"
      "m 0 0 0.5\n");
  auto loaded = LoadInstance(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded->utility(0, 0), 0.5);
}

TEST(IoTest, MissingHeaderRejected) {
  std::stringstream in("u 0 0 10\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoTest, WrongCountsRejected) {
  std::stringstream in(
      "GEPC1 2 1\n"
      "u 0 0 10\n"
      "e 1 1 0 2 0 10\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("declares 2 users"),
            std::string::npos);
}

TEST(IoTest, MalformedRowsRejectedWithLineNumber) {
  std::stringstream in(
      "GEPC1 1 1\n"
      "u 0 0\n"  // missing budget
      "e 1 1 0 2 0 10\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(IoTest, UnknownRowKindRejected) {
  std::stringstream in(
      "GEPC1 1 1\n"
      "u 0 0 10\n"
      "e 1 1 0 2 0 10\n"
      "z 1 2 3\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unknown row kind"),
            std::string::npos);
}

TEST(IoTest, OutOfRangeUtilityRejected) {
  std::stringstream in(
      "GEPC1 1 1\n"
      "u 0 0 10\n"
      "e 1 1 0 2 0 10\n"
      "m 5 0 0.5\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoTest, LoadedInstanceMustValidate) {
  // xi > eta fails Instance::Validate after parsing.
  std::stringstream in(
      "GEPC1 1 1\n"
      "u 0 0 10\n"
      "e 1 1 5 2 0 10\n");
  auto loaded = LoadInstance(in);
  ASSERT_FALSE(loaded.ok());
}

TEST(IoTest, FileRoundTrip) {
  const Instance original = MakePaperInstance();
  const std::string path = ::testing::TempDir() + "/gepc_io_test.gepc";
  ASSERT_TRUE(SaveInstanceToFile(original, path).ok());
  auto loaded = LoadInstanceFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_users(), 5);
  EXPECT_EQ(LoadInstanceFromFile("/nonexistent/nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gepc
