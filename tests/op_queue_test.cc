#include "service/op_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gepc {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  EXPECT_TRUE(queue.Push(3));
  EXPECT_EQ(queue.depth(), 3u);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(BoundedQueueTest, TryPushReportsFull) {
  BoundedQueue<int> queue(2);
  bool full = false;
  EXPECT_TRUE(queue.TryPush(1, &full));
  EXPECT_TRUE(queue.TryPush(2, &full));
  EXPECT_FALSE(queue.TryPush(3, &full));
  EXPECT_TRUE(full);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(3, &full));
}

TEST(BoundedQueueTest, TryPushAfterCloseIsNotFull) {
  BoundedQueue<int> queue(2);
  queue.Close();
  bool full = true;
  EXPECT_FALSE(queue.TryPush(1, &full));
  EXPECT_FALSE(full);
}

TEST(BoundedQueueTest, CloseDrainsPendingItems) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(BoundedQueueTest, HighWaterTracksDeepestPoint) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.Push(int{i}));
  int out = 0;
  while (queue.depth() > 0) queue.Pop(&out);
  EXPECT_EQ(queue.high_water(), 5u);
}

TEST(BoundedQueueTest, ZeroCapacityClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(7));
  bool full = false;
  EXPECT_FALSE(queue.TryPush(8, &full));
  EXPECT_TRUE(full);
}

TEST(BoundedQueueTest, BlockingPushWaitsForRoom) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, ManyProducersOneConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(16);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  int received = 0;
  int out = 0;
  while (received < kProducers * kPerProducer && queue.Pop(&out)) {
    ASSERT_FALSE(seen[static_cast<size_t>(out)]);
    seen[static_cast<size_t>(out)] = true;
    ++received;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

}  // namespace
}  // namespace gepc
