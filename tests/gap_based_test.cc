#include "gepc/gap_based.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/greedy.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(GapBasedTest, ProducesConflictFreeWithinBudgetPlans) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcGapBased(instance, copies);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int i = 0; i < instance.num_users(); ++i) {
    const auto& held = result->copy_plan.copies_of_user[static_cast<size_t>(i)];
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        EXPECT_FALSE(copies.CopiesConflict(instance, held[a], held[b]));
      }
    }
    EXPECT_LE(CopyTourCost(instance, copies, i, held),
              instance.user(i).budget + 1e-9);
  }
}

TEST(GapBasedTest, AttendancePerEventNeverExceedsXi) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcGapBased(instance, copies);
  ASSERT_TRUE(result.ok());
  const Plan plan = CollapseToPlan(instance, copies, result->copy_plan);
  for (int j = 0; j < instance.num_events(); ++j) {
    EXPECT_LE(plan.attendance(j), instance.event(j).lower_bound);
  }
}

TEST(GapBasedTest, PlacesAllCopiesOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcGapBased(instance, copies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
}

TEST(GapBasedTest, RejectsNonPositiveEpsilon) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  GapBasedOptions options;
  options.epsilon = 0.0;
  EXPECT_EQ(SolveXiGepcGapBased(instance, copies, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GapBasedTest, InfeasibleWhenSomeCopyHasNoEligibleUser) {
  Instance instance = MakePaperInstance();
  for (int i = 0; i < 5; ++i) instance.set_utility(i, testing_support::kE1, 0.0);
  const CopyMap copies(instance);
  auto result = SolveXiGepcGapBased(instance, copies);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(GapBasedTest, EmptyCopySetTrivial) {
  Instance instance = MakePaperInstance();
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(instance
                    .set_event_bounds(j, 0, instance.event(j).upper_bound)
                    .ok());
  }
  const CopyMap copies(instance);
  auto result = SolveXiGepcGapBased(instance, copies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
}

TEST(GapBasedTest, UtilityAtLeastGreedyOnGeneratedInstances) {
  // The paper's headline comparison: GAP-based achieves >= greedy utility
  // (Table VI / Fig. 2). Averaged over a few generated instances to absorb
  // rounding noise in either direction on any single one.
  double gap_total = 0.0;
  double greedy_total = 0.0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.mean_eta = 8.0;
    config.mean_xi = 3.0;
    config.seed = seed;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    const CopyMap copies(*instance);
    auto gap = SolveXiGepcGapBased(*instance, copies);
    auto greedy = SolveXiGepcGreedy(*instance, copies);
    ASSERT_TRUE(gap.ok()) << gap.status();
    ASSERT_TRUE(greedy.ok());
    gap_total +=
        CollapseToPlan(*instance, copies, gap->copy_plan).TotalUtility(*instance);
    greedy_total += CollapseToPlan(*instance, copies, greedy->copy_plan)
                        .TotalUtility(*instance);
  }
  EXPECT_GE(gap_total, 0.9 * greedy_total);
}

TEST(GapBasedTest, MwuEngineAlsoProducesFeasiblePlans) {
  GeneratorConfig config;
  config.num_users = 30;
  config.num_events = 8;
  config.mean_eta = 6.0;
  config.mean_xi = 2.0;
  config.seed = 11;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  const CopyMap copies(*instance);
  GapBasedOptions options;
  options.gap.engine = GapLpEngine::kMwu;
  auto result = SolveXiGepcGapBased(*instance, copies, options);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int i = 0; i < instance->num_users(); ++i) {
    const auto& held = result->copy_plan.copies_of_user[static_cast<size_t>(i)];
    EXPECT_LE(CopyTourCost(*instance, copies, i, held),
              instance->user(i).budget + 1e-9);
  }
}

}  // namespace
}  // namespace gepc
