#include "service/planning_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "iep/batch.h"
#include "iep/planner.h"
#include "iep/trace.h"
#include "service/journal.h"
#include "shard/sharded_solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::string Tmp(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PlanningServiceTest, CreatePublishesInitialSnapshot) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok()) << service.status();
  const auto snap = (*service)->snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  EXPECT_DOUBLE_EQ(snap->total_utility,
                   MakePaperPlan().TotalUtility(MakePaperInstance()));
  EXPECT_EQ(snap->total_assignments, MakePaperPlan().TotalAssignments());
}

TEST(PlanningServiceTest, CreateRejectsMismatchedPlan) {
  Plan wrong(2, 2);
  auto service = PlanningService::Create(MakePaperInstance(), wrong);
  EXPECT_FALSE(service.ok());
}

TEST(PlanningServiceTest, ApplyMatchesDirectPlanner) {
  const std::vector<AtomicOp> ops = {
      AtomicOp::UpperBoundChange(kE4, 1),
      AtomicOp::BudgetChange(1, 5.0),
      AtomicOp::LowerBoundChange(kE2, 3),
  };

  auto direct = IncrementalPlanner::Create(MakePaperInstance(),
                                           MakePaperPlan());
  ASSERT_TRUE(direct.ok());
  for (const AtomicOp& op : ops) ASSERT_TRUE(direct->Apply(op).ok());

  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  for (const AtomicOp& op : ops) {
    const ApplyOutcome outcome = (*service)->Apply(op);
    EXPECT_TRUE(outcome.applied) << outcome.error;
  }
  const auto snap = (*service)->snapshot();
  EXPECT_EQ(snap->version, ops.size());
  EXPECT_TRUE(*snap->plan == direct->plan());
  EXPECT_DOUBLE_EQ(snap->total_utility,
                   direct->plan().TotalUtility(direct->instance()));
}

TEST(PlanningServiceTest, SnapshotIsImmutableWhileServiceAdvances) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  const auto before = (*service)->snapshot();
  const double utility_before = before->total_utility;
  const Plan plan_before = *before->plan;

  ASSERT_TRUE((*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1)).applied);

  // The held snapshot still shows the old state; a fresh one has moved on.
  EXPECT_DOUBLE_EQ(before->total_utility, utility_before);
  EXPECT_TRUE(*before->plan == plan_before);
  EXPECT_EQ((*service)->snapshot()->version, 1u);
}

TEST(PlanningServiceTest, InvalidOpIsRejectedAndStateUnchanged) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  const auto before = (*service)->snapshot();

  // Event 99 does not exist.
  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::UpperBoundChange(99, 1));
  EXPECT_FALSE(outcome.applied);
  EXPECT_FALSE(outcome.error.empty());

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.ops_rejected, 1u);
  EXPECT_EQ(stats.ops_applied, 0u);
  EXPECT_TRUE(*(*service)->snapshot()->plan == *before->plan);
}

TEST(PlanningServiceTest, QueryUserServesItineraries) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  auto itinerary = (*service)->QueryUser(0);
  ASSERT_TRUE(itinerary.ok()) << itinerary.status();
  EXPECT_EQ(itinerary->user, 0);
  EXPECT_EQ(itinerary->stops.size(), 2u);  // u1 attends {e1, e2}
  EXPECT_FALSE((*service)->QueryUser(-1).ok());
  EXPECT_FALSE((*service)->QueryUser(99).ok());
}

TEST(PlanningServiceTest, SubmitAfterShutdownResolvesUnapplied) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  (*service)->Shutdown();
  EXPECT_FALSE((*service)->accepting());

  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1));
  EXPECT_FALSE(outcome.applied);
  EXPECT_EQ((*service)->Stats().ops_dropped, 1u);

  auto try_submit = (*service)->TrySubmit(AtomicOp::UpperBoundChange(kE4, 1));
  ASSERT_FALSE(try_submit.ok());
  EXPECT_EQ(try_submit.status().code(), StatusCode::kUnavailable);

  (*service)->Shutdown();  // idempotent
}

TEST(PlanningServiceTest, JournalRecordsAcceptedOpsInOrder) {
  const std::string journal_path = Tmp("service_journal_order.gops");
  std::remove(journal_path.c_str());

  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                         options);
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE((*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1)).applied);
  // Rejected ops are journaled too (they were accepted into the log first).
  EXPECT_FALSE((*service)->Apply(AtomicOp::UpperBoundChange(99, 1)).applied);
  ASSERT_TRUE((*service)->Apply(AtomicOp::BudgetChange(1, 5.0)).applied);
  (*service)->Shutdown();
  EXPECT_GT((*service)->Stats().journal_bytes, 0);

  auto replay = ReplayJournal(MakePaperInstance(), MakePaperPlan(),
                              journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->ops_applied, 2u);
  EXPECT_EQ(replay->ops_rejected, 1u);
  EXPECT_TRUE(replay->plan == *(*service)->snapshot()->plan);
}

TEST(PlanningServiceTest, CreateRefusesExistingJournalRecoverResumesIt) {
  const std::string journal_path = Tmp("service_journal_recover.gops");
  std::remove(journal_path.c_str());

  ServiceOptions options;
  options.journal_path = journal_path;
  {
    auto service = PlanningService::Create(MakePaperInstance(),
                                           MakePaperPlan(), options);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(
        (*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1)).applied);
    (*service)->Shutdown();
  }

  // A second Create on the same journal must refuse...
  auto second = PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                        options);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  // ...while Recover resumes exactly where the first service stopped.
  auto recovered = PlanningService::Recover(MakePaperInstance(),
                                            MakePaperPlan(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->snapshot()->version, 1u);
  const ApplyOutcome outcome =
      (*recovered)->Apply(AtomicOp::BudgetChange(1, 5.0));
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(outcome.sequence, 2u);  // sequence numbers continue

  auto replay = ReplayJournal(MakePaperInstance(), MakePaperPlan(),
                              journal_path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->ops_applied, 2u);
}

TEST(PlanningServiceTest, RecoverWithoutJournalFileStartsFresh) {
  const std::string journal_path = Tmp("service_journal_fresh.gops");
  std::remove(journal_path.c_str());
  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Recover(MakePaperInstance(), MakePaperPlan(),
                                          options);
  ASSERT_TRUE(service.ok()) << service.status();
  EXPECT_EQ((*service)->snapshot()->version, 0u);
}

TEST(PlanningServiceTest, DrainWaitsForSubmittedOps) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  std::vector<std::future<ApplyOutcome>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(
        (*service)->Submit(AtomicOp::BudgetChange(i % 5, 10.0 + i)));
  }
  (*service)->Drain();
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.ops_applied + stats.ops_rejected, 50u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ((*service)->snapshot()->version, 50u);
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().applied);
  }
}

TEST(PlanningServiceTest, SnapshotEveryBatchesPublishes) {
  ServiceOptions options;
  options.snapshot_every = 1000;  // only the queue-idle publish fires
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                         options);
  ASSERT_TRUE(service.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*service)->Apply(AtomicOp::BudgetChange(0, 18.0)).applied);
  }
  (*service)->Drain();
  // Synchronous Apply leaves the queue empty before each next submit, so
  // the idle-publish keeps the snapshot fresh even with a huge batch size.
  EXPECT_EQ((*service)->snapshot()->version, 20u);
}

TEST(PlanningServiceTest, StatsTrackLatencyAndImpact) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  const ApplyOutcome outcome =
      (*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1));
  ASSERT_TRUE(outcome.applied);
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.ops_submitted, 1u);
  EXPECT_EQ(stats.ops_applied, 1u);
  EXPECT_GE(stats.negative_impact_total, 0);
  EXPECT_GT(stats.apply_ms_max, 0.0);
  EXPECT_GE(stats.apply_ms_p99, stats.apply_ms_p50);
  EXPECT_GE(stats.queue_high_water, 1u);
  EXPECT_EQ(stats.queue_capacity, 1024u);
}

TEST(PlanningServiceTest, RebuildSwapsPlanAndSerializesWithOps) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Apply(AtomicOp::UpperBoundChange(kE4, 1)).applied);

  ShardedGepcOptions options;
  options.shards = 2;
  options.threads = 2;
  const RebuildOutcome outcome = (*service)->Rebuild(options);
  ASSERT_TRUE(outcome.rebuilt) << outcome.error;
  EXPECT_GT(outcome.total_utility, 0.0);

  // The swapped-in plan is what the snapshot serves, it respects the
  // mutated instance (eta(kE4) = 1), and equals a direct solve of the
  // same instance state.
  const auto snap = (*service)->snapshot();
  EXPECT_LE(snap->plan->attendance(kE4), 1);
  EXPECT_DOUBLE_EQ(snap->total_utility, outcome.total_utility);
  auto planner = IncrementalPlanner::Create(MakePaperInstance(),
                                            MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  ASSERT_TRUE(planner->Apply(AtomicOp::UpperBoundChange(kE4, 1)).ok());
  auto direct = SolveSharded(planner->instance(), options);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(*snap->plan == direct->plan);

  // Ops keep applying after the swap.
  EXPECT_TRUE((*service)->Apply(AtomicOp::BudgetChange(0, 18.0)).applied);
}

TEST(PlanningServiceTest, RebuildIsNotJournaled) {
  const std::string journal_path = Tmp("rebuild_journal.gops");
  std::remove(journal_path.c_str());
  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                         options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->Apply(AtomicOp::BudgetChange(1, 9.5)).applied);
  ASSERT_TRUE((*service)->Rebuild().rebuilt);
  (*service)->Shutdown();

  auto replayed = LoadOpsFromFile(journal_path);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_EQ(replayed->size(), 1u);  // only the budget op
}

TEST(PlanningServiceTest, RebuildAfterShutdownResolvesUnbuilt) {
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(service.ok());
  (*service)->Shutdown();
  const RebuildOutcome outcome = (*service)->Rebuild();
  EXPECT_FALSE(outcome.rebuilt);
  EXPECT_FALSE(outcome.error.empty());
}

}  // namespace
}  // namespace gepc
