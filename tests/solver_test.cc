#include "gepc/solver.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(SolveGepcTest, GreedyEndToEndOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  auto result = SolveGepc(instance, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result->plan, validation).ok());
  EXPECT_GT(result->total_utility, 0.0);
  EXPECT_DOUBLE_EQ(result->total_utility,
                   result->plan.TotalUtility(instance));
}

TEST(SolveGepcTest, GapBasedEndToEndOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  auto result = SolveGepc(instance, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result->plan, validation).ok());
}

TEST(SolveGepcTest, LowerBoundsMetOnPaperInstance) {
  // The paper instance is satisfiable (the Table I plan proves it); both
  // algorithms should meet every xi.
  const Instance instance = MakePaperInstance();
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(instance, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->events_below_lower_bound, 0)
        << GepcAlgorithmName(algorithm);
    EXPECT_TRUE(ValidatePlan(instance, result->plan).ok())
        << GepcAlgorithmName(algorithm);
  }
}

TEST(SolveGepcTest, TopUpNeverLowersUtility) {
  const Instance instance = MakePaperInstance();
  GepcOptions bare;
  bare.algorithm = GepcAlgorithm::kGreedy;
  bare.run_topup = false;
  GepcOptions full = bare;
  full.run_topup = true;
  auto without = SolveGepc(instance, bare);
  auto with = SolveGepc(instance, full);
  ASSERT_TRUE(without.ok() && with.ok());
  EXPECT_GE(with->total_utility, without->total_utility - 1e-9);
  EXPECT_GT(with->topup_stats.added, 0);
  EXPECT_EQ(without->topup_stats.added, 0);
}

TEST(SolveGepcTest, XiGepcStepNeverOverfillsEvents) {
  const Instance instance = MakePaperInstance();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  options.run_topup = false;
  auto result = SolveGepc(instance, options);
  ASSERT_TRUE(result.ok());
  for (int j = 0; j < instance.num_events(); ++j) {
    EXPECT_LE(result->plan.attendance(j), instance.event(j).lower_bound);
  }
}

TEST(SolveGepcTest, FallbackToGreedyWhenGapInfeasible) {
  Instance instance = MakePaperInstance();
  // Nobody can attend e1 -> the GAP reduction is infeasible.
  for (int i = 0; i < 5; ++i) {
    instance.set_utility(i, testing_support::kE1, 0.0);
  }
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  options.fallback_to_greedy = true;
  auto result = SolveGepc(instance, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->unplaced_copies, 1);
  EXPECT_GE(result->events_below_lower_bound, 1);

  options.fallback_to_greedy = false;
  auto strict = SolveGepc(instance, options);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInfeasible);
}

TEST(SolveGepcTest, AlgorithmNames) {
  EXPECT_STREQ(GepcAlgorithmName(GepcAlgorithm::kGapBased), "GAP");
  EXPECT_STREQ(GepcAlgorithmName(GepcAlgorithm::kGreedy), "Greedy");
  EXPECT_STREQ(GepcAlgorithmName(GepcAlgorithm::kRegret), "Regret");
}

TEST(SolveGepcTest, RegretAlgorithmEndToEnd) {
  const Instance instance = MakePaperInstance();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kRegret;
  auto result = SolveGepc(instance, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->events_below_lower_bound, 0);
  EXPECT_TRUE(ValidatePlan(instance, result->plan).ok());
  // Deterministic: a second run produces the identical plan.
  auto again = SolveGepc(instance, options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(result->plan == again->plan);
}

TEST(SolveGepcTest, GeneratedInstancesStayFeasible) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 50;
    config.num_events = 12;
    config.mean_eta = 8.0;
    config.mean_xi = 2.0;
    config.seed = seed;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    for (GepcAlgorithm algorithm :
         {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
      GepcOptions options;
      options.algorithm = algorithm;
      auto result = SolveGepc(*instance, options);
      ASSERT_TRUE(result.ok())
          << "seed " << seed << " " << GepcAlgorithmName(algorithm) << ": "
          << result.status();
      ValidationOptions validation;
      validation.check_lower_bounds = false;
      EXPECT_TRUE(ValidatePlan(*instance, result->plan, validation).ok())
          << "seed " << seed << " " << GepcAlgorithmName(algorithm);
    }
  }
}

TEST(SolveGepcTest, LocalSearchRefinementNeverHurts) {
  const Instance instance = MakePaperInstance();
  GepcOptions plain;
  plain.algorithm = GepcAlgorithm::kGreedy;
  GepcOptions refined = plain;
  refined.refine_with_local_search = true;
  auto base = SolveGepc(instance, plain);
  auto polished = SolveGepc(instance, refined);
  ASSERT_TRUE(base.ok() && polished.ok());
  EXPECT_GE(polished->total_utility, base->total_utility - 1e-9);
  EXPECT_NEAR(polished->total_utility - base->total_utility,
              polished->local_search_stats.utility_gain, 1e-9);
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, polished->plan, validation).ok());
  EXPECT_EQ(base->local_search_stats.passes, 0);
}

TEST(SolveGepcTest, GapUtilityAtLeastGreedyAggregate) {
  // Paper Table VI shape: GAP >= Greedy utility (allowing small noise).
  double gap_total = 0.0;
  double greedy_total = 0.0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.mean_eta = 8.0;
    config.mean_xi = 3.0;
    config.seed = seed + 100;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    GepcOptions options;
    options.algorithm = GepcAlgorithm::kGapBased;
    auto gap = SolveGepc(*instance, options);
    options.algorithm = GepcAlgorithm::kGreedy;
    auto greedy = SolveGepc(*instance, options);
    ASSERT_TRUE(gap.ok() && greedy.ok());
    gap_total += gap->total_utility;
    greedy_total += greedy->total_utility;
  }
  EXPECT_GE(gap_total, 0.95 * greedy_total);
}

}  // namespace
}  // namespace gepc
