#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/linear_program.h"

namespace gepc {
namespace {

TEST(LinearProgramTest, ValidateCatchesBadVariableIndex) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.AddConstraint({{0, 1.0}, {5, 1.0}}, Relation::kLessEqual, 1.0);
  EXPECT_EQ(lp.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(LinearProgramTest, AccessorsRoundTrip) {
  LinearProgram lp(LinearProgram::Sense::kMaximize, 3);
  lp.set_objective(1, 2.5);
  EXPECT_DOUBLE_EQ(lp.objective(1), 2.5);
  EXPECT_EQ(lp.num_vars(), 3);
  const int row = lp.AddConstraint({{0, 1.0}}, Relation::kEqual, 4.0);
  EXPECT_EQ(row, 0);
  EXPECT_EQ(lp.constraint(0).relation, Relation::kEqual);
  EXPECT_DOUBLE_EQ(lp.constraint(0).rhs, 4.0);
}

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {1, 3.0}}, Relation::kLessEqual, 6.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 12.0, 1e-7);
  EXPECT_NEAR(result->x[0], 4.0, 1e-7);
  EXPECT_NEAR(result->x[1], 0.0, 1e-7);
}

TEST(SimplexTest, SimpleMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 0, y >= 0 -> (10, 0), obj 20.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 10.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 20.0, 1e-7);
  EXPECT_NEAR(result->x[0], 10.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> obj 5.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 5.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 3.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 5.0, 1e-7);
  EXPECT_NEAR(result->x[0] + result->x[1], 5.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot hold.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kGreaterEqual, 2.0);
  auto result = SolveLp(lp);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  // No constraint: x can grow forever.
  auto result = SolveLp(lp);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -3 means x >= 3; min x -> 3.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, -1.0}}, Relation::kLessEqual, -3.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->x[0], 3.0, 1e-7);
}

TEST(SimplexTest, DuplicateTermsAreSummed) {
  // (1 + 1) x <= 4 -> x <= 2; max x -> 2.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {0, 1.0}}, Relation::kLessEqual, 4.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblemStillTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 0.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 2.0}}, Relation::kLessEqual, 2.0);
  lp.AddConstraint({{1, 1.0}}, Relation::kLessEqual, 1.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 2.0, 1e-7);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice (redundant row must be dropped in phase 1).
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 2.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 2.0, 1e-7);
}

TEST(SimplexTest, TransportationProblem) {
  // Two sources (supply 3, 4), two sinks (demand 2, 5); costs
  // [[1, 4], [2, 1]]. Optimal: x00=2, x01=1, x11=4 -> cost 2+4+4 = 10.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 4);  // x00 x01 x10 x11
  const double costs[4] = {1, 4, 2, 1};
  for (int v = 0; v < 4; ++v) lp.set_objective(v, costs[v]);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);
  lp.AddConstraint({{2, 1.0}, {3, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {2, 1.0}}, Relation::kEqual, 2.0);
  lp.AddConstraint({{1, 1.0}, {3, 1.0}}, Relation::kEqual, 5.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 10.0, 1e-7);
}

TEST(SimplexTest, MaximizeEqualsNegatedMinimize) {
  LinearProgram max_lp(LinearProgram::Sense::kMaximize, 2);
  max_lp.set_objective(0, 1.0);
  max_lp.set_objective(1, 2.0);
  max_lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);

  LinearProgram min_lp(LinearProgram::Sense::kMinimize, 2);
  min_lp.set_objective(0, -1.0);
  min_lp.set_objective(1, -2.0);
  min_lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);

  auto max_result = SolveLp(max_lp);
  auto min_result = SolveLp(min_lp);
  ASSERT_TRUE(max_result.ok());
  ASSERT_TRUE(min_result.ok());
  EXPECT_NEAR(max_result->objective_value, -min_result->objective_value,
              1e-7);
}

TEST(SimplexTest, ZeroConstraintProblemWithZeroObjective) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 0.0, 1e-9);
}

TEST(SimplexTest, RandomLpsSatisfyConstraintsAtOptimum) {
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformUint64(4));
    const int m = 1 + static_cast<int>(rng.UniformUint64(4));
    LinearProgram lp(LinearProgram::Sense::kMaximize, n);
    for (int v = 0; v < n; ++v) {
      lp.set_objective(v, rng.UniformDouble(0.0, 5.0));
    }
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> terms;
      std::vector<double> dense(static_cast<size_t>(n), 0.0);
      for (int v = 0; v < n; ++v) {
        const double coef = rng.UniformDouble(0.1, 2.0);
        terms.emplace_back(v, coef);
        dense[static_cast<size_t>(v)] = coef;
      }
      const double b = rng.UniformDouble(1.0, 10.0);
      lp.AddConstraint(std::move(terms), Relation::kLessEqual, b);
      rows.push_back(std::move(dense));
      rhs.push_back(b);
    }
    auto result = SolveLp(lp);
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": " << result.status();
    for (int r = 0; r < m; ++r) {
      double lhs = 0.0;
      for (int v = 0; v < n; ++v) {
        lhs += rows[static_cast<size_t>(r)][static_cast<size_t>(v)] *
               result->x[static_cast<size_t>(v)];
        EXPECT_GE(result->x[static_cast<size_t>(v)], -1e-9);
      }
      EXPECT_LE(lhs, rhs[static_cast<size_t>(r)] + 1e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Edge cases for the flat core (run under every pivot rule: degenerate
// shapes must not depend on how the entering column is priced).
// ---------------------------------------------------------------------------

constexpr SimplexPivotRule kAllRules[] = {SimplexPivotRule::kDantzig,
                                          SimplexPivotRule::kBland,
                                          SimplexPivotRule::kSteepestEdge};

SimplexOptions WithRule(SimplexPivotRule rule) {
  SimplexOptions options;
  options.pivot_rule = rule;
  return options;
}

TEST(SimplexTest, EmptyProgramIsTriviallyOptimal) {
  for (SimplexPivotRule rule : kAllRules) {
    LinearProgram lp(LinearProgram::Sense::kMinimize, 0);
    auto result = SolveLp(lp, WithRule(rule));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->objective_value, 0.0);
    EXPECT_TRUE(result->x.empty());
  }
}

TEST(SimplexTest, UnconstrainedVariablesStayAtZero) {
  for (SimplexPivotRule rule : kAllRules) {
    // No constraints: minimum of a nonnegative-cost program is x = 0.
    LinearProgram lp(LinearProgram::Sense::kMinimize, 3);
    lp.set_objective(0, 1.0);
    lp.set_objective(2, 5.0);
    auto result = SolveLp(lp, WithRule(rule));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->objective_value, 0.0);
    for (double x : result->x) EXPECT_EQ(x, 0.0);
  }
}

TEST(SimplexTest, SingleVariableSingleConstraint) {
  for (SimplexPivotRule rule : kAllRules) {
    // max 2x s.t. 3x <= 6 -> x = 2, obj 4.
    LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
    lp.set_objective(0, 2.0);
    lp.AddConstraint({{0, 3.0}}, Relation::kLessEqual, 6.0);
    auto result = SolveLp(lp, WithRule(rule));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->objective_value, 4.0, 1e-9);
    EXPECT_NEAR(result->x[0], 2.0, 1e-9);
  }
}

TEST(SimplexTest, AllSlackBasisIsAlreadyOptimal) {
  for (SimplexPivotRule rule : kAllRules) {
    // All <= rows, nonnegative costs: the initial slack basis is optimal
    // and the solver must return x = 0 without a single pivot going wrong.
    LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
    lp.set_objective(0, 1.0);
    lp.set_objective(1, 1.0);
    lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 4.0);
    lp.AddConstraint({{1, 2.0}}, Relation::kLessEqual, 9.0);
    auto result = SolveLp(lp, WithRule(rule));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->objective_value, 0.0);
    EXPECT_EQ(result->x[0], 0.0);
    EXPECT_EQ(result->x[1], 0.0);
  }
}

TEST(SimplexTest, BealeCyclingInstanceTerminates) {
  // Beale's classic cycling example: Dantzig pricing with a naive ratio
  // test cycles forever. With the degenerate-streak Bland switch (forced
  // almost immediately here) every pricing rule must terminate at the
  // optimum -0.05.
  for (SimplexPivotRule rule : kAllRules) {
    LinearProgram lp(LinearProgram::Sense::kMinimize, 4);
    lp.set_objective(0, -0.75);
    lp.set_objective(1, 150.0);
    lp.set_objective(2, -0.02);
    lp.set_objective(3, 6.0);
    lp.AddConstraint({{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}},
                     Relation::kLessEqual, 0.0);
    lp.AddConstraint({{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}},
                     Relation::kLessEqual, 0.0);
    lp.AddConstraint({{2, 1.0}}, Relation::kLessEqual, 1.0);
    SimplexOptions options = WithRule(rule);
    options.degenerate_pivots_before_bland = 2;
    auto result = SolveLp(lp, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->objective_value, -0.05, 1e-9);
  }
}

TEST(SimplexTest, ForcedBlandPivotRuleSolvesToSameOptimum) {
  // The explicit Bland rule (from iteration one) must reach
  // the same optimum Dantzig does.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {1, 3.0}}, Relation::kLessEqual, 6.0);
  SimplexOptions bland;
  bland.pivot_rule = SimplexPivotRule::kBland;
  SimplexOptions steepest;
  steepest.pivot_rule = SimplexPivotRule::kSteepestEdge;
  for (const SimplexOptions& options : {bland, steepest}) {
    auto result = SolveLp(lp, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->objective_value, 12.0, 1e-9);
  }
}

TEST(SimplexTest, WorkspaceReusesArenaAcrossSameShapeSolves) {
  LpWorkspace workspace;
  LinearProgram lp(LinearProgram::Sense::kMinimize, 4);
  for (int v = 0; v < 4; ++v) lp.set_objective(v, 1.0 + v);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 2.0);
  lp.AddConstraint({{2, 1.0}, {3, 1.0}}, Relation::kGreaterEqual, 1.0);

  auto first = SolveLp(lp, {}, &workspace);
  ASSERT_TRUE(first.ok()) << first.status();
  const int64_t allocs_after_first = workspace.allocation_count();
  EXPECT_GT(allocs_after_first, 0);
  EXPECT_GT(workspace.arena_bytes(), 0u);

  for (int round = 0; round < 50; ++round) {
    auto result = SolveLp(lp, {}, &workspace);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NEAR(result->objective_value, first->objective_value, 1e-12);
  }
  // Same shape, same arena: zero further allocations — the O(1) reuse
  // contract the GAP loop depends on.
  EXPECT_EQ(workspace.allocation_count(), allocs_after_first);
}

TEST(SimplexTest, WorkspaceGrowsWhenALargerProgramArrives) {
  LpWorkspace workspace;
  LinearProgram small(LinearProgram::Sense::kMinimize, 2);
  small.set_objective(0, 1.0);
  small.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 1.0);
  ASSERT_TRUE(SolveLp(small, {}, &workspace).ok());
  const int64_t allocs_small = workspace.allocation_count();
  const size_t bytes_small = workspace.arena_bytes();

  // A far larger program must trigger a (single) arena growth, then reuse.
  LinearProgram big(LinearProgram::Sense::kMinimize, 40);
  for (int v = 0; v < 40; ++v) big.set_objective(v, 1.0 + (v % 7));
  for (int r = 0; r < 25; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = r % 5; v < 40; v += 5) terms.emplace_back(v, 1.0);
    big.AddConstraint(std::move(terms), Relation::kGreaterEqual, 1.0);
  }
  ASSERT_TRUE(SolveLp(big, {}, &workspace).ok());
  EXPECT_GT(workspace.allocation_count(), allocs_small);
  EXPECT_GT(workspace.arena_bytes(), bytes_small);

  const int64_t allocs_big = workspace.allocation_count();
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(SolveLp(big, {}, &workspace).ok());
    // The small program also fits the grown arena now.
    ASSERT_TRUE(SolveLp(small, {}, &workspace).ok());
  }
  EXPECT_EQ(workspace.allocation_count(), allocs_big);
}

TEST(SimplexTest, InvalidOptionsAreRejectedLoudly) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kGreaterEqual, 1.0);

  SimplexOptions bad_epsilon;
  bad_epsilon.epsilon = 0.0;
  EXPECT_EQ(SolveLp(lp, bad_epsilon).status().code(),
            StatusCode::kInvalidArgument);
  bad_epsilon.epsilon = 0.5;  // above the 1e-2 ceiling
  EXPECT_EQ(SolveLp(lp, bad_epsilon).status().code(),
            StatusCode::kInvalidArgument);
  bad_epsilon.epsilon = -1e-9;
  EXPECT_EQ(SolveLp(lp, bad_epsilon).status().code(),
            StatusCode::kInvalidArgument);

  SimplexOptions bad_iterations;
  bad_iterations.max_iterations = -1;
  EXPECT_EQ(SolveLp(lp, bad_iterations).status().code(),
            StatusCode::kInvalidArgument);

  SimplexOptions bad_bland;
  bad_bland.degenerate_pivots_before_bland = 0;
  EXPECT_EQ(SolveLp(lp, bad_bland).status().code(),
            StatusCode::kInvalidArgument);

  // Direct validation entry point agrees.
  EXPECT_TRUE(ValidateSimplexOptions(SimplexOptions{}).ok());
  EXPECT_EQ(ValidateSimplexOptions(bad_bland).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gepc
