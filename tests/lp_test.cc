#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/linear_program.h"

namespace gepc {
namespace {

TEST(LinearProgramTest, ValidateCatchesBadVariableIndex) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.AddConstraint({{0, 1.0}, {5, 1.0}}, Relation::kLessEqual, 1.0);
  EXPECT_EQ(lp.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(LinearProgramTest, AccessorsRoundTrip) {
  LinearProgram lp(LinearProgram::Sense::kMaximize, 3);
  lp.set_objective(1, 2.5);
  EXPECT_DOUBLE_EQ(lp.objective(1), 2.5);
  EXPECT_EQ(lp.num_vars(), 3);
  const int row = lp.AddConstraint({{0, 1.0}}, Relation::kEqual, 4.0);
  EXPECT_EQ(row, 0);
  EXPECT_EQ(lp.constraint(0).relation, Relation::kEqual);
  EXPECT_DOUBLE_EQ(lp.constraint(0).rhs, 4.0);
}

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> (4, 0), obj 12.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {1, 3.0}}, Relation::kLessEqual, 6.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 12.0, 1e-7);
  EXPECT_NEAR(result->x[0], 4.0, 1e-7);
  EXPECT_NEAR(result->x[1], 0.0, 1e-7);
}

TEST(SimplexTest, SimpleMinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 0, y >= 0 -> (10, 0), obj 20.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 10.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 20.0, 1e-7);
  EXPECT_NEAR(result->x[0], 10.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> obj 5.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 5.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 3.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 5.0, 1e-7);
  EXPECT_NEAR(result->x[0] + result->x[1], 5.0, 1e-7);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot hold.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kGreaterEqual, 2.0);
  auto result = SolveLp(lp);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  // No constraint: x can grow forever.
  auto result = SolveLp(lp);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -3 means x >= 3; min x -> 3.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, -1.0}}, Relation::kLessEqual, -3.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->x[0], 3.0, 1e-7);
}

TEST(SimplexTest, DuplicateTermsAreSummed) {
  // (1 + 1) x <= 4 -> x <= 2; max x -> 2.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {0, 1.0}}, Relation::kLessEqual, 4.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 2.0, 1e-7);
}

TEST(SimplexTest, DegenerateProblemStillTerminates) {
  // Multiple redundant constraints through the same vertex.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 0.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, 2.0}}, Relation::kLessEqual, 2.0);
  lp.AddConstraint({{1, 1.0}}, Relation::kLessEqual, 1.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 2.0, 1e-7);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // x + y = 2 stated twice (redundant row must be dropped in phase 1).
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 2.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 2.0, 1e-7);
}

TEST(SimplexTest, TransportationProblem) {
  // Two sources (supply 3, 4), two sinks (demand 2, 5); costs
  // [[1, 4], [2, 1]]. Optimal: x00=2, x01=1, x11=4 -> cost 2+4+4 = 10.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 4);  // x00 x01 x10 x11
  const double costs[4] = {1, 4, 2, 1};
  for (int v = 0; v < 4; ++v) lp.set_objective(v, costs[v]);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);
  lp.AddConstraint({{2, 1.0}, {3, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {2, 1.0}}, Relation::kEqual, 2.0);
  lp.AddConstraint({{1, 1.0}, {3, 1.0}}, Relation::kEqual, 5.0);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NEAR(result->objective_value, 10.0, 1e-7);
}

TEST(SimplexTest, MaximizeEqualsNegatedMinimize) {
  LinearProgram max_lp(LinearProgram::Sense::kMaximize, 2);
  max_lp.set_objective(0, 1.0);
  max_lp.set_objective(1, 2.0);
  max_lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);

  LinearProgram min_lp(LinearProgram::Sense::kMinimize, 2);
  min_lp.set_objective(0, -1.0);
  min_lp.set_objective(1, -2.0);
  min_lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 3.0);

  auto max_result = SolveLp(max_lp);
  auto min_result = SolveLp(min_lp);
  ASSERT_TRUE(max_result.ok());
  ASSERT_TRUE(min_result.ok());
  EXPECT_NEAR(max_result->objective_value, -min_result->objective_value,
              1e-7);
}

TEST(SimplexTest, ZeroConstraintProblemWithZeroObjective) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  auto result = SolveLp(lp);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->objective_value, 0.0, 1e-9);
}

TEST(SimplexTest, RandomLpsSatisfyConstraintsAtOptimum) {
  Rng rng(404);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformUint64(4));
    const int m = 1 + static_cast<int>(rng.UniformUint64(4));
    LinearProgram lp(LinearProgram::Sense::kMaximize, n);
    for (int v = 0; v < n; ++v) {
      lp.set_objective(v, rng.UniformDouble(0.0, 5.0));
    }
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> terms;
      std::vector<double> dense(static_cast<size_t>(n), 0.0);
      for (int v = 0; v < n; ++v) {
        const double coef = rng.UniformDouble(0.1, 2.0);
        terms.emplace_back(v, coef);
        dense[static_cast<size_t>(v)] = coef;
      }
      const double b = rng.UniformDouble(1.0, 10.0);
      lp.AddConstraint(std::move(terms), Relation::kLessEqual, b);
      rows.push_back(std::move(dense));
      rhs.push_back(b);
    }
    auto result = SolveLp(lp);
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": " << result.status();
    for (int r = 0; r < m; ++r) {
      double lhs = 0.0;
      for (int v = 0; v < n; ++v) {
        lhs += rows[static_cast<size_t>(r)][static_cast<size_t>(v)] *
               result->x[static_cast<size_t>(v)];
        EXPECT_GE(result->x[static_cast<size_t>(v)], -1e-9);
      }
      EXPECT_LE(lhs, rhs[static_cast<size_t>(r)] + 1e-6);
    }
  }
}

}  // namespace
}  // namespace gepc
