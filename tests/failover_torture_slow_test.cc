// Exhaustive failover sweep (ctest -L slow; the CI repl-torture job): a
// longer op stream, the primary killed after EVERY committed op, with
// checkpoint publication + retention-pinned compaction racing the live
// tail throughout. Byte-identical promoted state and an accepted resumed
// write are required at every offset.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/logging.h"
#include "repl/failover.h"

namespace gepc {
namespace repl {
namespace {

TEST(FailoverTortureSlowTest, EveryOffsetPromotesByteIdentically) {
  SetLogLevel(LogLevel::kError);
  const std::string workdir = ::testing::TempDir() + "/failover_slow";
  std::error_code ec;
  std::filesystem::remove_all(workdir, ec);
  std::filesystem::create_directories(workdir, ec);
  ASSERT_FALSE(ec) << ec.message();

  FailoverTortureOptions options;
  options.users = 40;
  options.events = 10;
  options.ops = 30;
  options.seed = 7;
  options.checkpoint_every = 8;
  options.offset_stride = 1;
  options.workdir = workdir;

  auto report = RunFailoverTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->offsets_exercised, 31);  // 0..30 inclusive
  EXPECT_EQ(report->promotions, 31);
  EXPECT_EQ(report->state_mismatches, 0);
  EXPECT_EQ(report->resumed_write_failures, 0);
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace repl
}  // namespace gepc
