#include "shard/sharded_solver.h"

#include <gtest/gtest.h>

#include <utility>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

TEST(SolveShardedTest, SingleShardByteIdenticalToSequentialSolver) {
  for (const Instance& instance :
       {MakePaperInstance(), MakeLocalInstance(80, 25, 3)}) {
    ShardedGepcOptions options;  // shards = 1
    auto sharded = SolveSharded(instance, options);
    auto sequential = SolveGepc(instance, options.gepc);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    EXPECT_TRUE(sharded->plan == sequential->plan);
    EXPECT_DOUBLE_EQ(sharded->total_utility, sequential->total_utility);
    EXPECT_EQ(sharded->events_below_lower_bound,
              sequential->events_below_lower_bound);
    EXPECT_EQ(sharded->unplaced_copies, sequential->unplaced_copies);
  }
}

TEST(SolveShardedTest, ThreadCountNeverChangesTheResult) {
  const Instance instance = MakeLocalInstance(150, 40, 7);
  ShardedGepcOptions base;
  base.shards = 4;
  base.threads = 1;
  auto reference = SolveSharded(instance, base);
  ASSERT_TRUE(reference.ok()) << reference.status();
  for (int threads : {2, 8}) {
    ShardedGepcOptions options = base;
    options.threads = threads;
    auto result = SolveSharded(instance, options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->plan == reference->plan) << threads << " threads";
    EXPECT_DOUBLE_EQ(result->total_utility, reference->total_utility);
  }
}

TEST(SolveShardedTest, MergedPlanSatisfiesUserSideConstraints) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    const Instance instance = MakeLocalInstance(120, 35, seed);
    for (int shards : {2, 4, 6}) {
      ShardedGepcOptions options;
      options.shards = shards;
      options.threads = 2;
      ShardedGepcStats stats;
      auto result = SolveSharded(instance, options, &stats);
      ASSERT_TRUE(result.ok()) << result.status();
      // Constraints 1-3 are hard; lower bounds are best-effort with the
      // shortfall reported, mirroring the sequential contract.
      ValidationOptions validation;
      validation.check_lower_bounds = false;
      EXPECT_TRUE(ValidatePlan(instance, result->plan, validation).ok())
          << "seed " << seed << " shards " << shards;
      int below = 0;
      for (EventId j = 0; j < instance.num_events(); ++j) {
        if (result->plan.attendance(j) < instance.event(j).lower_bound) {
          ++below;
        }
      }
      EXPECT_EQ(result->events_below_lower_bound, below);
      EXPECT_DOUBLE_EQ(result->total_utility,
                       result->plan.TotalUtility(instance));
      EXPECT_EQ(stats.interior_users + stats.boundary_users,
                instance.num_users());
    }
  }
}

TEST(SolveShardedTest, DeterministicAcrossRepeatedRuns) {
  const Instance instance = MakeLocalInstance(100, 30, 21);
  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 4;
  auto a = SolveSharded(instance, options);
  auto b = SolveSharded(instance, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->plan == b->plan);
}

TEST(SolveShardedTest, WorksAcrossAlgorithms) {
  const Instance instance = MakeLocalInstance(80, 25, 17);
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kRegret}) {
    ShardedGepcOptions options;
    options.shards = 3;
    options.threads = 2;
    options.gepc.algorithm = algorithm;
    auto result = SolveSharded(instance, options);
    ASSERT_TRUE(result.ok())
        << GepcAlgorithmName(algorithm) << ": " << result.status();
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(instance, result->plan, validation).ok());
    EXPECT_GT(result->total_utility, 0.0);
  }
}

TEST(SolveShardedTest, ShardsBeyondOccupiedCellsStillSolve) {
  // Paper instance: 6 events in a tiny area; asking for 8 shards leaves
  // several empty, which must not break the solve or the merge.
  const Instance instance = MakePaperInstance();
  ShardedGepcOptions options;
  options.shards = 8;
  options.threads = 2;
  ShardedGepcStats stats;
  auto result = SolveSharded(instance, options, &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result->plan, validation).ok());
  EXPECT_GT(result->total_utility, 0.0);
}

TEST(SolveShardedTest, ShardedUtilityStaysCompetitive) {
  // The cut + merge should not crater quality on a spatially local
  // instance: demand at least 90% of the sequential utility here (the
  // bench demands >= 99% on large instances; small ones are noisier).
  const Instance instance = MakeLocalInstance(200, 50, 31);
  ShardedGepcOptions options;
  options.shards = 4;
  auto sharded = SolveSharded(instance, options);
  auto sequential = SolveGepc(instance, options.gepc);
  ASSERT_TRUE(sharded.ok() && sequential.ok());
  ASSERT_GT(sequential->total_utility, 0.0);
  EXPECT_GE(sharded->total_utility, 0.9 * sequential->total_utility);
}

TEST(SolveShardedTest, NoTopupOptionPropagatesToShards) {
  const Instance instance = MakeLocalInstance(80, 25, 41);
  ShardedGepcOptions with;
  with.shards = 3;
  ShardedGepcOptions without = with;
  without.gepc.run_topup = false;
  auto with_result = SolveSharded(instance, with);
  auto without_result = SolveSharded(instance, without);
  ASSERT_TRUE(with_result.ok() && without_result.ok());
  EXPECT_LE(without_result->plan.TotalAssignments(),
            with_result->plan.TotalAssignments());
}

}  // namespace
}  // namespace gepc
