// Keeps docs/fault-injection.md honest: every failure point the library
// actually instruments (fault::kKnownPoints) must be named in the document,
// so an operator reading the docs sees the complete injectable surface. A
// new GEPC_INJECT_FAULT site without a matching doc line fails this test.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.h"

#ifndef GEPC_FAULT_DOC_PATH
#error "GEPC_FAULT_DOC_PATH must point at docs/fault-injection.md"
#endif

namespace gepc {
namespace {

TEST(FaultDocCoverageTest, EveryKnownPointIsDocumented) {
  std::ifstream in(GEPC_FAULT_DOC_PATH);
  ASSERT_TRUE(in.good()) << "cannot open " << GEPC_FAULT_DOC_PATH;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  ASSERT_FALSE(doc.empty());

  int points = 0;
  for (const char* const* p = fault::kKnownPoints; *p != nullptr; ++p) {
    EXPECT_NE(doc.find(*p), std::string::npos)
        << "failure point \"" << *p
        << "\" is instrumented but not mentioned in docs/fault-injection.md";
    ++points;
  }
  // The table is nullptr-terminated and non-trivial; if this shrinks the
  // fault surface changed and the docs need a pass anyway.
  EXPECT_GE(points, 6);
}

}  // namespace
}  // namespace gepc
