// Satellite of the fault-injection PR: feed deliberately damaged GOPS1
// journals — truncated at every byte, single-bit-flipped, pure garbage —
// into the crash-tolerant scanner and ReplayJournal. The contract under
// test: recovery either succeeds or returns a clean Status; it never
// crashes, never loops, and never fabricates operations. The CI sanitize
// job runs this suite under ASan to catch the "never leaks" half too.

#include "service/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "iep/trace.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::string Tmp(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// A journal exercising every row kind, written through the real Journal so
// the bytes match production output exactly.
std::string BuildSampleJournal(const std::string& path) {
  std::remove(path.c_str());
  auto journal = Journal::Open(path);
  EXPECT_TRUE(journal.ok()) << journal.status().ToString();
  const Instance instance = MakePaperInstance();
  std::vector<AtomicOp> ops;
  ops.push_back(AtomicOp::BudgetChange(0, 21.5));
  ops.push_back(AtomicOp::UpperBoundChange(1, 3));
  ops.push_back(AtomicOp::LowerBoundChange(2, 2));
  ops.push_back(AtomicOp::TimeChange(3, {1080, 1200}));
  ops.push_back(AtomicOp::LocationChange(0, {2.0, -3.0}));
  ops.push_back(AtomicOp::UtilityChange(4, 1, 0.75));
  Event fresh = instance.event(0);
  fresh.location = {7.0, 7.0};
  ops.push_back(AtomicOp::NewEvent(
      fresh, std::vector<double>(static_cast<size_t>(instance.num_users()),
                                 0.5)));
  ops.push_back(AtomicOp::BudgetChange(2, 19.0));
  for (const AtomicOp& op : ops) {
    EXPECT_TRUE(journal->Append(op).ok());
  }
  return ReadBytes(path);
}

class JournalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_path_ = Tmp("journal_corruption.gops");
    crash_path_ = Tmp("journal_corruption.crash.gops");
    full_ = BuildSampleJournal(journal_path_);
    ASSERT_GT(full_.size(), 40u);
  }

  Result<ReplayReport> Replay(const std::string& bytes) {
    WriteBytes(crash_path_, bytes);
    return ReplayJournal(MakePaperInstance(), MakePaperPlan(), crash_path_);
  }

  std::string journal_path_;
  std::string crash_path_;
  std::string full_;
};

TEST_F(JournalCorruptionTest, TruncatedAtEveryByteRecoversClean) {
  uint64_t last_ops = 0;
  int torn = 0;
  for (size_t L = 0; L <= full_.size(); ++L) {
    auto replay = Replay(full_.substr(0, L));
    ASSERT_TRUE(replay.ok())
        << "offset " << L << ": " << replay.status().ToString();
    const uint64_t ops = replay->ops_applied + replay->ops_rejected;
    // Prefixes only ever add ops; a longer prefix can never lose one.
    EXPECT_GE(ops, last_ops) << "offset " << L;
    last_ops = ops;
    if (replay->torn_bytes_discarded > 0) ++torn;
    EXPECT_EQ(replay->committed_bytes + replay->torn_bytes_discarded,
              static_cast<int64_t>(L));
  }
  EXPECT_EQ(last_ops, 8u);
  EXPECT_GT(torn, 0);  // mid-row truncations must exercise the torn path
}

TEST_F(JournalCorruptionTest, SingleBitFlipsNeverCrash) {
  int clean_errors = 0;
  for (size_t i = 0; i < full_.size(); ++i) {
    for (const char mask : {char(0x01), char(0x20)}) {
      std::string flipped = full_;
      flipped[i] = static_cast<char>(flipped[i] ^ mask);
      auto replay = Replay(flipped);
      if (!replay.ok()) {
        // A clean, typed error — kInvalidArgument for interior rot.
        EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument)
            << "byte " << i << ": " << replay.status().ToString();
        ++clean_errors;
      } else {
        // Some flips keep every row parseable (a digit changed). The scan
        // still must not invent operations out of thin air.
        EXPECT_LE(replay->ops_applied + replay->ops_rejected, 8u);
      }
    }
  }
  EXPECT_GT(clean_errors, 0);
}

TEST_F(JournalCorruptionTest, GarbageAfterHeaderIsCleanError) {
  Rng rng(404);
  for (int trial = 0; trial < 16; ++trial) {
    std::string bytes = "GOPS1\n";
    const size_t length = 1 + rng.UniformUint64(200);
    for (size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformUint64(256)));
    }
    auto replay = Replay(bytes);
    if (!replay.ok()) {
      EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST_F(JournalCorruptionTest, PureGarbageFileIsCleanError) {
  Rng rng(808);
  for (int trial = 0; trial < 16; ++trial) {
    std::string bytes;
    const size_t length = 1 + rng.UniformUint64(200);
    for (size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformUint64(256)));
    }
    auto replay = Replay(bytes);
    if (!replay.ok()) {
      EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
    } else {
      // Only possible when the garbage happens to be all-torn (no newline):
      // then nothing is committed and nothing replays.
      EXPECT_EQ(replay->ops_applied + replay->ops_rejected, 0u);
    }
  }
}

TEST_F(JournalCorruptionTest, EmptyAndHeaderTornFilesYieldZeroOps) {
  const std::vector<std::string> cases = {"", "G", "GOPS1", "GOPS1\n"};
  for (const std::string& bytes : cases) {
    WriteBytes(crash_path_, bytes);
    auto scan = ScanJournalFile(crash_path_);
    ASSERT_TRUE(scan.ok()) << scan.status().ToString();
    EXPECT_TRUE(scan->ops.empty());
    auto replay = Replay(bytes);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay->ops_applied + replay->ops_rejected, 0u);
  }
}

TEST_F(JournalCorruptionTest, WrongHeaderIsError) {
  auto replay = Replay("NOPE1\nbudget 0 21.5\n");
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(JournalCorruptionTest, MissingFileIsNotFound) {
  auto replay = ReplayJournal(MakePaperInstance(), MakePaperPlan(),
                              Tmp("journal_corruption.nonexistent.gops"));
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

TEST_F(JournalCorruptionTest, InteriorCorruptLineIsErrorNotTornTail) {
  // Replace the *middle* row with a complete-but-unparseable line. Unlike
  // a torn tail this must hard-fail: data after the rot can't be trusted.
  const size_t first_row = full_.find('\n') + 1;
  const size_t second_row = full_.find('\n', first_row) + 1;
  const size_t third_row = full_.find('\n', second_row) + 1;
  std::string bytes = full_.substr(0, second_row) + "xyzzy 12 foo\n" +
                      full_.substr(third_row);
  auto replay = Replay(bytes);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(replay.status().message().find("byte"), std::string::npos);
}

TEST_F(JournalCorruptionTest, ScanReportsCommittedAndTornSplit) {
  const std::string torn = full_.substr(0, full_.size() - 3);
  WriteBytes(crash_path_, torn);
  auto scan = ScanJournalFile(crash_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->ops.size(), 7u);
  EXPECT_GT(scan->torn_bytes, 0);
  EXPECT_EQ(scan->committed_bytes + scan->torn_bytes,
            static_cast<int64_t>(torn.size()));
}

TEST_F(JournalCorruptionTest, OpenTruncatesTornTailThenExtendsCleanly) {
  WriteBytes(crash_path_, full_.substr(0, full_.size() - 3));
  auto journal = Journal::Open(crash_path_);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->preexisting_ops(), 7u);
  ASSERT_TRUE(journal->Append(AtomicOp::BudgetChange(1, 22.0)).ok());
  auto scan = ScanJournalFile(crash_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->ops.size(), 8u);
  EXPECT_EQ(scan->torn_bytes, 0);
}

}  // namespace
}  // namespace gepc
