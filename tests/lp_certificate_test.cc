// Certificate battery for the flat LP core: every outcome the solver can
// report carries a witness, and VerifyLpCertificate checks that witness
// against the program with no solver state involved — so LP correctness
// does not rest on a second solver being right.
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/certificates.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {
namespace {

void ExpectCertified(const LinearProgram& lp, LpOutcome expected,
                     const std::string& label) {
  auto certified = SolveLpCertified(lp);
  ASSERT_TRUE(certified.ok()) << label << ": " << certified.status();
  EXPECT_EQ(certified->outcome, expected) << label;
  const Status verdict = VerifyLpCertificate(lp, *certified);
  EXPECT_TRUE(verdict.ok()) << label << ": " << verdict;
}

TEST(LpCertificateTest, OptimalMinimizationWithAllRelations) {
  // min 2x + 3y s.t. x + y >= 2, x - y = 0, x <= 5 -> x = y = 1, obj 5.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, Relation::kEqual, 0.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 5.0);
  auto certified = SolveLpCertified(lp);
  ASSERT_TRUE(certified.ok()) << certified.status();
  ASSERT_EQ(certified->outcome, LpOutcome::kOptimal);
  EXPECT_NEAR(certified->solution.objective_value, 5.0, 1e-9);
  EXPECT_TRUE(VerifyLpCertificate(lp, *certified).ok());
}

TEST(LpCertificateTest, OptimalMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 3.0);
  lp.set_objective(1, 2.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{0, 1.0}, {1, 3.0}}, Relation::kLessEqual, 6.0);
  auto certified = SolveLpCertified(lp);
  ASSERT_TRUE(certified.ok()) << certified.status();
  ASSERT_EQ(certified->outcome, LpOutcome::kOptimal);
  EXPECT_NEAR(certified->solution.objective_value, 12.0, 1e-9);
  EXPECT_TRUE(VerifyLpCertificate(lp, *certified).ok());
}

TEST(LpCertificateTest, InfeasibleContradictoryBounds) {
  // x >= 3 and x <= 1 cannot both hold.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 1);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kGreaterEqual, 3.0);
  lp.AddConstraint({{0, 1.0}}, Relation::kLessEqual, 1.0);
  ExpectCertified(lp, LpOutcome::kInfeasible, "contradictory bounds");
}

TEST(LpCertificateTest, InfeasibleEqualitySystem) {
  // x + y = 1 and x + y = 2.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kEqual, 2.0);
  ExpectCertified(lp, LpOutcome::kInfeasible, "equality system");
}

TEST(LpCertificateTest, InfeasibleNegativeRhsNormalization) {
  // -x - y >= 1 over x, y >= 0 is impossible; normalization flips the row,
  // so the reported Farkas multiplier must flip back.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, 1.0);
  lp.AddConstraint({{0, -1.0}, {1, -1.0}}, Relation::kGreaterEqual, 1.0);
  ExpectCertified(lp, LpOutcome::kInfeasible, "flipped row");
}

TEST(LpCertificateTest, UnboundedMinimization) {
  // min -x s.t. y <= 1: x can grow forever.
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, -1.0);
  lp.AddConstraint({{1, 1.0}}, Relation::kLessEqual, 1.0);
  ExpectCertified(lp, LpOutcome::kUnbounded, "min -x");
}

TEST(LpCertificateTest, UnboundedMaximizationWithCoupledRay) {
  // max x + y s.t. x - y <= 1, y - x <= 1: the ray must move x and y
  // together to keep both rows satisfied.
  LinearProgram lp(LinearProgram::Sense::kMaximize, 2);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 1.0);
  lp.AddConstraint({{0, 1.0}, {1, -1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{0, -1.0}, {1, 1.0}}, Relation::kLessEqual, 1.0);
  ExpectCertified(lp, LpOutcome::kUnbounded, "coupled ray");
}

TEST(LpCertificateTest, VerifierRejectsTamperedCertificates) {
  LinearProgram lp(LinearProgram::Sense::kMinimize, 2);
  lp.set_objective(0, 2.0);
  lp.set_objective(1, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual, 2.0);
  auto certified = SolveLpCertified(lp);
  ASSERT_TRUE(certified.ok()) << certified.status();
  ASSERT_EQ(certified->outcome, LpOutcome::kOptimal);
  ASSERT_TRUE(VerifyLpCertificate(lp, *certified).ok());

  // Tampered primal: infeasible point.
  auto tampered = *certified;
  tampered.solution.x[0] = -1.0;
  EXPECT_FALSE(VerifyLpCertificate(lp, tampered).ok());

  // Tampered dual: wrong sign for a >= row under minimization.
  tampered = *certified;
  tampered.dual[0] = -1.0;
  EXPECT_FALSE(VerifyLpCertificate(lp, tampered).ok());

  // Tampered objective.
  tampered = *certified;
  tampered.solution.objective_value += 1.0;
  EXPECT_FALSE(VerifyLpCertificate(lp, tampered).ok());

  // Wrong outcome entirely: claims infeasible with a zero Farkas vector.
  tampered = *certified;
  tampered.outcome = LpOutcome::kInfeasible;
  tampered.farkas.assign(static_cast<size_t>(lp.num_constraints()), 0.0);
  EXPECT_FALSE(VerifyLpCertificate(lp, tampered).ok());
}

/// Random-program sweep: whatever the solver reports, the certificate must
/// verify. Mirrors the differential test's generator shape but goes through
/// the certified API.
TEST(LpCertificateTest, RandomProgramsAlwaysVerify) {
  constexpr int kTrials = 600;
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xFACADEu + trial);
    const int n = static_cast<int>(rng.UniformInt(1, 10));
    const int m = static_cast<int>(rng.UniformInt(1, 8));
    LinearProgram lp(rng.Bernoulli(0.3) ? LinearProgram::Sense::kMaximize
                                        : LinearProgram::Sense::kMinimize,
                     n);
    for (int v = 0; v < n; ++v) {
      lp.set_objective(v, 0.25 * static_cast<double>(rng.UniformInt(-8, 8)));
    }
    for (int r = 0; r < m; ++r) {
      std::vector<std::pair<int, double>> terms;
      for (int v = 0; v < n; ++v) {
        if (rng.Bernoulli(0.7)) {
          terms.emplace_back(
              v, 0.25 * static_cast<double>(rng.UniformInt(-8, 8)));
        }
      }
      if (terms.empty()) terms.emplace_back(0, 1.0);
      const double rhs = 0.5 * static_cast<double>(rng.UniformInt(-6, 6));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          lp.AddConstraint(std::move(terms), Relation::kLessEqual,
                           std::fabs(rhs));
          break;
        case 1:
          lp.AddConstraint(std::move(terms), Relation::kGreaterEqual, rhs);
          break;
        default:
          lp.AddConstraint(std::move(terms), Relation::kEqual, rhs);
          break;
      }
    }
    auto certified = SolveLpCertified(lp);
    if (!certified.ok()) {
      // Iteration cap is the only acceptable failure on random programs.
      EXPECT_EQ(certified.status().code(), StatusCode::kInternal)
          << "trial " << trial << ": " << certified.status();
      continue;
    }
    const Status verdict = VerifyLpCertificate(lp, *certified);
    EXPECT_TRUE(verdict.ok()) << "trial " << trial << ": " << verdict;
    switch (certified->outcome) {
      case LpOutcome::kOptimal:
        ++optimal;
        break;
      case LpOutcome::kInfeasible:
        ++infeasible;
        break;
      case LpOutcome::kUnbounded:
        ++unbounded;
        break;
    }
  }
  EXPECT_GT(optimal, 0);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(unbounded, 0);
}

/// The certified path honors the workspace reuse contract too.
TEST(LpCertificateTest, WorkspaceReuseAcrossCertifiedSolves) {
  LpWorkspace workspace;
  LinearProgram lp(LinearProgram::Sense::kMinimize, 3);
  lp.set_objective(0, 1.0);
  lp.set_objective(1, 2.0);
  lp.set_objective(2, 3.0);
  lp.AddConstraint({{0, 1.0}, {1, 1.0}, {2, 1.0}}, Relation::kGreaterEqual,
                   3.0);
  for (int round = 0; round < 5; ++round) {
    auto certified = SolveLpCertified(lp, {}, &workspace);
    ASSERT_TRUE(certified.ok()) << certified.status();
    EXPECT_TRUE(VerifyLpCertificate(lp, *certified).ok());
  }
  const int64_t allocs_after_warmup = workspace.allocation_count();
  for (int round = 0; round < 20; ++round) {
    auto certified = SolveLpCertified(lp, {}, &workspace);
    ASSERT_TRUE(certified.ok()) << certified.status();
  }
  EXPECT_EQ(workspace.allocation_count(), allocs_after_warmup);
}

}  // namespace
}  // namespace gepc
