// Service-level coverage of the online rebalancer: the tracker rides the
// writer thread, rebalance requests share the FIFO with ops, the skew
// cadence auto-triggers, stats surface the tracker's counters, and the
// `shard.rebalance` fault degrades a request without touching the
// partition or the served plan.

#include "service/planning_service.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/generator.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "iep/planner.h"
#include "service/torture.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

class RebalanceServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::Global().Reset();
    instance_ = MakeLocalInstance(80, 14, 4);
    auto solved = SolveGepc(instance_, GepcOptions{});
    ASSERT_TRUE(solved.ok()) << solved.status();
    plan_ = solved->plan;
  }
  void TearDown() override { fault::Registry::Global().Reset(); }

  std::vector<AtomicOp> MakeTrace(int count, uint64_t seed) {
    auto scratch = IncrementalPlanner::Create(instance_, plan_);
    EXPECT_TRUE(scratch.ok()) << scratch.status();
    return GenerateTortureOps(&*scratch, count, seed);
  }

  Instance instance_;
  Plan plan_;
};

TEST_F(RebalanceServiceTest, ExplicitRebalanceReportsAndCounts) {
  ServiceOptions options;
  options.rebalance_shards = 3;
  auto service = PlanningService::Create(instance_, plan_, options);
  ASSERT_TRUE(service.ok()) << service.status();

  int applied = 0;
  for (const AtomicOp& op : MakeTrace(20, 21)) {
    if ((*service)->Apply(op).applied) ++applied;
  }
  ASSERT_GT(applied, 0);

  const RebalanceOutcome outcome = (*service)->Rebalance();
  EXPECT_TRUE(outcome.rebalanced) << outcome.error;
  EXPECT_EQ(outcome.sequence, (*service)->Stats().ops_applied +
                                  (*service)->Stats().ops_rejected);
  EXPECT_GE(outcome.report.skew_before, 0.0);

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.rebalance_shards, 3);
  EXPECT_EQ(stats.rebalances, 1u);
  EXPECT_EQ(stats.rebalance_failures, 0u);
  EXPECT_GT(stats.shard_migrations, 0u);
  EXPECT_EQ(stats.last_rebalance_version, outcome.sequence);
}

TEST_F(RebalanceServiceTest, RebalanceFailsCleanlyWhenTrackerDisabled) {
  auto service = PlanningService::Create(instance_, plan_);
  ASSERT_TRUE(service.ok()) << service.status();
  const RebalanceOutcome outcome = (*service)->Rebalance();
  EXPECT_FALSE(outcome.rebalanced);
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_EQ((*service)->Stats().rebalance_shards, 0);
  EXPECT_EQ((*service)->Stats().rebalance_failures, 1u);
}

TEST_F(RebalanceServiceTest, SkewCadenceAutoTriggersRebalances) {
  ServiceOptions options;
  options.rebalance_shards = 2;
  options.rebalance_every = 5;
  options.rebalance_skew = 0.0;  // fire on every cadence check
  auto service = PlanningService::Create(instance_, plan_, options);
  ASSERT_TRUE(service.ok()) << service.status();

  int applied = 0;
  for (const AtomicOp& op : MakeTrace(40, 33)) {
    if ((*service)->Apply(op).applied) ++applied;
  }
  ASSERT_GE(applied, 10);

  const ServiceStats stats = (*service)->Stats();
  EXPECT_GT(stats.rebalances, 0u);
  EXPECT_GT(stats.last_rebalance_version, 0u);
}

TEST_F(RebalanceServiceTest, RebalanceFaultDegradesWithoutTouchingState) {
  ServiceOptions options;
  options.rebalance_shards = 3;
  auto service = PlanningService::Create(instance_, plan_, options);
  ASSERT_TRUE(service.ok()) << service.status();

  const auto before = (*service)->snapshot();
  ASSERT_TRUE(fault::ArmFromSpec("shard.rebalance=unavailable:count=1").ok());
  const RebalanceOutcome aborted = (*service)->Rebalance();
  EXPECT_FALSE(aborted.rebalanced);
  EXPECT_FALSE(aborted.error.empty());
  EXPECT_EQ((*service)->Stats().rebalance_failures, 1u);
  EXPECT_EQ((*service)->Stats().rebalances, 0u);
  // The served plan never depended on the partition — still the same.
  EXPECT_TRUE(*(*service)->snapshot()->plan == *before->plan);

  // Fault spent: the next request succeeds.
  const RebalanceOutcome retried = (*service)->Rebalance();
  EXPECT_TRUE(retried.rebalanced) << retried.error;
  EXPECT_EQ((*service)->Stats().rebalances, 1u);
}

TEST_F(RebalanceServiceTest, MigrateFaultCountsFullRebuildsInStats) {
  ServiceOptions options;
  options.rebalance_shards = 2;
  auto service = PlanningService::Create(instance_, plan_, options);
  ASSERT_TRUE(service.ok()) << service.status();

  ASSERT_TRUE(fault::ArmFromSpec("shard.migrate=unavailable").ok());
  int applied = 0;
  for (const AtomicOp& op : MakeTrace(20, 55)) {
    if ((*service)->Apply(op).applied) ++applied;
  }
  ASSERT_GT(applied, 0);
  // Migrations degraded, ops kept applying, and the stats say so.
  EXPECT_GT((*service)->Stats().shard_full_rebuilds, 0u);
  EXPECT_EQ((*service)->Stats().ops_applied, static_cast<uint64_t>(applied));
}

TEST_F(RebalanceServiceTest, StatsStayZeroWithoutTracker) {
  auto service = PlanningService::Create(instance_, plan_);
  ASSERT_TRUE(service.ok()) << service.status();
  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.rebalance_shards, 0);
  EXPECT_EQ(stats.shard_skew, 0.0);
  EXPECT_EQ(stats.shard_boundary_users, 0u);
  EXPECT_EQ(stats.shard_migrations, 0u);
}

}  // namespace
}  // namespace gepc
