// Binary-level smoke test of the socket stack: starts `gepc_serve --listen`
// on an ephemeral port, points `gepc_bots` at it (mixed traffic, modest
// client count), and checks the load report — traffic flowed, the
// zero-committed-op-loss audit passed, and the bots' shutdown command took
// the server down cleanly.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "data/generator.h"
#include "data/io.h"

namespace gepc {
namespace {

std::string Tmp(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + info->name() + "_" + name;
}

/// Extracts the integer after `"key":`; -1 if absent.
int64_t FindIntField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class BotsSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_users = 60;
    config.num_events = 10;
    config.mean_xi = 1;
    config.mean_eta = 8;
    config.seed = 23;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    instance_path_ = Tmp("bots_smoke.gepc");
    ASSERT_TRUE(SaveInstanceToFile(*instance, instance_path_).ok());
  }

  std::string instance_path_;
};

TEST_F(BotsSmokeTest, BotsDriveServeAndAuditCommittedOps) {
  const std::string ready_path = Tmp("ready.jsonl");
  const std::string report_path = Tmp("report.json");

  // Serve in the background on an ephemeral port; its ready line (the only
  // stdout before shutdown) carries the bound port.
  const std::string serve_cmd = std::string(GEPC_SERVE_PATH) + " --in " +
                                instance_path_ +
                                " --listen 127.0.0.1:0 > " + ready_path +
                                " 2>/dev/null &";
  ASSERT_EQ(std::system(serve_cmd.c_str()), 0);

  // Poll for the ready line (the startup solve takes a moment).
  int port = -1;
  for (int attempt = 0; attempt < 200 && port <= 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string ready = ReadAll(ready_path);
    if (ready.find("\"ready\":true") != std::string::npos) {
      port = static_cast<int>(FindIntField(ready, "port"));
    }
  }
  ASSERT_GT(port, 0) << ReadAll(ready_path);

  // A short mixed closed-loop run; --shutdown stops the server afterwards.
  const std::string bots_cmd =
      std::string(GEPC_BOTS_PATH) + " --host 127.0.0.1 --port " +
      std::to_string(port) +
      " --clients 50 --duration-s 2 --mix op=0.5,read=0.4,stats=0.1"
      " --seed 3 --json " + report_path + " --shutdown > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(bots_cmd.c_str())), 0);

  const std::string report = ReadAll(report_path);
  ASSERT_NE(report.find("\"bench\":\"gepc_bots\""), std::string::npos)
      << report;
  EXPECT_EQ(FindIntField(report, "committed_op_loss"), 0) << report;
  EXPECT_GT(FindIntField(report, "ops_total"), 0) << report;
  EXPECT_GT(FindIntField(report, "ops_ok"), 0) << report;
  EXPECT_GT(FindIntField(report, "acked_applied"), 0) << report;
  EXPECT_GE(FindIntField(report, "server_ops_applied"),
            FindIntField(report, "acked_applied"))
      << report;
  EXPECT_EQ(FindIntField(report, "connected"), 50) << report;

  // --shutdown took the server down: its bye line lands on stdout.
  bool bye = false;
  for (int attempt = 0; attempt < 200 && !bye; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    bye = ReadAll(ready_path).find("\"shutdown\":true") != std::string::npos;
  }
  EXPECT_TRUE(bye) << ReadAll(ready_path);
}

TEST_F(BotsSmokeTest, PoissonOpenLoopAlsoCompletes) {
  const std::string ready_path = Tmp("ready.jsonl");
  const std::string report_path = Tmp("report.json");
  const std::string serve_cmd = std::string(GEPC_SERVE_PATH) + " --in " +
                                instance_path_ +
                                " --listen 127.0.0.1:0 --net-queue 64 > " +
                                ready_path + " 2>/dev/null &";
  ASSERT_EQ(std::system(serve_cmd.c_str()), 0);
  int port = -1;
  for (int attempt = 0; attempt < 200 && port <= 0; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string ready = ReadAll(ready_path);
    if (ready.find("\"ready\":true") != std::string::npos) {
      port = static_cast<int>(FindIntField(ready, "port"));
    }
  }
  ASSERT_GT(port, 0) << ReadAll(ready_path);

  const std::string bots_cmd =
      std::string(GEPC_BOTS_PATH) + " --host 127.0.0.1 --port " +
      std::to_string(port) +
      " --clients 20 --duration-s 2 --arrival poisson --rate 50"
      " --seed 5 --json " + report_path + " --shutdown > /dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(bots_cmd.c_str())), 0);
  const std::string report = ReadAll(report_path);
  EXPECT_EQ(FindIntField(report, "committed_op_loss"), 0) << report;
  EXPECT_GT(FindIntField(report, "ops_total"), 0) << report;
}

}  // namespace
}  // namespace gepc
