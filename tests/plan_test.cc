#include "core/plan.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(PlanTest, EmptyPlanHasNoAssignments) {
  Plan plan(3, 2);
  EXPECT_EQ(plan.num_users(), 3);
  EXPECT_EQ(plan.num_events(), 2);
  EXPECT_EQ(plan.TotalAssignments(), 0);
  EXPECT_FALSE(plan.Contains(0, 0));
}

TEST(PlanTest, AddAndContains) {
  Plan plan(2, 2);
  EXPECT_TRUE(plan.Add(0, 1));
  EXPECT_TRUE(plan.Contains(0, 1));
  EXPECT_FALSE(plan.Contains(1, 1));
  EXPECT_EQ(plan.attendance(1), 1);
}

TEST(PlanTest, AddIsIdempotent) {
  Plan plan(2, 2);
  EXPECT_TRUE(plan.Add(0, 0));
  EXPECT_FALSE(plan.Add(0, 0));
  EXPECT_EQ(plan.attendance(0), 1);
  EXPECT_EQ(plan.TotalAssignments(), 1);
}

TEST(PlanTest, RemoveUpdatesBothDirections) {
  Plan plan(2, 2);
  plan.Add(0, 0);
  plan.Add(1, 0);
  EXPECT_TRUE(plan.Remove(0, 0));
  EXPECT_FALSE(plan.Contains(0, 0));
  EXPECT_EQ(plan.attendance(0), 1);
  EXPECT_EQ(plan.attendees_of(0), (std::vector<UserId>{1}));
}

TEST(PlanTest, RemoveMissingIsNoop) {
  Plan plan(2, 2);
  EXPECT_FALSE(plan.Remove(0, 0));
}

TEST(PlanTest, PaperPlanAttendanceMatchesExample2) {
  const Plan plan = MakePaperPlan();
  EXPECT_EQ(plan.attendance(testing_support::kE1), 1);
  EXPECT_EQ(plan.attendance(testing_support::kE2), 3);
  EXPECT_EQ(plan.attendance(testing_support::kE3), 3);
  EXPECT_EQ(plan.attendance(testing_support::kE4), 2);
}

TEST(PlanTest, PaperPlanUtilityIs6Point3) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  EXPECT_NEAR(plan.TotalUtility(instance), 6.3, 1e-12);
}

TEST(PlanTest, TotalAssignments) {
  EXPECT_EQ(MakePaperPlan().TotalAssignments(), 9);
}

TEST(PlanTest, ClearEmptiesEverything) {
  Plan plan = MakePaperPlan();
  plan.Clear();
  EXPECT_EQ(plan.TotalAssignments(), 0);
  EXPECT_EQ(plan.attendance(0), 0);
}

TEST(PlanTest, EnsureEventCapacityGrows) {
  Plan plan(2, 2);
  plan.EnsureEventCapacity(5);
  EXPECT_EQ(plan.num_events(), 5);
  EXPECT_TRUE(plan.Add(0, 4));
  plan.EnsureEventCapacity(3);  // never shrinks
  EXPECT_EQ(plan.num_events(), 5);
}

TEST(PlanTest, EqualityIgnoresInsertionOrder) {
  Plan a(2, 3);
  a.Add(0, 1);
  a.Add(0, 2);
  Plan b(2, 3);
  b.Add(0, 2);
  b.Add(0, 1);
  EXPECT_TRUE(a == b);
  b.Add(1, 0);
  EXPECT_FALSE(a == b);
}

TEST(NegativeImpactTest, IdenticalPlansHaveZeroImpact) {
  const Plan plan = MakePaperPlan();
  EXPECT_EQ(NegativeImpact(plan, plan), 0);
}

TEST(NegativeImpactTest, CountsLostAttendancesOnly) {
  const Plan before = MakePaperPlan();
  Plan after = before;
  after.Remove(3, testing_support::kE4);
  after.Add(3, testing_support::kE2);  // gaining an event is not impact
  EXPECT_EQ(NegativeImpact(before, after), 1);
  // Example 3's scenario: exactly one lost event across all users.
}

TEST(NegativeImpactTest, MultipleLosses) {
  const Plan before = MakePaperPlan();
  Plan after(5, 4);  // everything lost
  EXPECT_EQ(NegativeImpact(before, after), before.TotalAssignments());
}

TEST(NegativeImpactTest, AsymmetricDefinition) {
  Plan before(1, 2);
  Plan after(1, 2);
  after.Add(0, 0);
  EXPECT_EQ(NegativeImpact(before, after), 0);  // additions are free
  EXPECT_EQ(NegativeImpact(after, before), 1);
}

}  // namespace
}  // namespace gepc
