// GCKP1 corruption fuzz: a checkpoint loader must never crash and never
// silently accept damaged bytes. Flips every single byte of a real
// checkpoint (header and both sections), truncates at every offset, and
// extends the file — each variant must either fail DecodeCheckpoint
// cleanly or (for flips that cancel out, which FNV-1a does not allow for
// single-byte flips) reproduce the identical state.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ckpt/checkpoint.h"
#include "service/recovery.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

namespace fs = std::filesystem;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

class CkptCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bytes = EncodeCheckpoint(MakePaperInstance(), MakePaperPlan(), 17);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    bytes_ = *bytes;
    header_len_ = bytes_.find('\n');
    ASSERT_NE(header_len_, std::string::npos);
    ++header_len_;  // include the newline
  }

  std::string bytes_;
  size_t header_len_ = 0;
};

TEST_F(CkptCorruptionTest, EveryHeaderByteFlipIsRejected) {
  for (size_t i = 0; i < header_len_; ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string damaged = bytes_;
      damaged[i] = static_cast<char>(damaged[i] ^ mask);
      auto decoded = DecodeCheckpoint(damaged);
      EXPECT_FALSE(decoded.ok())
          << "header byte " << i << " mask " << static_cast<int>(mask)
          << " accepted";
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
            << "header byte " << i;
      }
    }
  }
}

TEST_F(CkptCorruptionTest, EverySectionByteFlipIsRejected) {
  // Single-byte XOR changes the section's FNV-1a checksum, so every flip
  // in either section must be caught by the checksum gate (well before
  // any parser sees the damaged bytes).
  for (size_t i = header_len_; i < bytes_.size(); ++i) {
    std::string damaged = bytes_;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x40);
    auto decoded = DecodeCheckpoint(damaged);
    EXPECT_FALSE(decoded.ok()) << "section byte " << i << " accepted";
  }
}

TEST_F(CkptCorruptionTest, EveryTruncationIsRejected) {
  for (size_t keep = 0; keep < bytes_.size(); ++keep) {
    auto decoded = DecodeCheckpoint(bytes_.substr(0, keep));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << keep << " accepted";
  }
  // And the exact full file is accepted — the fuzz loop's sanity anchor.
  auto intact = DecodeCheckpoint(bytes_);
  ASSERT_TRUE(intact.ok()) << intact.status().ToString();
  EXPECT_EQ(intact->version, 17u);
}

TEST_F(CkptCorruptionTest, TrailingGarbageIsRejected) {
  auto decoded = DecodeCheckpoint(bytes_ + "x");
  EXPECT_FALSE(decoded.ok());
  decoded = DecodeCheckpoint(bytes_ + std::string(64, '\0'));
  EXPECT_FALSE(decoded.ok());
}

TEST_F(CkptCorruptionTest, LoadOfCorruptFileFailsAndRecoveryFallsBack) {
  // A torn checkpoint on disk must not be load-bearing: LoadCheckpoint
  // rejects it and RecoverServiceState falls back to an older intact
  // checkpoint, recovering the same final state.
  const std::string dir = ::testing::TempDir() + "/ckpt_corruption_dir";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  ASSERT_FALSE(ec);

  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  ASSERT_TRUE(WriteCheckpoint(dir, instance, plan, 1).ok());
  auto newest = WriteCheckpoint(dir, instance, plan, 2);
  ASSERT_TRUE(newest.ok());

  // Tear the newest checkpoint mid-section.
  std::string torn = bytes_.substr(0, bytes_.size() / 2);
  std::ofstream(*newest, std::ios::binary | std::ios::trunc) << torn;
  EXPECT_FALSE(LoadCheckpoint(*newest).ok());

  const std::string journal = dir + "/empty.gops";
  auto recovered = RecoverServiceState(instance, plan, journal, dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->used_checkpoint);
  EXPECT_EQ(recovered->checkpoint_version, 1u);
  EXPECT_EQ(recovered->checkpoints_skipped, 1);
  EXPECT_EQ(recovered->version, 1u);
}

}  // namespace
}  // namespace gepc
