// Property tests for the centroidal-Voronoi partitioner (src/shard/voronoi):
// Lloyd's iteration must be deterministic under a seed, assign every user to
// exactly one site, and descend monotonically in within-cell variance — the
// three properties the online rebalancer's correctness argument leans on.

#include "shard/voronoi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/generator.h"
#include "geom/point.h"
#include "spatial/reachability.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  // Tight budgets keep interactions local, the regime sharding targets.
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

TEST(VoronoiTest, NearestSiteBreaksTiesTowardLowerIndex) {
  const std::vector<Point> sites = {{-1.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}};
  // The origin is equidistant from sites 0 and 1; the duplicate site 2 ties
  // site 0 exactly. Strict `<` keeps the first winner.
  EXPECT_EQ(NearestSite(sites, {0.0, 0.0}), 0);
  EXPECT_EQ(NearestSite(sites, {0.9, 0.0}), 1);
  EXPECT_EQ(NearestSite(sites, {-2.0, 0.0}), 0);
}

TEST(VoronoiTest, DeterministicUnderSeed) {
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const Instance instance = MakeLocalInstance(120, 24, seed);
    const ReachabilityFilter filter(instance);
    const VoronoiResult a = LloydUserSites(instance, filter, 4);
    const VoronoiResult b = LloydUserSites(instance, filter, 4);
    // Bit-identical, not approximately equal: the incremental migration
    // path re-derives classifications from the sites, so any wobble here
    // would diverge tracker and rebuild.
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.user_site, b.user_site);
    EXPECT_EQ(a.cost_history, b.cost_history);
    ASSERT_EQ(a.sites.size(), b.sites.size());
    for (size_t s = 0; s < a.sites.size(); ++s) {
      EXPECT_EQ(a.sites[s].x, b.sites[s].x) << "site " << s;
      EXPECT_EQ(a.sites[s].y, b.sites[s].y) << "site " << s;
    }
  }
}

TEST(VoronoiTest, EveryUserAssignedToExactlyOneValidSite) {
  const Instance instance = MakeLocalInstance(150, 30, 5);
  const ReachabilityFilter filter(instance);
  for (const int k : {1, 2, 4, 7}) {
    const VoronoiResult result = LloydUserSites(instance, filter, k);
    ASSERT_EQ(result.sites.size(), static_cast<size_t>(k));
    ASSERT_EQ(result.user_site.size(),
              static_cast<size_t>(instance.num_users()));
    for (UserId i = 0; i < instance.num_users(); ++i) {
      const int site = result.user_site[static_cast<size_t>(i)];
      ASSERT_GE(site, 0) << "user " << i;
      ASSERT_LT(site, k) << "user " << i;
      // The assignment is exactly NearestSite of the final sites — the
      // same classifier the tracker uses between rebalances.
      EXPECT_EQ(site, NearestSite(result.sites,
                                  instance.user(i).location))
          << "user " << i;
    }
  }
}

TEST(VoronoiTest, CostHistoryIsMonotoneNonIncreasing) {
  for (const uint64_t seed : {7u, 13u, 29u}) {
    const Instance instance = MakeLocalInstance(180, 36, seed);
    const ReachabilityFilter filter(instance);
    const VoronoiResult result = LloydUserSites(instance, filter, 5);
    ASSERT_EQ(result.cost_history.size(),
              static_cast<size_t>(result.iterations) + 1);
    for (size_t t = 1; t < result.cost_history.size(); ++t) {
      EXPECT_LE(result.cost_history[t], result.cost_history[t - 1])
          << "seed " << seed << " pass " << t;
    }
  }
}

TEST(VoronoiTest, ConvergesBeforeTheIterationCapOnLocalInstances) {
  const Instance instance = MakeLocalInstance(140, 28, 17);
  const ReachabilityFilter filter(instance);
  VoronoiOptions options;
  options.max_iterations = 1000;
  const VoronoiResult result = LloydUserSites(instance, filter, 4, options);
  // The early-stop fires at the fixed point (an assignment pass that moves
  // nobody), far short of the cap.
  EXPECT_LT(result.iterations, options.max_iterations);
  // Re-running from the converged sites changes nothing.
  VoronoiOptions warm;
  warm.seed_sites = result.sites;
  warm.max_iterations = 5;
  const VoronoiResult again = LloydUserSites(instance, filter, 4, warm);
  EXPECT_EQ(again.user_site, result.user_site);
}

TEST(VoronoiTest, ZeroIterationsIsAPureAssignmentAgainstSeeds) {
  const Instance instance = MakeLocalInstance(90, 18, 3);
  const ReachabilityFilter filter(instance);
  VoronoiOptions options;
  options.max_iterations = 0;
  options.seed_sites = {{0.25, 0.25}, {0.75, 0.75}};
  const VoronoiResult result = LloydUserSites(instance, filter, 2, options);
  EXPECT_EQ(result.iterations, 0);
  ASSERT_EQ(result.cost_history.size(), 1u);
  // Sites are the seeds, untouched, and the assignment is NearestSite.
  ASSERT_EQ(result.sites.size(), 2u);
  EXPECT_EQ(result.sites[0].x, 0.25);
  EXPECT_EQ(result.sites[1].y, 0.75);
  for (UserId i = 0; i < instance.num_users(); ++i) {
    EXPECT_EQ(result.user_site[static_cast<size_t>(i)],
              NearestSite(options.seed_sites, instance.user(i).location));
  }
}

TEST(VoronoiTest, MismatchedSeedSitesFallBackToBisectionSeeds) {
  const Instance instance = MakeLocalInstance(100, 20, 9);
  const ReachabilityFilter filter(instance);
  VoronoiOptions wrong_size;
  wrong_size.seed_sites = {{0.5, 0.5}};  // one seed for three shards
  const VoronoiResult fallback =
      LloydUserSites(instance, filter, 3, wrong_size);
  const VoronoiResult reference = LloydUserSites(instance, filter, 3);
  EXPECT_EQ(fallback.user_site, reference.user_site);
  EXPECT_EQ(fallback.cost_history, reference.cost_history);
}

TEST(VoronoiTest, BisectionSeedsProduceOneSitePerShard) {
  const Instance instance = MakeLocalInstance(110, 22, 21);
  const ReachabilityFilter filter(instance);
  for (const int k : {1, 2, 4, 8}) {
    EXPECT_EQ(BisectionSeedSites(instance, filter, k).size(),
              static_cast<size_t>(k));
  }
}

TEST(VoronoiTest, PartitionCoversEveryEventOnceAndKeepsInteriorLocal) {
  const Instance instance = MakeLocalInstance(150, 40, 31);
  const ReachabilityFilter filter(instance);
  for (const int k : {2, 4, 7}) {
    VoronoiResult lloyd;
    const ShardPartition partition =
        PartitionInstanceVoronoi(instance, filter, k, {}, &lloyd);
    EXPECT_EQ(partition.num_shards, k);
    std::vector<int> seen(static_cast<size_t>(instance.num_events()), 0);
    for (int s = 0; s < k; ++s) {
      for (EventId j : partition.shard_events[static_cast<size_t>(s)]) {
        EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], s);
        ++seen[static_cast<size_t>(j)];
      }
    }
    for (EventId j = 0; j < instance.num_events(); ++j) {
      EXPECT_EQ(seen[static_cast<size_t>(j)], 1) << "event " << j;
      // Events classify by the same sites the users did.
      EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)],
                NearestSite(lloyd.sites, instance.event(j).location));
    }
    // Interior users reach only their home shard — the same contract
    // PartitionInstance honors, via the shared classification pass.
    for (UserId i = 0; i < instance.num_users(); ++i) {
      const int home = partition.user_shard[static_cast<size_t>(i)];
      if (home == kBoundaryUser) continue;
      for (EventId j : filter.AttendableEvents(i)) {
        EXPECT_EQ(partition.event_shard[static_cast<size_t>(j)], home)
            << "interior user " << i << " reaches foreign event " << j;
      }
    }
  }
}

}  // namespace
}  // namespace gepc
