#include "gepc/conflict_adjust.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;

TEST(ConflictAdjustTest, CleanPlanUntouched) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(0, copies.copies_of(kE1)[0]);
  plan.Assign(1, copies.copies_of(kE3)[0]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_EQ(stats.removed, 0);
  EXPECT_EQ(plan.UnassignedCopies(), copies.num_copies() - 2);
}

TEST(ConflictAdjustTest, RemovesLowestUtilityConflictingCopy) {
  // Give u1 both e1 (0.7) and e3 (0.9), which overlap: e1 must go.
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(0, copies.copies_of(kE1)[0]);
  plan.Assign(0, copies.copies_of(kE3)[0]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_EQ(stats.removed, 1);
  const auto& held = plan.copies_of_user[0];
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(copies.event_of(held[0]), kE3);
}

TEST(ConflictAdjustTest, EvictedCopyGoesToBestFeasibleUser) {
  // Example 4's mechanics: e1 dropped from u1 must bypass u2/u3 (their e3
  // conflicts) and u5 (budget) and land on u4.
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(0, copies.copies_of(kE1)[0]);
  plan.Assign(0, copies.copies_of(kE3)[0]);
  plan.Assign(1, copies.copies_of(kE3)[1]);
  plan.Assign(2, copies.copies_of(kE3)[2]);
  plan.Assign(4, copies.copies_of(kE4)[0]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_EQ(stats.removed, 1);
  EXPECT_EQ(stats.reassigned, 1);
  EXPECT_EQ(stats.orphaned, 0);
  EXPECT_EQ(plan.user_of_copy[copies.copies_of(kE1)[0]], 3);  // u4
}

TEST(ConflictAdjustTest, OrphansCopyNoOneCanTake) {
  // Zero out everyone's utility for e1 except u1's; u1 holds the conflict,
  // so the evicted e1 copy has nowhere to go.
  Instance instance = MakePaperInstance();
  for (int i = 1; i < 5; ++i) instance.set_utility(i, kE1, 0.0);
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(0, copies.copies_of(kE1)[0]);
  plan.Assign(0, copies.copies_of(kE3)[0]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_EQ(stats.removed, 1);
  EXPECT_EQ(stats.orphaned, 1);
  EXPECT_EQ(plan.user_of_copy[copies.copies_of(kE1)[0]], -1);
}

TEST(ConflictAdjustTest, ShedsOverBudgetCopies) {
  // u5 (budget 10) holding e1 + e4 is over budget even though the events
  // do not conflict; the cheaper-utility copy (e1, 0.3) must be shed.
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(4, copies.copies_of(kE1)[0]);
  plan.Assign(4, copies.copies_of(kE4)[0]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_GE(stats.removed, 1);
  const auto& held = plan.copies_of_user[4];
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(copies.event_of(held[0]), kE4);
  EXPECT_LE(CopyTourCost(instance, copies, 4, held), 10.0 + 1e-9);
}

TEST(ConflictAdjustTest, DuplicateCopiesOfSameEventSplitAcrossUsers) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  // Two copies of e3 both on u3 — they "conflict" by identity.
  plan.Assign(2, copies.copies_of(kE3)[0]);
  plan.Assign(2, copies.copies_of(kE3)[1]);
  const ConflictAdjustStats stats = AdjustConflicts(instance, copies, &plan);
  EXPECT_EQ(stats.removed, 1);
  EXPECT_EQ(plan.copies_of_user[2].size(), 1u);
  // The second copy must live elsewhere (u1 has the best remaining mu 0.9).
  const int other = plan.user_of_copy[copies.copies_of(kE3)[0]] == 2
                        ? copies.copies_of(kE3)[1]
                        : copies.copies_of(kE3)[0];
  EXPECT_NE(plan.user_of_copy[other], 2);
  EXPECT_NE(plan.user_of_copy[other], -1);
}

TEST(ConflictAdjustTest, ResultHasNoConflictsAndFitsBudgets) {
  // Stress: assign every copy to user 0 and let the adjuster untangle.
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  for (int c = 0; c < copies.num_copies(); ++c) plan.Assign(0, c);
  AdjustConflicts(instance, copies, &plan);
  for (int i = 0; i < 5; ++i) {
    const auto& held = plan.copies_of_user[static_cast<size_t>(i)];
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        EXPECT_FALSE(copies.CopiesConflict(instance, held[a], held[b]))
            << "user " << i;
      }
    }
    EXPECT_LE(CopyTourCost(instance, copies, i, held),
              instance.user(i).budget + 1e-9);
  }
}

}  // namespace
}  // namespace gepc
