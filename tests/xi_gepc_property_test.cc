// Parameterized invariants of the xi-GEPC step (Sec. III) for both
// algorithms across random instances:
//   I1. per-user copy plans are pairwise conflict-free (incl. same-event);
//   I2. per-user tours fit the travel budget;
//   I3. no event collects more than xi_j copies;
//   I4. assigned + unassigned copies == m^+;
//   I5. every assigned copy goes to a user with positive utility.

#include <gtest/gtest.h>

#include <tuple>

#include "data/generator.h"
#include "gepc/event_copies.h"
#include "gepc/gap_based.h"
#include "gepc/greedy.h"
#include "gepc/solver.h"

namespace gepc {
namespace {

using Param = std::tuple<GepcAlgorithm, uint64_t>;

class XiGepcInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(XiGepcInvariants, HoldOnRandomInstances) {
  const auto [algorithm, seed] = GetParam();
  GeneratorConfig config;
  config.num_users = 50;
  config.num_events = 12;
  config.mean_eta = 8.0;
  config.mean_xi = 3.0;
  config.conflict_ratio = 0.3;
  config.seed = seed * 1009;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());

  const CopyMap copies(*instance);
  Result<XiGepcResult> result = Status::Internal("unset");
  if (algorithm == GepcAlgorithm::kGapBased) {
    result = SolveXiGepcGapBased(*instance, copies);
    if (!result.ok() && result.status().code() == StatusCode::kInfeasible) {
      GTEST_SKIP() << "GAP reduction infeasible for this seed";
    }
  } else {
    result = SolveXiGepcGreedy(*instance, copies);
  }
  ASSERT_TRUE(result.ok()) << result.status();
  const CopyPlan& plan = result->copy_plan;

  int assigned = 0;
  for (int i = 0; i < instance->num_users(); ++i) {
    const auto& held = plan.copies_of_user[static_cast<size_t>(i)];
    assigned += static_cast<int>(held.size());
    // I1: pairwise conflict-free.
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        ASSERT_FALSE(copies.CopiesConflict(*instance, held[a], held[b]))
            << "user " << i;
      }
    }
    // I2: within budget.
    EXPECT_LE(CopyTourCost(*instance, copies, i, held),
              instance->user(i).budget + 1e-9)
        << "user " << i;
    // I5: positive utility for every assignment.
    for (int copy : held) {
      EXPECT_GT(instance->utility(i, copies.event_of(copy)), 0.0);
    }
  }

  // I3: collapse counts stay within xi.
  const Plan collapsed = CollapseToPlan(*instance, copies, plan);
  for (int j = 0; j < instance->num_events(); ++j) {
    EXPECT_LE(collapsed.attendance(j), instance->event(j).lower_bound)
        << "event " << j;
  }

  // I4: accounting.
  EXPECT_EQ(assigned + plan.UnassignedCopies(), copies.num_copies());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XiGepcInvariants,
    ::testing::Combine(::testing::Values(GepcAlgorithm::kGreedy,
                                         GepcAlgorithm::kGapBased),
                       ::testing::Range<uint64_t>(1, 11)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(GepcAlgorithmName(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace gepc
