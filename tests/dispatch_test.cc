// Tests for the shared JSONL command-dispatch layer (src/service/dispatch.h)
// that both gepc_serve front ends (stdio and socket) execute requests
// through: command classification/routing hints, the command handlers
// against a real PlanningService, protocol-error responses and request-id
// echoing.

#include "service/dispatch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/jsonl.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto service =
        PlanningService::Create(MakePaperInstance(), MakePaperPlan());
    ASSERT_TRUE(service.ok()) << service.status();
    service_ = *std::move(service);
    dispatcher_ =
        std::make_unique<CommandDispatcher>(service_.get(), DispatchDefaults{});
  }

  /// Dispatches and parses the response (all responses are flat unless they
  /// embed arrays; those are asserted by substring instead).
  JsonObject Roundtrip(const std::string& line, bool* shutdown = nullptr) {
    const DispatchOutcome outcome = dispatcher_->Dispatch(line);
    if (shutdown != nullptr) *shutdown = outcome.shutdown;
    auto parsed = ParseJsonObject(outcome.response);
    EXPECT_TRUE(parsed.ok()) << outcome.response;
    return parsed.ok() ? *parsed : JsonObject{};
  }

  std::unique_ptr<PlanningService> service_;
  std::unique_ptr<CommandDispatcher> dispatcher_;
};

TEST(ClassifyCommandTest, SplitsReadsFromWrites) {
  EXPECT_EQ(ClassifyCommand("query_user"), CommandKind::kRead);
  EXPECT_EQ(ClassifyCommand("query_event"), CommandKind::kRead);
  EXPECT_EQ(ClassifyCommand("stats"), CommandKind::kRead);
  EXPECT_EQ(ClassifyCommand("metrics"), CommandKind::kRead);
  EXPECT_EQ(ClassifyCommand("faults"), CommandKind::kRead);
  // What-if scheduling never touches replicated state: follower-safe read.
  EXPECT_EQ(ClassifyCommand("schedule"), CommandKind::kRead);
  EXPECT_EQ(ClassifyCommand("apply"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("rebuild"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("checkpoint"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("rebalance"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("save_plan"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("drain"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("shutdown"), CommandKind::kWrite);
  EXPECT_EQ(ClassifyCommand("bogus"), CommandKind::kUnknown);
  EXPECT_EQ(ClassifyCommand(""), CommandKind::kUnknown);
}

TEST(ExtractCmdHintTest, FindsTheCommandWithoutFullParsing) {
  EXPECT_EQ(ExtractCmdHint(R"({"cmd":"stats"})"), "stats");
  EXPECT_EQ(ExtractCmdHint(R"({"id":7,"cmd":"apply","op":"eta:1:2"})"),
            "apply");
  EXPECT_EQ(ExtractCmdHint(R"({"cmd" :  "query_user","user":3})"),
            "query_user");
  EXPECT_EQ(ExtractCmdHint(R"({"user":3})"), "");
  EXPECT_EQ(ExtractCmdHint("not json at all"), "");
  EXPECT_EQ(ExtractCmdHint(R"({"cmd":12})"), "");
}

TEST_F(DispatchTest, AppliesOpsAndQueries) {
  const JsonObject applied =
      Roundtrip(R"({"cmd":"apply","op":"budget:0:75.5"})");
  EXPECT_TRUE(applied.at("ok").bool_value);
  EXPECT_TRUE(applied.at("applied").bool_value);
  EXPECT_EQ(applied.at("seq").number_value, 1.0);

  const DispatchOutcome user = dispatcher_->Dispatch(
      R"({"cmd":"query_user","user":0})");
  EXPECT_NE(user.response.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(user.response.find("\"stops\":["), std::string::npos);

  const DispatchOutcome event =
      dispatcher_->Dispatch(R"({"cmd":"query_event","event":0})");
  EXPECT_NE(event.response.find("\"attendees\":["), std::string::npos);
}

TEST_F(DispatchTest, StatsReportInstanceSizeAndOpCounts) {
  Roundtrip(R"({"cmd":"apply","op":"budget:0:60"})");
  const JsonObject stats = Roundtrip(R"({"cmd":"stats"})");
  EXPECT_TRUE(stats.at("ok").bool_value);
  EXPECT_EQ(stats.at("users").number_value,
            MakePaperInstance().num_users());
  EXPECT_EQ(stats.at("events").number_value,
            MakePaperInstance().num_events());
  EXPECT_GE(stats.at("ops_applied").number_value, 1.0);
}

TEST_F(DispatchTest, ScheduleDraftsOverTheLiveSnapshot) {
  const DispatchOutcome outcome = dispatcher_->Dispatch(
      R"({"cmd":"schedule","drafts":2,"candidates":2,"seed":5})");
  EXPECT_NE(outcome.response.find("\"ok\":true"), std::string::npos)
      << outcome.response;
  EXPECT_NE(outcome.response.find("\"chosen\":["), std::string::npos);
  EXPECT_NE(outcome.response.find("\"oracle_calls\":"), std::string::npos);

  // Same request, same answer: the search is deterministic per seed.
  const DispatchOutcome again = dispatcher_->Dispatch(
      R"({"cmd":"schedule","drafts":2,"candidates":2,"seed":5})");
  EXPECT_EQ(outcome.response, again.response);

  // The snapshot was only read — the service still answers and its version
  // did not move.
  const JsonObject stats = Roundtrip(R"({"cmd":"stats"})");
  EXPECT_TRUE(stats.at("ok").bool_value);
  EXPECT_EQ(stats.at("ops_applied").number_value, 0.0);
}

TEST_F(DispatchTest, ScheduleWithAffinityReportsAffinityUtility) {
  // The chosen array embeds objects, which the flat test parser does not
  // handle — substring assertions, per the fixture note.
  const DispatchOutcome outcome = dispatcher_->Dispatch(
      R"({"cmd":"schedule","drafts":2,"candidates":2,"seed":5,"lambda":0.5})");
  EXPECT_NE(outcome.response.find("\"ok\":true"), std::string::npos)
      << outcome.response;
  EXPECT_NE(outcome.response.find("\"affinity_utility\":"),
            std::string::npos);
  EXPECT_NE(outcome.response.find("\"score\":"), std::string::npos);
}

TEST_F(DispatchTest, ScheduleBoundsItsInputs) {
  EXPECT_FALSE(Roundtrip(R"({"cmd":"schedule","drafts":9})")
                   .at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"schedule","drafts":0})")
                   .at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"schedule","candidates":64})")
                   .at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"schedule","lambda":-1})")
                   .at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"schedule","seed":"abc"})")
                   .at("ok").bool_value);
}

TEST_F(DispatchTest, RebalanceWithoutTrackerIsAnErrorResponse) {
  // The fixture's service has no tracker (rebalance_shards = 0): the
  // command must answer with a clean error, not a crash, and the service
  // must stay healthy.
  const JsonObject response = Roundtrip(R"({"cmd":"rebalance"})");
  EXPECT_FALSE(response.at("ok").bool_value);
  EXPECT_TRUE(Roundtrip(R"({"cmd":"stats"})").at("ok").bool_value);
}

TEST(DispatchRebalanceTest, RebalanceReportsTheRunAndStatsExposeTheShards) {
  ServiceOptions options;
  options.rebalance_shards = 2;
  auto service = PlanningService::Create(MakePaperInstance(), MakePaperPlan(),
                                         options);
  ASSERT_TRUE(service.ok()) << service.status();
  CommandDispatcher dispatcher(service->get(), DispatchDefaults{});

  const DispatchOutcome applied = dispatcher.Dispatch(
      R"({"cmd":"apply","op":"budget:0:75.5"})");
  EXPECT_NE(applied.response.find("\"applied\":true"), std::string::npos)
      << applied.response;

  const DispatchOutcome rebalanced =
      dispatcher.Dispatch(R"({"cmd":"rebalance"})");
  auto parsed = ParseJsonObject(rebalanced.response);
  ASSERT_TRUE(parsed.ok()) << rebalanced.response;
  EXPECT_TRUE(parsed->at("ok").bool_value) << rebalanced.response;
  EXPECT_TRUE(parsed->at("rebalanced").bool_value);
  EXPECT_EQ(parsed->at("seq").number_value, 1.0);
  EXPECT_GE(parsed->at("skew_after").number_value, 0.0);
  EXPECT_FALSE(rebalanced.shutdown);

  const DispatchOutcome stats = dispatcher.Dispatch(R"({"cmd":"stats"})");
  auto stats_parsed = ParseJsonObject(stats.response);
  ASSERT_TRUE(stats_parsed.ok()) << stats.response;
  EXPECT_EQ(stats_parsed->at("rebalance_shards").number_value, 2.0);
  EXPECT_EQ(stats_parsed->at("rebalances").number_value, 1.0);
}

TEST_F(DispatchTest, ErrorsAreResponsesNotCrashes) {
  EXPECT_FALSE(Roundtrip("this is not json").at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"op":"eta:1:2"})").at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"frobnicate"})").at("ok").bool_value);
  EXPECT_FALSE(Roundtrip(R"({"cmd":"apply"})").at("ok").bool_value);
  EXPECT_FALSE(
      Roundtrip(R"({"cmd":"apply","op":"eta:banana"})").at("ok").bool_value);
  EXPECT_FALSE(
      Roundtrip(R"({"cmd":"query_user","user":999})").at("ok").bool_value);
  // The service is still healthy afterwards.
  EXPECT_TRUE(Roundtrip(R"({"cmd":"stats"})").at("ok").bool_value);
}

TEST_F(DispatchTest, EchoesRequestIdsFirst) {
  const DispatchOutcome numeric =
      dispatcher_->Dispatch(R"({"id":42,"cmd":"stats"})");
  EXPECT_EQ(numeric.response.rfind("{\"id\":42,", 0), 0u) << numeric.response;
  const DispatchOutcome text =
      dispatcher_->Dispatch(R"({"id":"abc","cmd":"stats"})");
  EXPECT_EQ(text.response.rfind("{\"id\":\"abc\",", 0), 0u) << text.response;
  // Echoed even on errors, so pipelined clients can correlate failures.
  const DispatchOutcome bad =
      dispatcher_->Dispatch(R"({"id":7,"cmd":"nope"})");
  EXPECT_EQ(bad.response.rfind("{\"id\":7,", 0), 0u) << bad.response;
}

TEST_F(DispatchTest, ShutdownSetsTheFlagAndAcks) {
  bool shutdown = false;
  const JsonObject ack = Roundtrip(R"({"cmd":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(ack.at("ok").bool_value);
  EXPECT_TRUE(ack.at("shutdown").bool_value);
  // Reads and drain never set it.
  EXPECT_FALSE(dispatcher_->Dispatch(R"({"cmd":"stats"})").shutdown);
  EXPECT_FALSE(dispatcher_->Dispatch(R"({"cmd":"drain"})").shutdown);
}

TEST_F(DispatchTest, DispatchIsThreadSafe) {
  // Hammer the dispatcher from several threads; every response must be
  // well-formed and the service must stay consistent.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &bad] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string line =
            i % 2 == 0
                ? R"({"cmd":"apply","op":"mu:)" + std::to_string(t) + ":" +
                      std::to_string(i % 4) + R"(:50"})"
                : R"({"cmd":"query_user","user":)" + std::to_string(t) + "}";
        const DispatchOutcome outcome = dispatcher_->Dispatch(line);
        if (outcome.response.find("\"ok\":") == std::string::npos) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  const JsonObject stats = Roundtrip(R"({"cmd":"stats"})");
  EXPECT_EQ(stats.at("ops_submitted").number_value, kThreads * kPerThread / 2);
}

}  // namespace
}  // namespace gepc
