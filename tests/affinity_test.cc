#include "gepc/affinity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/feasibility.h"
#include "core/instance.h"
#include "core/plan.h"
#include "data/friendship.h"
#include "data/generator.h"
#include "gepc/local_search.h"
#include "gepc/solver.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

// ---------------------------------------------------------------- graph --

TEST(FriendshipGraphTest, AddEdgeIgnoresSelfLoopsAndDuplicates) {
  FriendshipGraph graph(4);
  EXPECT_TRUE(graph.AddEdge(0, 1));
  EXPECT_FALSE(graph.AddEdge(1, 0));  // same undirected edge
  EXPECT_FALSE(graph.AddEdge(2, 2));  // self loop
  EXPECT_TRUE(graph.AddEdge(1, 3));
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_TRUE(graph.AreFriends(0, 1));
  EXPECT_TRUE(graph.AreFriends(1, 0));
  EXPECT_FALSE(graph.AreFriends(0, 3));
  EXPECT_EQ(graph.degree(1), 2);
  EXPECT_EQ(graph.degree(2), 0);
}

TEST(FriendshipGraphTest, GenerationIsDeterministicPerSeed) {
  GeneratorConfig gc;
  gc.num_users = 60;
  gc.num_events = 4;
  gc.seed = 5;
  auto instance = GenerateInstance(gc);
  ASSERT_TRUE(instance.ok());
  FriendshipConfig fc;
  fc.mean_degree = 5.0;
  fc.seed = 11;
  const FriendshipGraph a = GenerateFriendshipGraph(instance->users(), fc);
  const FriendshipGraph b = GenerateFriendshipGraph(instance->users(), fc);
  ASSERT_EQ(a.num_users(), 60);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.friends_of(u), b.friends_of(u)) << "user " << u;
  }
  // The target mean degree is approximate but must be in the ballpark.
  const double mean =
      2.0 * static_cast<double>(a.num_edges()) / a.num_users();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 10.0);
}

TEST(FriendshipGraphTest, RelabeledPreservesEdgesUnderPermutation) {
  FriendshipGraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 4);
  graph.AddEdge(2, 3);
  const std::vector<UserId> perm = {3, 0, 4, 2, 1};  // old -> new
  const FriendshipGraph relabeled = graph.Relabeled(perm);
  EXPECT_EQ(relabeled.num_edges(), graph.num_edges());
  for (UserId a = 0; a < 5; ++a) {
    for (UserId b = 0; b < 5; ++b) {
      EXPECT_EQ(graph.AreFriends(a, b),
                relabeled.AreFriends(perm[static_cast<size_t>(a)],
                                     perm[static_cast<size_t>(b)]))
          << a << "," << b;
    }
  }
}

// ------------------------------------------------------------- counting --

/// 3 users, 2 events, friendships {0,1} and {1,2}.
struct TinyWorld {
  Instance instance;
  FriendshipGraph graph;

  TinyWorld() : graph(3) {
    std::vector<User> users(3);
    for (int i = 0; i < 3; ++i) {
      users[static_cast<size_t>(i)].location = {static_cast<double>(i), 0.0};
      users[static_cast<size_t>(i)].budget = 100.0;
    }
    std::vector<Event> events(2);
    events[0].location = {0.0, 1.0};
    events[0].upper_bound = 3;
    events[0].time = {60, 120};
    events[1].location = {0.0, 2.0};
    events[1].upper_bound = 3;
    events[1].time = {240, 300};
    instance = Instance(std::move(users), std::move(events));
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 2; ++j) instance.set_utility(i, j, 1.0 + i + j);
    }
    graph.AddEdge(0, 1);
    graph.AddEdge(1, 2);
  }
};

TEST(AffinityTest, FriendsAttendingCountsCoAttendees) {
  TinyWorld w;
  Plan plan(3, 2);
  plan.Add(0, 0);
  plan.Add(1, 0);
  plan.Add(2, 0);
  EXPECT_EQ(FriendsAttending(w.graph, plan, 0, 0), 1);  // friend 1
  EXPECT_EQ(FriendsAttending(w.graph, plan, 1, 0), 2);  // friends 0 and 2
  EXPECT_EQ(FriendsAttending(w.graph, plan, 2, 0), 1);
  EXPECT_EQ(FriendsAttending(w.graph, plan, 0, 1), 0);  // nobody at event 1
  // Each co-attending friend pair counts twice: pairs {0,1} and {1,2}.
  EXPECT_EQ(AffinityPairs(&w.graph, plan), 4);
  EXPECT_EQ(AffinityPairs(nullptr, plan), 0);
}

TEST(AffinityTest, UtilityIsTotalPlusLambdaPairs) {
  TinyWorld w;
  Plan plan(3, 2);
  plan.Add(0, 0);
  plan.Add(1, 0);
  AffinityParams affinity;
  affinity.graph = &w.graph;
  affinity.lambda = 0.5;
  const double total = plan.TotalUtility(w.instance);
  EXPECT_DOUBLE_EQ(AffinityUtility(w.instance, plan, affinity),
                   total + 0.5 * 2);  // one pair, counted twice
  AffinityParams unarmed;
  EXPECT_DOUBLE_EQ(AffinityUtility(w.instance, plan, unarmed), total);
  affinity.lambda = 0.0;  // graph without weight is also unarmed
  EXPECT_FALSE(affinity.Armed());
  EXPECT_DOUBLE_EQ(AffinityUtility(w.instance, plan, affinity), total);
}

TEST(AffinityTest, DeltasMatchRecomputedUtility) {
  GeneratorConfig gc;
  gc.num_users = 30;
  gc.num_events = 6;
  gc.seed = 9;
  auto instance = GenerateInstance(gc);
  ASSERT_TRUE(instance.ok());
  FriendshipConfig fc;
  fc.seed = 3;
  const FriendshipGraph graph =
      GenerateFriendshipGraph(instance->users(), fc);
  AffinityParams affinity;
  affinity.graph = &graph;
  affinity.lambda = 0.7;

  auto solved = SolveGepc(*instance);
  ASSERT_TRUE(solved.ok());
  Plan plan = solved->plan;
  const double before = AffinityUtility(*instance, plan, affinity);
  Rng rng(17);
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const UserId u = static_cast<UserId>(rng.UniformUint64(30));
    const EventId j = static_cast<EventId>(rng.UniformUint64(6));
    if (plan.Contains(u, j)) {
      const double delta = AffinityRemoveDelta(*instance, plan, affinity,
                                               u, j);
      plan.Remove(u, j);
      EXPECT_NEAR(AffinityUtility(*instance, plan, affinity), before + delta,
                  1e-9);
      plan.Add(u, j);  // restore
    } else {
      const double delta = AffinityAddDelta(*instance, plan, affinity, u, j);
      plan.Add(u, j);
      EXPECT_NEAR(AffinityUtility(*instance, plan, affinity), before + delta,
                  1e-9);
      plan.Remove(u, j);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 50);
}

// ------------------------------------------------------------- refining --

GepcOptions RefineOptions() {
  GepcOptions options;
  options.refine_with_local_search = true;
  return options;
}

TEST(AffinityRefineTest, UnarmedAffinityIsByteIdenticalToPlainRefine) {
  GeneratorConfig gc;
  gc.num_users = 50;
  gc.num_events = 10;
  gc.seed = 21;
  auto instance = GenerateInstance(gc);
  ASSERT_TRUE(instance.ok());
  FriendshipConfig fc;
  const FriendshipGraph graph =
      GenerateFriendshipGraph(instance->users(), fc);

  auto plain = SolveGepc(*instance, RefineOptions());
  GepcOptions zero = RefineOptions();
  zero.local_search.affinity.graph = &graph;
  zero.local_search.affinity.lambda = 0.0;  // graph present but unarmed
  auto armed_zero = SolveGepc(*instance, zero);
  ASSERT_TRUE(plain.ok() && armed_zero.ok());
  EXPECT_EQ(plain->total_utility, armed_zero->total_utility);  // bit-exact
  EXPECT_TRUE(plain->plan == armed_zero->plan);
  EXPECT_EQ(armed_zero->affinity_utility, armed_zero->total_utility);
}

/// The PR's headline acceptance: with lambda > 0 the affinity-aware
/// refiner must measurably improve affinity utility over the greedy seed
/// plan, while staying feasible.
TEST(AffinityRefineTest, ArmedRefineImprovesAffinityUtilityOverGreedySeed) {
  double total_gain = 0.0;
  for (const uint64_t seed : {4u, 8u, 15u}) {
    GeneratorConfig gc;
    gc.num_users = 60;
    gc.num_events = 10;
    gc.seed = seed;
    auto instance = GenerateInstance(gc);
    ASSERT_TRUE(instance.ok());
    FriendshipConfig fc;
    fc.mean_degree = 6.0;
    fc.seed = seed + 1;
    const FriendshipGraph graph =
        GenerateFriendshipGraph(instance->users(), fc);
    AffinityParams affinity;
    affinity.graph = &graph;
    affinity.lambda = 0.5;

    auto greedy = SolveGepc(*instance);  // no refinement: the seed plan
    ASSERT_TRUE(greedy.ok());
    const double seed_utility =
        AffinityUtility(*instance, greedy->plan, affinity);

    Plan refined = greedy->plan;
    LocalSearchOptions ls;
    ls.affinity = affinity;
    auto stats = RefinePlan(*instance, &refined, ls);
    ASSERT_TRUE(stats.ok()) << stats.status();
    const double refined_utility =
        AffinityUtility(*instance, refined, affinity);

    // Hill climbing never regresses; constraints 1-3 hold, and no event
    // drops below a lower bound the seed plan already met (the seed itself
    // is best-effort on xi, so full lower-bound validation may fail there).
    EXPECT_GE(refined_utility, seed_utility - 1e-9) << "seed " << seed;
    ValidationOptions check;
    check.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(*instance, refined, check).ok())
        << "seed " << seed;
    for (int j = 0; j < instance->num_events(); ++j) {
      const int xi = instance->event(j).lower_bound;
      if (greedy->plan.attendance(j) >= xi) {
        EXPECT_GE(refined.attendance(j), xi) << "seed " << seed
                                             << " event " << j;
      }
    }
    total_gain += refined_utility - seed_utility;
  }
  EXPECT_GT(total_gain, 0.0);  // measurably better across the seeds
}

TEST(AffinityRefineTest, RejectsGraphSmallerThanInstance) {
  GeneratorConfig gc;
  gc.num_users = 20;
  gc.num_events = 4;
  gc.seed = 2;
  auto instance = GenerateInstance(gc);
  ASSERT_TRUE(instance.ok());
  FriendshipGraph small(5);
  LocalSearchOptions ls;
  ls.affinity.graph = &small;
  ls.affinity.lambda = 1.0;
  auto solved = SolveGepc(*instance);
  ASSERT_TRUE(solved.ok());
  Plan plan = solved->plan;
  EXPECT_EQ(RefinePlan(*instance, &plan, ls).status().code(),
            StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- sharded --

/// Acceptance: the sharded path (shard-local solves strip affinity, one
/// global affinity-aware refine after the merge) must retain >= 95% of the
/// sequential affinity utility.
TEST(AffinityShardedTest, ShardedRetains95PercentOfSequentialUtility) {
  GeneratorConfig gc;
  gc.num_users = 120;
  gc.num_events = 12;
  gc.seed = 33;
  auto instance = GenerateInstance(gc);
  ASSERT_TRUE(instance.ok());
  FriendshipConfig fc;
  fc.mean_degree = 6.0;
  fc.seed = 34;
  const FriendshipGraph graph =
      GenerateFriendshipGraph(instance->users(), fc);

  GepcOptions sequential = RefineOptions();
  sequential.local_search.affinity.graph = &graph;
  sequential.local_search.affinity.lambda = 0.5;
  auto seq = SolveGepc(*instance, sequential);
  ASSERT_TRUE(seq.ok());
  ASSERT_GT(seq->affinity_utility, 0.0);

  ShardedGepcOptions sharded;
  sharded.shards = 4;
  sharded.threads = 2;
  sharded.gepc = sequential;
  auto shd = SolveSharded(*instance, sharded);
  ASSERT_TRUE(shd.ok());
  ValidationOptions check;
  check.check_lower_bounds = false;  // both paths are best-effort on xi
  EXPECT_TRUE(ValidatePlan(*instance, shd->plan, check).ok());
  EXPECT_GE(shd->affinity_utility, 0.95 * seq->affinity_utility);
}

// ---------------------------------------------------------- metamorphic --

/// Integer-coordinate instance so rotation/translation are FP-exact.
Instance IntegerCityInstance(uint64_t seed) {
  Rng rng(seed);
  std::vector<User> users(24);
  for (auto& user : users) {
    user.location = {static_cast<double>(rng.UniformUint64(40)),
                     static_cast<double>(rng.UniformUint64(40))};
    user.budget = static_cast<double>(60 + rng.UniformUint64(80));
  }
  std::vector<Event> events(6);
  for (size_t j = 0; j < events.size(); ++j) {
    events[j].location = {static_cast<double>(rng.UniformUint64(40)),
                          static_cast<double>(rng.UniformUint64(40))};
    events[j].lower_bound = 0;
    events[j].upper_bound = 8;
    const Minutes start = static_cast<Minutes>(480 + 90 * j);
    events[j].time = {start, start + 60};
  }
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < instance.num_users(); ++i) {
    for (int j = 0; j < instance.num_events(); ++j) {
      if (rng.Bernoulli(0.5)) {
        instance.set_utility(i, j, rng.UniformDouble(0.1, 1.0));
      }
    }
  }
  return instance;
}

/// Rotate (x, y) -> (-y, x), then translate by integer (tx, ty). Both maps
/// are distance-preserving and, on integer coordinates, exact in floating
/// point — so every tour length, budget check, and greedy tie-break is
/// bitwise unchanged.
Instance TransformedCity(const Instance& original, double tx, double ty) {
  std::vector<User> users = original.users();
  for (auto& user : users) {
    user.location = {-user.location.y + tx, user.location.x + ty};
  }
  std::vector<Event> events = original.events();
  for (auto& event : events) {
    event.location = {-event.location.y + tx, event.location.x + ty};
  }
  Instance transformed(std::move(users), std::move(events));
  for (int i = 0; i < original.num_users(); ++i) {
    for (int j = 0; j < original.num_events(); ++j) {
      transformed.set_utility(i, j, original.utility(i, j));
    }
  }
  return transformed;
}

TEST(AffinityMetamorphicTest, RotationAndTranslationAreExactlyInvariant) {
  const Instance original = IntegerCityInstance(71);
  const Instance moved = TransformedCity(original, 17.0, 29.0);
  FriendshipConfig fc;
  fc.mean_degree = 5.0;
  fc.seed = 72;
  // Build the graph once from the ORIGINAL locations: the friendship draw
  // itself uses distances, so regenerating from moved coordinates is only
  // guaranteed to agree because the transform is exact — using one graph
  // for both solves keeps the test about the solver, not the generator.
  const FriendshipGraph graph =
      GenerateFriendshipGraph(original.users(), fc);

  GepcOptions options = RefineOptions();
  options.local_search.affinity.graph = &graph;
  options.local_search.affinity.lambda = 0.5;
  auto a = SolveGepc(original, options);
  auto b = SolveGepc(moved, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->total_utility, b->total_utility);        // bitwise
  EXPECT_EQ(a->affinity_utility, b->affinity_utility);  // bitwise
  EXPECT_TRUE(a->plan == b->plan);
}

TEST(AffinityMetamorphicTest, UserPermutationPreservesAffinityAccounting) {
  const Instance original = IntegerCityInstance(73);
  FriendshipConfig fc;
  fc.seed = 74;
  const FriendshipGraph graph =
      GenerateFriendshipGraph(original.users(), fc);
  auto solved = SolveGepc(original);
  ASSERT_TRUE(solved.ok());
  const Plan& plan = solved->plan;

  // perm[old] = new id; a fixed non-trivial permutation.
  std::vector<UserId> perm(static_cast<size_t>(original.num_users()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng shuffle_rng(75);
  shuffle_rng.Shuffle(&perm);
  const FriendshipGraph relabeled = graph.Relabeled(perm);

  std::vector<User> users(original.users().size());
  for (size_t old = 0; old < users.size(); ++old) {
    users[static_cast<size_t>(perm[old])] = original.users()[old];
  }
  std::vector<Event> events = original.events();
  Instance permuted(std::move(users), std::move(events));
  Plan permuted_plan(original.num_users(), original.num_events());
  for (UserId old = 0; old < original.num_users(); ++old) {
    const UserId now = perm[static_cast<size_t>(old)];
    for (int j = 0; j < original.num_events(); ++j) {
      permuted.set_utility(now, j, original.utility(old, j));
      if (plan.Contains(old, j)) permuted_plan.Add(now, j);
    }
  }

  AffinityParams affinity_a;
  affinity_a.graph = &graph;
  affinity_a.lambda = 0.5;
  AffinityParams affinity_b;
  affinity_b.graph = &relabeled;
  affinity_b.lambda = 0.5;

  // Pair counts are integers — exactly invariant under relabelling.
  EXPECT_EQ(AffinityPairs(&graph, plan),
            AffinityPairs(&relabeled, permuted_plan));
  // Per-(user, event) counts and deltas are scalar expressions over the
  // same values, so they are bitwise invariant too.
  for (UserId old = 0; old < original.num_users(); ++old) {
    const UserId now = perm[static_cast<size_t>(old)];
    for (int j = 0; j < original.num_events(); ++j) {
      EXPECT_EQ(FriendsAttending(graph, plan, old, j),
                FriendsAttending(relabeled, permuted_plan, now, j));
      if (!plan.Contains(old, j)) {
        EXPECT_EQ(AffinityAddDelta(original, plan, affinity_a, old, j),
                  AffinityAddDelta(permuted, permuted_plan, affinity_b, now,
                                   j));
      } else {
        EXPECT_EQ(AffinityRemoveDelta(original, plan, affinity_a, old, j),
                  AffinityRemoveDelta(permuted, permuted_plan, affinity_b,
                                      now, j));
      }
    }
  }
}

}  // namespace
}  // namespace gepc
