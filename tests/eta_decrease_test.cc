#include "iep/eta_decrease.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(EtaDecreaseTest, NoOpWhenAttendanceFits) {
  // Example 6 part 1: eta_4 5 -> 4 changes nothing (only 2 attendees).
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 1, 4).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyEtaDecrease(instance, before, kE4);
  EXPECT_EQ(result.negative_impact, 0);
  EXPECT_TRUE(result.plan == before);
}

TEST(EtaDecreaseTest, PaperExample6) {
  // eta_4 5 -> 1: u4 (mu 0.6 < u5's 0.7) loses e4 and picks up e2; dif 1.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 1, 1).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyEtaDecrease(instance, before, kE4);
  EXPECT_EQ(result.negative_impact, 1);
  EXPECT_EQ(NegativeImpact(before, result.plan), 1);
  EXPECT_FALSE(result.plan.Contains(3, kE4));
  EXPECT_TRUE(result.plan.Contains(4, kE4));  // higher-utility user kept
  EXPECT_TRUE(result.plan.Contains(3, kE2));  // re-offer found e2
  EXPECT_EQ(result.added_by_topup, 1);
  EXPECT_TRUE(ValidatePlan(instance, result.plan).ok());
}

TEST(EtaDecreaseTest, RemovesLowestUtilityAttendeesFirst) {
  // e3 has u2 (0.8), u3 (0.9), u4 (0.8) in the paper plan... make the
  // ordering unambiguous, then cap eta at 1.
  Instance instance = MakePaperInstance();
  instance.set_utility(1, kE3, 0.5);   // u2 now clearly lowest
  instance.set_utility(3, kE3, 0.75);  // u4 middle
  ASSERT_TRUE(instance.set_event_bounds(kE3, 0, 1).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyEtaDecrease(instance, before, kE3);
  EXPECT_EQ(result.negative_impact, 2);
  EXPECT_TRUE(result.plan.Contains(2, kE3));   // u3 (0.9) stays
  EXPECT_FALSE(result.plan.Contains(1, kE3));
  EXPECT_FALSE(result.plan.Contains(3, kE3));
}

TEST(EtaDecreaseTest, DifEqualsAttendanceMinusNewEta) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE2, 0, 1).ok());
  const Plan before = MakePaperPlan();  // e2 has 3 attendees
  const IepResult result = ApplyEtaDecrease(instance, before, kE2);
  EXPECT_EQ(result.negative_impact, 2);
}

TEST(EtaDecreaseTest, UtilityAccountingIsConsistent) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 1, 1).ok());
  const IepResult result = ApplyEtaDecrease(instance, MakePaperPlan(), kE4);
  EXPECT_NEAR(result.total_utility, result.plan.TotalUtility(instance),
              1e-12);
}

TEST(EtaDecreaseTest, ResultSatisfiesUserConstraints) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE3, 0, 1).ok());
  const IepResult result = ApplyEtaDecrease(instance, MakePaperPlan(), kE3);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result.plan, options).ok());
}

TEST(EtaDecreaseTest, EtaZeroEvictsEveryone) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE2, 0, 0).ok());
  const Plan before = MakePaperPlan();
  const IepResult result = ApplyEtaDecrease(instance, before, kE2);
  EXPECT_EQ(result.plan.attendance(kE2), 0);
  EXPECT_EQ(result.negative_impact, 3);
}

}  // namespace
}  // namespace gepc
