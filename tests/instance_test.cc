#include "core/instance.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(InstanceTest, PaperInstanceDimensions) {
  const Instance instance = MakePaperInstance();
  EXPECT_EQ(instance.num_users(), 5);
  EXPECT_EQ(instance.num_events(), 4);
}

TEST(InstanceTest, PaperInstanceValidates) {
  EXPECT_TRUE(MakePaperInstance().Validate().ok());
}

TEST(InstanceTest, UtilityMatrixRoundTrips) {
  Instance instance = MakePaperInstance();
  EXPECT_DOUBLE_EQ(instance.utility(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(instance.utility(4, 3), 0.7);
  instance.set_utility(2, 1, 0.25);
  EXPECT_DOUBLE_EQ(instance.utility(2, 1), 0.25);
}

TEST(InstanceTest, DistancesMatchGeometry) {
  const Instance instance = MakePaperInstance();
  EXPECT_NEAR(instance.UserEventDistance(0, 0), std::sqrt(17.0), 1e-12);
  EXPECT_NEAR(instance.EventEventDistance(0, 1), std::sqrt(41.0), 1e-12);
}

TEST(InstanceTest, ConflictsMatchPaperExample) {
  const Instance instance = MakePaperInstance();
  EXPECT_TRUE(instance.EventsConflict(0, 2));   // e1 / e3 overlap
  EXPECT_TRUE(instance.EventsConflict(1, 3));   // e2 / e4 touch
  EXPECT_FALSE(instance.EventsConflict(0, 1));
  EXPECT_FALSE(instance.EventsConflict(2, 3));
}

TEST(InstanceTest, SetEventTimeInvalidatesConflictCache) {
  Instance instance = MakePaperInstance();
  EXPECT_FALSE(instance.EventsConflict(0, 1));
  // Move e1 on top of e2.
  ASSERT_TRUE(instance.set_event_time(0, {16 * 60, 17 * 60}).ok());
  EXPECT_TRUE(instance.EventsConflict(0, 1));
  EXPECT_FALSE(instance.EventsConflict(0, 2));
}

TEST(InstanceTest, SetEventTimeRejectsEmptyInterval) {
  Instance instance = MakePaperInstance();
  EXPECT_EQ(instance.set_event_time(0, {100, 100}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(instance.set_event_time(99, {0, 10}).code(),
            StatusCode::kOutOfRange);
}

TEST(InstanceTest, SetEventBoundsValidation) {
  Instance instance = MakePaperInstance();
  EXPECT_TRUE(instance.set_event_bounds(0, 2, 3).ok());
  EXPECT_EQ(instance.event(0).lower_bound, 2);
  EXPECT_EQ(instance.set_event_bounds(0, 4, 3).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(instance.set_event_bounds(0, -1, 3).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(instance.set_event_bounds(-1, 0, 1).code(),
            StatusCode::kOutOfRange);
}

TEST(InstanceTest, SetUserBudget) {
  Instance instance = MakePaperInstance();
  instance.set_user_budget(0, 99.0);
  EXPECT_DOUBLE_EQ(instance.user(0).budget, 99.0);
}

TEST(InstanceTest, AddEventGrowsMatrixAndPreservesUtilities) {
  Instance instance = MakePaperInstance();
  Event extra;
  extra.location = {0, 0};
  extra.lower_bound = 0;
  extra.upper_bound = 2;
  extra.time = {21 * 60, 22 * 60};
  const EventId id = instance.AddEvent(extra, {0.1, 0.2, 0.3, 0.4, 0.5});
  EXPECT_EQ(id, 4);
  EXPECT_EQ(instance.num_events(), 5);
  EXPECT_DOUBLE_EQ(instance.utility(0, 4), 0.1);
  EXPECT_DOUBLE_EQ(instance.utility(4, 4), 0.5);
  // Old utilities untouched.
  EXPECT_DOUBLE_EQ(instance.utility(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(instance.utility(4, 3), 0.7);
  // New event participates in the conflict relation.
  EXPECT_FALSE(instance.EventsConflict(4, 3));
}

TEST(InstanceTest, ValidateRejectsNegativeBudget) {
  Instance instance({{{0, 0}, -1.0}}, {{{0, 0}, 0, 1, {0, 10}}});
  EXPECT_EQ(instance.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, ValidateRejectsBadEventBounds) {
  Instance instance({{{0, 0}, 1.0}}, {{{0, 0}, 3, 1, {0, 10}}});
  EXPECT_EQ(instance.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, ValidateRejectsLowerBoundAboveUserCount) {
  Instance instance({{{0, 0}, 1.0}}, {{{0, 0}, 5, 9, {0, 10}}});
  EXPECT_EQ(instance.Validate().code(), StatusCode::kInfeasible);
}

TEST(InstanceTest, ValidateRejectsNegativeUtility) {
  Instance instance({{{0, 0}, 1.0}}, {{{0, 0}, 0, 1, {0, 10}}});
  instance.set_utility(0, 0, -0.5);
  EXPECT_EQ(instance.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, TotalLowerBoundSumsXi) {
  EXPECT_EQ(MakePaperInstance().TotalLowerBound(), 1 + 2 + 3 + 1);
}

TEST(InstanceTest, CopyIsIndependent) {
  Instance a = MakePaperInstance();
  Instance b = a;
  b.set_utility(0, 0, 0.0);
  ASSERT_TRUE(b.set_event_time(0, {1, 2}).ok());
  EXPECT_DOUBLE_EQ(a.utility(0, 0), 0.7);
  EXPECT_EQ(a.event(0).time.start, 13 * 60);
  EXPECT_TRUE(a.EventsConflict(0, 2));
  EXPECT_FALSE(b.EventsConflict(0, 2));
}

}  // namespace
}  // namespace gepc
