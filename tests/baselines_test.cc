#include "gepc/baselines.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(GepBaselineTest, PlanSatisfiesUserSideConstraints) {
  const Instance instance = MakePaperInstance();
  auto result = SolveGepNoLowerBounds(instance);
  ASSERT_TRUE(result.ok());
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, result->plan, options).ok());
}

TEST(GepBaselineTest, IgnoresLowerBounds) {
  // Crank e3's xi to 4 while making it unattractive: a GEP planner that
  // only chases utility will leave it under-subscribed.
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(testing_support::kE3, 4, 4).ok());
  for (int i = 0; i < 5; ++i) {
    instance.set_utility(i, testing_support::kE3, 0.01);
  }
  auto gep = SolveGepNoLowerBounds(instance);
  ASSERT_TRUE(gep.ok());
  EXPECT_GE(gep->events_below_lower_bound, 1);
  EXPECT_LT(gep->effective_utility, gep->total_utility);
}

TEST(GepBaselineTest, EffectiveUtilityNeverExceedsTotal) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.mean_eta = 6.0;
    config.mean_xi = 3.0;
    config.seed = seed;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto gep = SolveGepNoLowerBounds(*instance);
    ASSERT_TRUE(gep.ok());
    EXPECT_LE(gep->effective_utility, gep->total_utility + 1e-9);
  }
}

TEST(GepBaselineTest, GepcLeavesFewerEventsBelowXi) {
  // The paper's motivating claim (Sec. I): a planner that ignores
  // minimum-participant requirements leaves events under-subscribed (and
  // thus cancelled); GEPC plans them full. Compare shortfall counts over
  // several generated instances.
  int gepc_short = 0;
  int gep_short = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 60;
    config.num_events = 14;
    config.mean_eta = 8.0;
    config.mean_xi = 4.0;
    config.seed = seed * 17;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto gepc = SolveGepc(*instance, GepcOptions{});
    auto gep = SolveGepNoLowerBounds(*instance);
    ASSERT_TRUE(gepc.ok() && gep.ok());
    gepc_short += gepc->events_below_lower_bound;
    gep_short += gep->events_below_lower_bound;
  }
  EXPECT_LE(gepc_short, gep_short);
  EXPECT_GT(gep_short, 0);  // the baseline really does strand events
}

TEST(GepBaselineTest, OnlyGepcCanHoldAllOrNothingEvents) {
  // Crafted binding scenario: a "group discount" event e0 needs all four
  // users (xi = 4) but each user individually prefers a solo event that
  // overlaps e0. Chasing utility (GEP) strands e0 — the event the
  // organizer committed to simply cannot be held — while GEPC produces
  // the only plan satisfying all four constraints of Definition 1.
  std::vector<User> users(4, User{{0.0, 0.0}, 100.0});
  std::vector<Event> events;
  events.push_back(Event{{1.0, 0.0}, 4, 4, {0, 60}});  // e0: all or nothing
  for (int k = 0; k < 4; ++k) {
    events.push_back(Event{{0.0, 1.0}, 0, 1, {30, 90}});  // overlaps e0
  }
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < 4; ++i) {
    instance.set_utility(i, 0, 0.6);
    instance.set_utility(i, 1 + i, 0.9);  // the tempting solo event
  }
  auto gep = SolveGepNoLowerBounds(instance);
  auto gepc = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(gep.ok() && gepc.ok());
  EXPECT_EQ(gep->events_below_lower_bound, 1);
  EXPECT_NEAR(gep->effective_utility, 4 * 0.9, 1e-9);   // solos only
  EXPECT_EQ(gepc->events_below_lower_bound, 0);
  EXPECT_NEAR(EffectiveUtility(instance, gepc->plan), 4 * 0.6, 1e-9);
  // Nominal utility favors GEP, but e0's organizer constraint makes the
  // GEP plan infeasible as a GEPC plan at all:
  EXPECT_EQ(ValidatePlan(instance, gep->plan).code(),
            StatusCode::kInfeasible);
  EXPECT_TRUE(ValidatePlan(instance, gepc->plan).ok());
}

TEST(RandomBaselineTest, FeasibleAndDeterministicPerSeed) {
  const Instance instance = MakePaperInstance();
  auto a = SolveRandomBaseline(instance, 7);
  auto b = SolveRandomBaseline(instance, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->plan == b->plan);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, a->plan, options).ok());
}

TEST(RandomBaselineTest, UsuallyWorseThanGreedyUtility) {
  double random_total = 0.0;
  double greedy_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 50;
    config.num_events = 12;
    config.mean_eta = 6.0;
    config.mean_xi = 2.0;
    config.seed = seed * 23;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    auto random = SolveRandomBaseline(*instance, seed);
    auto greedy = SolveGepc(*instance, GepcOptions{});
    ASSERT_TRUE(random.ok() && greedy.ok());
    random_total += random->total_utility;
    greedy_total += greedy->total_utility;
  }
  EXPECT_LT(random_total, greedy_total);
}

TEST(EffectiveUtilityTest, CountsOnlyViableEvents) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(0, testing_support::kE1);  // e1 xi=1: viable
  plan.Add(1, testing_support::kE3);  // e3 xi=3 with one attendee: cancelled
  EXPECT_NEAR(EffectiveUtility(instance, plan), 0.7, 1e-12);
}

TEST(EffectiveUtilityTest, FullPaperPlanMatchesTotal) {
  const Instance instance = MakePaperInstance();
  const Plan plan = testing_support::MakePaperPlan();
  EXPECT_NEAR(EffectiveUtility(instance, plan), plan.TotalUtility(instance),
              1e-12);
}

}  // namespace
}  // namespace gepc
