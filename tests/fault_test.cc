#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

namespace gepc {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Reset(); }
  void TearDown() override { fault::Registry::Global().Reset(); }
};

TEST_F(FaultTest, DisabledInjectsNothing) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_TRUE(fault::Inject("journal.append").ok());
  EXPECT_TRUE(fault::Inject("no.such.point").ok());
  // The disabled fast path records nothing at all.
  EXPECT_EQ(fault::Registry::Global().HitCount("journal.append"), 0u);
}

TEST_F(FaultTest, ArmedPointFiresWithConfiguredCode) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.message = "disk on fire";
  fault::Registry::Global().Arm("journal.append", spec);
  EXPECT_TRUE(fault::Enabled());

  const Status status = fault::Inject("journal.append");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("journal.append"), std::string::npos);
  EXPECT_NE(status.message().find("disk on fire"), std::string::npos);

  // Other points stay silent.
  EXPECT_TRUE(fault::Inject("journal.flush").ok());
  EXPECT_EQ(fault::Registry::Global().HitCount("journal.append"), 1u);
  EXPECT_EQ(fault::Registry::Global().FireCount("journal.append"), 1u);
}

TEST_F(FaultTest, SkipAndCountDefineTheFaultWindow) {
  fault::FaultSpec spec;
  spec.skip = 2;
  spec.count = 3;
  fault::Registry::Global().Arm("queue.push", spec);

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) {
    fired.push_back(!fault::Inject("queue.push").ok());
  }
  const std::vector<bool> expected = {false, false, true, true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::Registry::Global().HitCount("queue.push"), 8u);
  EXPECT_EQ(fault::Registry::Global().FireCount("queue.push"), 3u);
}

TEST_F(FaultTest, DisarmStopsFiring) {
  fault::Registry::Global().Arm("shard.solve", fault::FaultSpec{});
  EXPECT_FALSE(fault::Inject("shard.solve").ok());
  fault::Registry::Global().Disarm("shard.solve");
  EXPECT_FALSE(fault::Enabled());
  EXPECT_TRUE(fault::Inject("shard.solve").ok());
}

TEST_F(FaultTest, ProbabilityDrawsAreDeterministic) {
  fault::FaultSpec spec;
  spec.probability = 0.4;
  spec.seed = 1234;

  auto run = [&spec]() {
    fault::Registry::Global().Reset();
    fault::Registry::Global().Arm("shard.solve", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(!fault::Inject("shard.solve").ok());
    }
    return pattern;
  };

  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);

  int fires = 0;
  for (const bool b : first) fires += b ? 1 : 0;
  EXPECT_GT(fires, 40);   // ~80 expected; generous two-sided bounds
  EXPECT_LT(fires, 130);

  // A different seed fires a different pattern.
  spec.seed = 99;
  EXPECT_NE(run(), first);
}

TEST_F(FaultTest, DelayOnlyPointReturnsOk) {
  fault::FaultSpec spec;
  spec.code = StatusCode::kOk;
  spec.delay_ms = 1;
  fault::Registry::Global().Arm("shard.slow", spec);
  EXPECT_TRUE(fault::Inject("shard.slow").ok());
  EXPECT_EQ(fault::Registry::Global().FireCount("shard.slow"), 1u);
}

TEST_F(FaultTest, InjectWithArgDeliversPayload) {
  fault::FaultSpec spec;
  spec.arg = 7;
  fault::Registry::Global().Arm("journal.torn_tail", spec);
  int64_t arg = -1;
  uint64_t fire_index = 99;
  const Status status =
      fault::InjectWithArg("journal.torn_tail", &arg, &fire_index);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(arg, 7);
  EXPECT_EQ(fire_index, 0u);
}

TEST_F(FaultTest, ArmFromSpecParsesFullGrammar) {
  ASSERT_TRUE(fault::ArmFromSpec(
                  "journal.append=unavailable:skip=1:count=2:msg=hiccup;"
                  "shard.slow=ok:delay=1;"
                  "shard.solve=internal:prob=0.5:seed=9")
                  .ok());
  const auto points = fault::Registry::Global().Snapshot();
  ASSERT_EQ(points.size(), 3u);

  EXPECT_TRUE(fault::Inject("journal.append").ok());  // skipped
  const Status second = fault::Inject("journal.append");
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_NE(second.message().find("hiccup"), std::string::npos);
}

TEST_F(FaultTest, ArmFromSpecRejectsBadInput) {
  EXPECT_FALSE(fault::ArmFromSpec("no.such.point=unavailable").ok());
  EXPECT_FALSE(fault::ArmFromSpec("journal.append").ok());
  EXPECT_FALSE(fault::ArmFromSpec("journal.append=bogus_code").ok());
  EXPECT_FALSE(fault::ArmFromSpec("journal.append=prob=1.5").ok());
  EXPECT_FALSE(fault::ArmFromSpec("journal.append=skip=abc").ok());
  EXPECT_FALSE(fault::ArmFromSpec("journal.append=frobnicate=1").ok());
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FaultTest, ArmFromEnvHonoursVariable) {
  ASSERT_EQ(setenv("GEPC_FAULTS", "queue.push=unavailable:count=1", 1), 0);
  EXPECT_TRUE(fault::ArmFromEnv().ok());
  EXPECT_FALSE(fault::Inject("queue.push").ok());
  EXPECT_TRUE(fault::Inject("queue.push").ok());
  ASSERT_EQ(unsetenv("GEPC_FAULTS"), 0);
  fault::Registry::Global().Reset();
  EXPECT_TRUE(fault::ArmFromEnv().ok());
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(FaultTest, ResetForgetsCounters) {
  fault::Registry::Global().Arm("queue.push", fault::FaultSpec{});
  fault::Inject("queue.push");
  fault::Registry::Global().Reset();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_EQ(fault::Registry::Global().HitCount("queue.push"), 0u);
  EXPECT_TRUE(fault::Registry::Global().Snapshot().empty());
}

TEST_F(FaultTest, KnownPointsCatalogueIsTerminated) {
  int count = 0;
  for (const char* const* p = fault::kKnownPoints; *p != nullptr; ++p) {
    ++count;
  }
  EXPECT_GE(count, 6);
}

}  // namespace
}  // namespace gepc
