// Satellite of the fault-injection PR: the graceful-degradation property of
// the sharded engine. With any single shard's solve failing (injected
// `shard.solve` fault), SolveSharded must still return a feasible plan —
// constraints 1-3 via ValidatePlan — whose utility is no worse than the
// all-greedy lower bound (the plan produced when *every* shard degrades to
// the sequential greedy fallback).

#include "shard/sharded_solver.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/feasibility.h"
#include "data/generator.h"
#include "data/io.h"
#include "fault/fault.h"
#include "gepc/solver.h"

namespace gepc {
namespace {

class ShardedFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::Global().Reset();
    GeneratorConfig config;
    config.num_users = 160;
    config.num_events = 12;
    config.seed = 3;
    auto generated = GenerateInstance(config);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    instance_ = *std::move(generated);
  }
  void TearDown() override { fault::Registry::Global().Reset(); }

  // Regret insertion per shard, so the greedy fallback is a real downgrade
  // and the degradation property is not vacuous.
  static ShardedGepcOptions Options() {
    ShardedGepcOptions options;
    options.shards = 4;
    // One worker: shards solve in index order, so a skip=s window
    // deterministically targets shard s.
    options.threads = 1;
    options.gepc.algorithm = GepcAlgorithm::kRegret;
    options.gepc.greedy.seed = 99;
    return options;
  }

  static std::string Serialize(const Plan& plan) {
    std::ostringstream out;
    EXPECT_TRUE(SavePlan(plan, out).ok());
    return out.str();
  }

  Instance instance_;
};

TEST_F(ShardedFaultTest, AnySingleShardFaultKeepsPlanFeasibleAboveGreedy) {
  const ShardedGepcOptions options = Options();

  // The all-greedy floor: every shard's solve fails, every shard degrades.
  fault::FaultSpec all;
  all.code = StatusCode::kInternal;
  fault::Registry::Global().Arm("shard.solve", all);
  ShardedGepcStats floor_stats;
  auto floor = SolveSharded(instance_, options, &floor_stats);
  ASSERT_TRUE(floor.ok()) << floor.status().ToString();
  EXPECT_EQ(floor_stats.degraded_shards, options.shards);
  fault::Registry::Global().Reset();

  auto healthy = SolveSharded(instance_, options);
  ASSERT_TRUE(healthy.ok());
  EXPECT_GE(healthy->total_utility, floor->total_utility - 1e-9);

  ValidationOptions feasibility;
  feasibility.check_lower_bounds = false;  // best-effort, like SolveGepc
  for (int s = 0; s < options.shards; ++s) {
    fault::FaultSpec spec;
    spec.code = StatusCode::kInternal;
    spec.skip = static_cast<uint64_t>(s);
    spec.count = 1;
    fault::Registry::Global().Arm("shard.solve", spec);

    ShardedGepcStats stats;
    auto degraded = SolveSharded(instance_, options, &stats);
    ASSERT_TRUE(degraded.ok())
        << "shard " << s << ": " << degraded.status().ToString();
    EXPECT_EQ(stats.degraded_shards, 1) << "shard " << s;
    EXPECT_TRUE(ValidatePlan(instance_, degraded->plan, feasibility).ok())
        << "shard " << s;
    // Degrading one shard can cost utility, but never below the floor in
    // which every shard already runs the same greedy fallback.
    EXPECT_GE(degraded->total_utility, floor->total_utility - 1e-9)
        << "shard " << s;
    EXPECT_LE(degraded->total_utility, healthy->total_utility + 1e-9)
        << "shard " << s;
    EXPECT_EQ(degraded->events_below_lower_bound, 0) << "shard " << s;

    fault::Registry::Global().Reset();
  }
}

TEST_F(ShardedFaultTest, DegradedSolveIsDeterministic) {
  const ShardedGepcOptions options = Options();
  auto run = [&]() {
    fault::Registry::Global().Reset();
    fault::FaultSpec spec;
    spec.skip = 1;
    spec.count = 1;
    fault::Registry::Global().Arm("shard.solve", spec);
    auto result = SolveSharded(instance_, options);
    EXPECT_TRUE(result.ok());
    return Serialize(result->plan);
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ShardedFaultTest, SingleShardPathFallsBackToSequentialGreedy) {
  ShardedGepcOptions options = Options();
  options.shards = 1;
  fault::Registry::Global().Arm("shard.solve", fault::FaultSpec{});

  ShardedGepcStats stats;
  auto degraded = SolveSharded(instance_, options, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(stats.degraded_shards, 1);
  fault::Registry::Global().Reset();

  // The fallback is the plain sequential greedy solve with the same seed.
  GepcOptions greedy = options.gepc;
  greedy.algorithm = GepcAlgorithm::kGreedy;
  greedy.refine_with_local_search = false;
  auto reference = SolveGepc(instance_, greedy);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Serialize(degraded->plan), Serialize(reference->plan));
}

TEST_F(ShardedFaultTest, SlowShardChangesNothingButTime) {
  ShardedGepcOptions options = Options();
  options.threads = 2;

  auto baseline = SolveSharded(instance_, options);
  ASSERT_TRUE(baseline.ok());

  fault::FaultSpec spec;
  spec.code = StatusCode::kOk;  // delay only
  spec.delay_ms = 5;
  spec.count = 2;
  fault::Registry::Global().Arm("shard.slow", spec);
  ShardedGepcStats stats;
  auto delayed = SolveSharded(instance_, options, &stats);
  ASSERT_TRUE(delayed.ok());
  EXPECT_GE(fault::Registry::Global().FireCount("shard.slow"), 2u);

  EXPECT_EQ(stats.degraded_shards, 0);
  EXPECT_EQ(Serialize(delayed->plan), Serialize(baseline->plan));
  EXPECT_DOUBLE_EQ(delayed->total_utility, baseline->total_utility);
}

TEST_F(ShardedFaultTest, ProbabilisticFaultsNeverBreakFeasibility) {
  ShardedGepcOptions options = Options();
  ValidationOptions feasibility;
  feasibility.check_lower_bounds = false;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    fault::Registry::Global().Reset();
    fault::FaultSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    fault::Registry::Global().Arm("shard.solve", spec);

    ShardedGepcStats stats;
    auto result = SolveSharded(instance_, options, &stats);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    EXPECT_TRUE(ValidatePlan(instance_, result->plan, feasibility).ok())
        << "seed " << seed;
    EXPECT_EQ(stats.degraded_shards,
              static_cast<int>(
                  fault::Registry::Global().FireCount("shard.solve")));
  }
}

}  // namespace
}  // namespace gepc
