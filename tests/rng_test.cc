#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gepc {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformUint64StaysBelowBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformUint64(17), 17u);
}

TEST(RngTest, UniformUint64HitsAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntRespectsInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, UniformDoubleRangeRespected) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(23);
  const int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(29);
  int hits = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

}  // namespace
}  // namespace gepc
