#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "exec/task_rng.h"

namespace gepc {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> a = pool.Submit([] { return 7; });
  std::future<std::string> b = pool.Submit([] { return std::string("hi"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "hi");
}

TEST(ThreadPoolTest, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.num_threads(), 1);
  EXPECT_EQ(negative.Submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(100);
    pool.ParallelFor(0, 100, [&visits](int i) {
      ++visits[static_cast<size_t>(i)];
    });
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(3, 4, [&calls](int i) {
    EXPECT_EQ(i, 3);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForResultsIndependentOfThreadCount) {
  // Slot-indexed writes + per-task seeds: the canonical deterministic
  // fan-out pattern. Any thread count must fill identical slots.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(64, 0);
    pool.ParallelFor(0, 64, [&out](int i) {
      Rng rng = TaskRng(/*master_seed=*/123, static_cast<uint64_t>(i));
      out[static_cast<size_t>(i)] = rng.NextUint64();
    });
    return out;
  };
  const std::vector<uint64_t> sequential = run(1);
  EXPECT_EQ(run(2), sequential);
  EXPECT_EQ(run(8), sequential);
}

TEST(TaskRngTest, SeedsDifferAcrossTasksAndMasters) {
  EXPECT_NE(DeriveTaskSeed(1, 0), DeriveTaskSeed(1, 1));
  EXPECT_NE(DeriveTaskSeed(1, 0), DeriveTaskSeed(2, 0));
  // Same inputs, same stream.
  EXPECT_EQ(DeriveTaskSeed(42, 7), DeriveTaskSeed(42, 7));
  Rng a = TaskRng(42, 7);
  Rng b = TaskRng(42, 7);
  for (int k = 0; k < 10; ++k) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

}  // namespace
}  // namespace gepc
