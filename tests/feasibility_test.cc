#include "core/feasibility.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(TourCostTest, EmptyPlanCostsNothing) {
  const Instance instance = MakePaperInstance();
  EXPECT_DOUBLE_EQ(TourCost(instance, 0, {}), 0.0);
}

TEST(TourCostTest, SingleEventIsRoundTrip) {
  const Instance instance = MakePaperInstance();
  EXPECT_NEAR(TourCost(instance, 0, {kE1}), 2.0 * std::sqrt(17.0), 1e-12);
}

TEST(TourCostTest, PaperD1Value) {
  // Sec. II: D_1 = 16.53 for plan {e1, e2}.
  const Instance instance = MakePaperInstance();
  EXPECT_NEAR(TourCost(instance, 0, {kE1, kE2}),
              std::sqrt(17.0) + std::sqrt(41.0) + 6.0, 1e-12);
  EXPECT_NEAR(TourCost(instance, 0, {kE1, kE2}), 16.53, 0.005);
}

TEST(TourCostTest, OrderIsByStartTimeNotArgumentOrder) {
  const Instance instance = MakePaperInstance();
  EXPECT_DOUBLE_EQ(TourCost(instance, 0, {kE2, kE1}),
                   TourCost(instance, 0, {kE1, kE2}));
}

TEST(TourCostTest, InsertionNeverShortensTour) {
  const Instance instance = MakePaperInstance();
  for (int i = 0; i < instance.num_users(); ++i) {
    const double base = TourCost(instance, i, {kE3});
    const double more = TourCost(instance, i, {kE3, kE2});
    EXPECT_GE(more + 1e-12, base);
  }
}

TEST(TourCostTest, UserTravelCostReadsPlan) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  EXPECT_NEAR(UserTravelCost(instance, plan, 0), 16.53, 0.005);
  EXPECT_DOUBLE_EQ(UserTravelCost(instance, Plan(5, 4), 0), 0.0);
}

TEST(HasTimeConflictTest, DetectsPairs) {
  const Instance instance = MakePaperInstance();
  EXPECT_TRUE(HasTimeConflict(instance, {kE1, kE3}));
  EXPECT_TRUE(HasTimeConflict(instance, {kE2, kE4}));
  EXPECT_TRUE(HasTimeConflict(instance, {kE1, kE2, kE4}));  // e2/e4 touch
  EXPECT_FALSE(HasTimeConflict(instance, {kE1, kE2}));
  EXPECT_FALSE(HasTimeConflict(instance, {kE3, kE4}));
  EXPECT_FALSE(HasTimeConflict(instance, {}));
}

TEST(ConflictsWithPlanTest, ChecksAgainstHeldEvents) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(0, kE3);
  EXPECT_TRUE(ConflictsWithPlan(instance, plan, 0, kE1));
  EXPECT_FALSE(ConflictsWithPlan(instance, plan, 0, kE2));
}

TEST(ValidatePlanTest, PaperPlanIsFeasible) {
  EXPECT_TRUE(
      ValidatePlan(MakePaperInstance(), MakePaperPlan()).ok());
}

TEST(ValidatePlanTest, DimensionMismatchRejected) {
  EXPECT_EQ(ValidatePlan(MakePaperInstance(), Plan(3, 4)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidatePlanTest, DetectsTimeConflict) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(0, kE1);
  plan.Add(0, kE3);
  const Status status = ValidatePlan(instance, plan);
  EXPECT_EQ(status.code(), StatusCode::kInfeasible);
  EXPECT_NE(status.message().find("time-conflicting"), std::string::npos);
}

TEST(ValidatePlanTest, DetectsBudgetViolation) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(4, kE1);  // u5: round trip 2*sqrt(73) > 10
  EXPECT_EQ(ValidatePlan(instance, plan).code(), StatusCode::kInfeasible);
}

TEST(ValidatePlanTest, DetectsUpperBoundViolation) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE4, 0, 1).ok());
  Plan plan(5, 4);
  plan.Add(3, kE4);
  plan.Add(4, kE4);
  EXPECT_EQ(ValidatePlan(instance, plan).code(), StatusCode::kInfeasible);
}

TEST(ValidatePlanTest, DetectsLowerBoundViolation) {
  const Instance instance = MakePaperInstance();
  const Plan plan(5, 4);  // empty: every xi > 0 unmet
  EXPECT_EQ(ValidatePlan(instance, plan).code(), StatusCode::kInfeasible);
  ValidationOptions lenient;
  lenient.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, plan, lenient).ok());
}

TEST(ValidatePlanTest, OptionalZeroUtilityCheck) {
  Instance instance = MakePaperInstance();
  instance.set_utility(4, kE4, 0.0);
  Plan plan = MakePaperPlan();
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(instance, plan, options).ok());
  options.check_positive_utility = true;
  EXPECT_EQ(ValidatePlan(instance, plan, options).code(),
            StatusCode::kInfeasible);
}

TEST(CanAttendTest, RespectsAllUserSideConstraints) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(1, kE3);
  // Conflict with e3.
  EXPECT_FALSE(CanAttend(instance, plan, 1, kE1));
  // Already attending.
  EXPECT_FALSE(CanAttend(instance, plan, 1, kE3));
  // Fine: e2 after e3, tour 17.25 within u2's budget 20.
  EXPECT_TRUE(CanAttend(instance, plan, 1, kE2));
  // u1 (budget 18) cannot chain e3 -> e2 (tour ~23.1).
  Plan plan_u1(5, 4);
  plan_u1.Add(0, kE3);
  EXPECT_FALSE(CanAttend(instance, plan_u1, 0, kE2));
}

TEST(CanAttendTest, RejectsOverBudget) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(4, kE4);
  // u5 (budget 10) cannot also reach e1 (Example 4 / 8).
  EXPECT_FALSE(CanAttend(instance, plan, 4, kE1));
}

TEST(CanAttendTest, RejectsZeroUtility) {
  Instance instance = MakePaperInstance();
  instance.set_utility(0, kE2, 0.0);
  EXPECT_FALSE(CanAttend(instance, Plan(5, 4), 0, kE2));
}

TEST(TravelCostWithEventTest, MatchesTourCost) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(0, kE1);
  EXPECT_DOUBLE_EQ(TravelCostWithEvent(instance, plan, 0, kE2),
                   TourCost(instance, 0, {kE1, kE2}));
}

}  // namespace
}  // namespace gepc
