#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace gepc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ErrorIsNotOk) {
  EXPECT_FALSE(Status::Infeasible("no plan").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::Infeasible("no plan").ToString(), "infeasible: no plan");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "unimplemented");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  GEPC_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = *std::move(r);
  EXPECT_EQ(s, "hello");
}

Result<int> Double(int x) {
  if (x > 100) return Status::OutOfRange("too big");
  return 2 * x;
}

Result<int> Chain(int x) {
  GEPC_ASSIGN_OR_RETURN(int doubled, Double(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnBindsAndPropagates) {
  Result<int> good = Chain(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad = Chain(1000);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace gepc
