#include "gap/exact_gap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gap/gap_lp.h"
#include "gap/shmoys_tardos.h"

namespace gepc {
namespace {

GapInstance TinyRandomGap(Rng* rng, int machines, int jobs,
                          double tightness = 2.0) {
  GapInstance gap(machines, jobs);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, rng->UniformDouble(5.0, 10.0) * tightness);
  }
  for (int j = 0; j < jobs; ++j) {
    for (int i = 0; i < machines; ++i) {
      if (rng->Bernoulli(0.2)) continue;
      gap.SetPair(i, j, rng->UniformDouble(1.0, 7.0),
                  rng->UniformDouble(0.0, 1.0));
    }
  }
  return gap;
}

TEST(ExactGapTest, SingleJobPicksCheapestFeasibleMachine) {
  GapInstance gap(3, 1);
  gap.set_capacity(0, 1.0);   // too small
  gap.set_capacity(1, 10.0);
  gap.set_capacity(2, 10.0);
  gap.SetPair(0, 0, 5.0, 0.0);
  gap.SetPair(1, 0, 5.0, 0.7);
  gap.SetPair(2, 0, 5.0, 0.3);
  auto result = SolveGapExact(gap);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  EXPECT_EQ(result->assignment.machine_of_job[0], 2);
  EXPECT_DOUBLE_EQ(result->total_cost, 0.3);
}

TEST(ExactGapTest, CapacityForcesExpensiveSplit) {
  // Both jobs prefer machine 0 (cost 0) but it fits only one.
  GapInstance gap(2, 2);
  gap.set_capacity(0, 4.0);
  gap.set_capacity(1, 10.0);
  for (int j = 0; j < 2; ++j) {
    gap.SetPair(0, j, 4.0, 0.0);
    gap.SetPair(1, j, 4.0, 1.0);
  }
  auto result = SolveGapExact(gap);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  EXPECT_DOUBLE_EQ(result->total_cost, 1.0);
  const auto loads = result->assignment.Loads(gap);
  EXPECT_LE(loads[0], 4.0 + 1e-12);
}

TEST(ExactGapTest, DetectsCapacityInfeasibility) {
  GapInstance gap(1, 2);
  gap.set_capacity(0, 5.0);
  gap.SetPair(0, 0, 4.0, 0.1);
  gap.SetPair(0, 1, 4.0, 0.1);  // both eligible alone, not together
  auto result = SolveGapExact(gap);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
}

TEST(ExactGapTest, RejectsOversizedInstances) {
  GapInstance gap(2, 30);
  ExactGapOptions options;
  options.max_jobs = 10;
  EXPECT_EQ(SolveGapExact(gap, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactGapTest, NodeBudgetAborts) {
  Rng rng(5);
  const GapInstance gap = TinyRandomGap(&rng, 4, 10);
  ExactGapOptions options;
  options.max_nodes = 2;
  auto result = SolveGapExact(gap, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ExactGapTest, LpLowerBoundsExactOptimum) {
  Rng rng(11);
  int rounds = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const GapInstance gap = TinyRandomGap(&rng, 3, 7);
    if (!gap.Validate().ok()) continue;
    auto exact = SolveGapExact(gap);
    ASSERT_TRUE(exact.ok());
    auto lp = SolveGapLpSimplex(gap);
    if (!exact->feasible) {
      // LP may still be feasible (fractional splits), but if the LP is
      // infeasible the integral problem must be too — nothing to check.
      continue;
    }
    ASSERT_TRUE(lp.ok()) << lp.status();
    EXPECT_LE(lp->TotalCost(gap), exact->total_cost + 1e-6)
        << "trial " << trial;
    ++rounds;
  }
  EXPECT_GT(rounds, 3);
}

TEST(ExactGapTest, ShmoysTardosCostNeverExceedsExact) {
  // ST rounding cost <= LP cost <= exact optimum's cost.
  Rng rng(13);
  int rounds = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const GapInstance gap = TinyRandomGap(&rng, 3, 8, /*tightness=*/3.0);
    if (!gap.Validate().ok()) continue;
    auto exact = SolveGapExact(gap);
    ASSERT_TRUE(exact.ok());
    if (!exact->feasible) continue;
    auto st = SolveGapShmoysTardos(gap);
    if (!st.ok()) continue;
    EXPECT_LE(st->TotalCost(gap), exact->total_cost + 1e-6)
        << "trial " << trial;
    ++rounds;
  }
  EXPECT_GT(rounds, 3);
}

TEST(ExactGapTest, ExplorationIsBounded) {
  Rng rng(17);
  const GapInstance gap = TinyRandomGap(&rng, 3, 8);
  auto result = SolveGapExact(gap);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->explored_nodes, 0);
  EXPECT_LT(result->explored_nodes, 100000);  // pruning must bite
}

}  // namespace
}  // namespace gepc
