// Planning-service checkpoint surface: the on-demand Checkpoint() call,
// the --checkpoint-every auto-trigger in the apply loop, recovery that
// prefers checkpoint + journal-tail over full replay, compaction keeping
// the journal bounded by ops-since-checkpoint, and injected faults on
// every checkpoint/rotation stage leaving the service and journal intact.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "service/journal.h"
#include "service/planning_service.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

namespace fs = std::filesystem;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

class CkptServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::Global().Reset();
    // Checkpoint fallbacks log deliberate warnings; keep test output clean.
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/ckpt_service_" + info->name();
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::create_directories(root_, ec);
    ASSERT_FALSE(ec) << ec.message();
    journal_path_ = root_ + "/service.gops";
    ckpt_dir_ = root_ + "/ckpt";
  }
  void TearDown() override {
    fault::Registry::Global().Reset();
    SetLogLevel(previous_level_);
  }

  ServiceOptions Options(int every, int retain = 2) const {
    ServiceOptions options;
    options.journal_path = journal_path_;
    options.checkpoint_dir = ckpt_dir_;
    options.checkpoint_every = every;
    options.checkpoint_retain = retain;
    options.journal_backoff_initial_ms = 0;
    return options;
  }

  Result<std::unique_ptr<PlanningService>> Make(const ServiceOptions& opts) {
    return PlanningService::Create(MakePaperInstance(), MakePaperPlan(), opts);
  }

  void ApplyOps(PlanningService* service, int count, double base = 15.0) {
    for (int i = 0; i < count; ++i) {
      const ApplyOutcome outcome = service->Apply(
          AtomicOp::BudgetChange(i % 5, base + static_cast<double>(i)));
      ASSERT_TRUE(outcome.applied) << i << ": " << outcome.error;
    }
  }

  LogLevel previous_level_ = LogLevel::kInfo;
  std::string root_, journal_path_, ckpt_dir_;
};

TEST_F(CkptServiceTest, OnDemandCheckpointPublishesAndCompacts) {
  auto service = Make(Options(/*every=*/0, /*retain=*/1));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ApplyOps(service->get(), 4);

  const CheckpointOutcome outcome = (*service)->Checkpoint();
  ASSERT_TRUE(outcome.published) << outcome.error;
  EXPECT_EQ(outcome.version, 4u);
  EXPECT_GT(outcome.bytes, 0);
  EXPECT_TRUE(outcome.compacted);
  EXPECT_TRUE(fs::exists(outcome.path));

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.checkpoints_published, 1u);
  EXPECT_EQ(stats.checkpoint_failures, 0u);
  EXPECT_EQ(stats.last_checkpoint_version, 4u);
  EXPECT_EQ(stats.last_checkpoint_bytes, outcome.bytes);
  EXPECT_GE(stats.last_checkpoint_age_seconds, 0.0);
  // retain=1: everything before the checkpoint was absorbed, so the
  // rotated journal starts at base 4 with zero rows.
  EXPECT_EQ(stats.journal_compactions, 1u);
  EXPECT_EQ(stats.journal_base_sequence, 4u);
  (*service)->Shutdown();

  auto scan = ScanJournalFile(journal_path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->base_sequence, 4u);
  EXPECT_TRUE(scan->ops.empty());
  EXPECT_EQ(scan->torn_bytes, 0);
}

TEST_F(CkptServiceTest, AutoCheckpointFiresEveryN) {
  auto service = Make(Options(/*every=*/3, /*retain=*/2));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ApplyOps(service->get(), 7);

  const ServiceStats stats = (*service)->Stats();
  // Ops 3 and 6 crossed the threshold; op 7 is still in the open window.
  EXPECT_EQ(stats.checkpoints_published, 2u);
  EXPECT_EQ(stats.last_checkpoint_version, 6u);
  (*service)->Shutdown();

  auto list = ListCheckpoints(ckpt_dir_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].version, 6u);
  EXPECT_EQ((*list)[1].version, 3u);

  // Compaction goes through the OLDEST retained checkpoint, so the journal
  // tail still bridges every survivor: base 3, rows for ops 4..7.
  auto scan = ScanJournalFile(journal_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->base_sequence, 3u);
  EXPECT_EQ(scan->ops.size(), 4u);
}

TEST_F(CkptServiceTest, RecoverPrefersCheckpointPlusTail) {
  uint64_t live_version = 0;
  {
    auto service = Make(Options(/*every=*/4));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ApplyOps(service->get(), 10);
    live_version = (*service)->snapshot()->version;
    (*service)->Shutdown();
  }

  auto recovered =
      PlanningService::Recover(MakePaperInstance(), MakePaperPlan(),
                               Options(/*every=*/4));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const ServiceStats stats = (*recovered)->Stats();
  EXPECT_TRUE(stats.recovered_from_checkpoint);
  EXPECT_EQ(stats.recovery_checkpoint_version, 8u);
  // Only the tail past version 8 was replayed, not the full history.
  EXPECT_EQ(stats.recovery_ops_replayed, 2u);
  EXPECT_GE(stats.recovery_ms, 0.0);
  EXPECT_EQ((*recovered)->snapshot()->version, live_version);

  // The recovered service keeps sequencing where the crash left off.
  const ApplyOutcome next =
      (*recovered)->Apply(AtomicOp::BudgetChange(0, 99.0));
  EXPECT_TRUE(next.applied) << next.error;
  EXPECT_EQ(next.sequence, live_version + 1);
  (*recovered)->Shutdown();
}

TEST_F(CkptServiceTest, RecoverFallsBackToOlderCheckpointWhenNewestIsTorn) {
  {
    auto service = Make(Options(/*every=*/3));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ApplyOps(service->get(), 7);
    (*service)->Shutdown();
  }
  // Tear the newest checkpoint (version 6) down to a useless stub.
  auto list = ListCheckpoints(ckpt_dir_);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->front().version, 6u);
  fs::resize_file(list->front().path, 32);

  auto recovered = PlanningService::Recover(
      MakePaperInstance(), MakePaperPlan(), Options(/*every=*/0));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const ServiceStats stats = (*recovered)->Stats();
  EXPECT_TRUE(stats.recovered_from_checkpoint);
  EXPECT_EQ(stats.recovery_checkpoint_version, 3u);
  // Zero committed-op loss: the journal tail bridges 4..7.
  EXPECT_EQ((*recovered)->snapshot()->version, 7u);
  (*recovered)->Shutdown();
}

TEST_F(CkptServiceTest, CheckpointWriteFaultLeavesServiceAndJournalIntact) {
  for (const char* point : {"ckpt.write", "ckpt.fsync", "ckpt.rename"}) {
    SCOPED_TRACE(point);
    fault::Registry::Global().Reset();
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::create_directories(root_, ec);

    auto service = Make(Options(/*every=*/0));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    ApplyOps(service->get(), 3);

    ASSERT_TRUE(
        fault::ArmFromSpec(std::string(point) + "=unavailable:count=1").ok());
    const CheckpointOutcome failed = (*service)->Checkpoint();
    EXPECT_FALSE(failed.published);
    EXPECT_FALSE(failed.error.empty());
    EXPECT_EQ((*service)->Stats().checkpoint_failures, 1u);
    // No checkpoint landed, no temp debris, journal untouched.
    auto list = ListCheckpoints(ckpt_dir_);
    ASSERT_TRUE(list.ok());
    EXPECT_TRUE(list->empty());
    EXPECT_EQ((*service)->Stats().journal_compactions, 0u);

    // The service shrugs it off: the next attempt publishes.
    const CheckpointOutcome retried = (*service)->Checkpoint();
    EXPECT_TRUE(retried.published) << retried.error;
    EXPECT_EQ(retried.version, 3u);
    (*service)->Shutdown();

    auto scan = ScanJournalFile(journal_path_);
    ASSERT_TRUE(scan.ok());
    EXPECT_EQ(scan->torn_bytes, 0);
  }
}

TEST_F(CkptServiceTest, RotateFaultKeepsOldJournalAndCheckpoint) {
  auto service = Make(Options(/*every=*/0));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ApplyOps(service->get(), 3);

  // The checkpoint publishes, but the journal rotation behind it fails;
  // that must degrade to "no compaction yet", never a damaged journal.
  ASSERT_TRUE(fault::ArmFromSpec("journal.rotate=unavailable:count=1").ok());
  const CheckpointOutcome outcome = (*service)->Checkpoint();
  EXPECT_TRUE(outcome.published) << outcome.error;
  EXPECT_FALSE(outcome.compacted);
  EXPECT_EQ((*service)->Stats().journal_compactions, 0u);

  // The journal still starts at genesis with all three rows committed,
  // and the service continues accepting ops.
  const ApplyOutcome after = (*service)->Apply(AtomicOp::BudgetChange(1, 55.0));
  EXPECT_TRUE(after.applied) << after.error;
  (*service)->Shutdown();

  auto scan = ScanJournalFile(journal_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->base_sequence, 0u);
  EXPECT_EQ(scan->ops.size(), 4u);
  EXPECT_EQ(scan->torn_bytes, 0);
}

}  // namespace
}  // namespace gepc
