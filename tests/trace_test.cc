#include "iep/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/feasibility.h"
#include "iep/batch.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE2;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::vector<AtomicOp> SampleOps() {
  Event fresh;
  fresh.location = {4, 4};
  fresh.lower_bound = 1;
  fresh.upper_bound = 3;
  fresh.time = {21 * 60, 22 * 60};
  fresh.fee = 2.5;
  return {
      AtomicOp::UpperBoundChange(kE4, 1),
      AtomicOp::LowerBoundChange(kE2, 3),
      AtomicOp::TimeChange(0, {100, 200}),
      AtomicOp::LocationChange(1, {7.5, -2.25}),
      AtomicOp::BudgetChange(2, 12.75),
      AtomicOp::UtilityChange(3, 1, 0.125),
      AtomicOp::NewEvent(fresh, {0.1, 0.2, 0.3, 0.4, 0.5}),
  };
}

TEST(TraceTest, RoundTripPreservesEveryField) {
  const std::vector<AtomicOp> ops = SampleOps();
  std::stringstream buffer;
  ASSERT_TRUE(SaveOps(ops, buffer).ok());
  auto loaded = LoadOps(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), ops.size());
  for (size_t k = 0; k < ops.size(); ++k) {
    EXPECT_EQ((*loaded)[k].kind, ops[k].kind) << "op " << k;
  }
  EXPECT_EQ((*loaded)[0].event, kE4);
  EXPECT_EQ((*loaded)[0].new_bound, 1);
  EXPECT_EQ((*loaded)[2].new_time, (Interval{100, 200}));
  EXPECT_EQ((*loaded)[3].new_location, (Point{7.5, -2.25}));
  EXPECT_DOUBLE_EQ((*loaded)[4].new_budget, 12.75);
  EXPECT_DOUBLE_EQ((*loaded)[5].new_utility, 0.125);
  EXPECT_DOUBLE_EQ((*loaded)[6].new_event.fee, 2.5);
  EXPECT_EQ((*loaded)[6].new_event_utilities,
            (std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5}));
}

TEST(TraceTest, ReplayedTraceMatchesDirectApplication) {
  const std::vector<AtomicOp> ops = SampleOps();
  std::stringstream buffer;
  ASSERT_TRUE(SaveOps(ops, buffer).ok());
  auto loaded = LoadOps(buffer);
  ASSERT_TRUE(loaded.ok());

  auto direct =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  auto replayed =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(direct.ok() && replayed.ok());
  auto a = ApplyBatch(&*direct, ops);
  auto b = ApplyBatch(&*replayed, *loaded);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->plan == b->plan);
  EXPECT_EQ(a->negative_impact, b->negative_impact);
  EXPECT_DOUBLE_EQ(a->total_utility, b->total_utility);
}

TEST(TraceTest, CommentsAndBlanksIgnored) {
  std::stringstream in(
      "# trace\n"
      "GOPS1\n"
      "\n"
      "# shrink\n"
      "eta 3 1\n");
  auto loaded = LoadOps(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].kind, AtomicOp::Kind::kUpperBoundChanged);
}

TEST(TraceTest, MissingHeaderRejected) {
  std::stringstream in("eta 3 1\n");
  auto loaded = LoadOps(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceTest, MalformedRowRejectedWithLine) {
  std::stringstream in(
      "GOPS1\n"
      "time 3 100\n");  // missing end
  auto loaded = LoadOps(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(TraceTest, UnknownKindRejected) {
  std::stringstream in(
      "GOPS1\n"
      "frobnicate 1 2\n");
  auto loaded = LoadOps(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unknown op kind"),
            std::string::npos);
}

TEST(TraceTest, EmptyTraceIsValid) {
  std::stringstream in("GOPS1\n");
  auto loaded = LoadOps(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(TraceTest, EveryOpKindRoundTripsByteIdentically) {
  // Awkward doubles on purpose: values that lose digits under default
  // stream precision. write -> parse -> write must reproduce the exact
  // bytes, which is what makes the service journal's replay exact.
  Event fresh;
  fresh.location = {1.0 / 3.0, -0.1};
  fresh.lower_bound = 0;
  fresh.upper_bound = 7;
  fresh.time = {539, 1261};
  fresh.fee = 12.880807237860413;
  const std::vector<AtomicOp> ops = {
      AtomicOp::UpperBoundChange(3, 10),
      AtomicOp::LowerBoundChange(0, 2),
      AtomicOp::TimeChange(2, {61, 179}),
      AtomicOp::LocationChange(4, {0.1 + 0.2, 1e-9}),
      AtomicOp::BudgetChange(5, 100.0 / 7.0),
      AtomicOp::UtilityChange(6, 1, 2.0 / 3.0),
      AtomicOp::NewEvent(fresh, {0.1, 1.0 / 7.0, 0.30000000000000004}),
  };

  std::stringstream first;
  ASSERT_TRUE(SaveOps(ops, first).ok());
  auto loaded = LoadOps(first);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::stringstream second;
  ASSERT_TRUE(SaveOps(*loaded, second).ok());
  EXPECT_EQ(first.str(), second.str());

  // And per-row SaveOp agrees with the batch writer (header aside).
  std::stringstream rows;
  for (const AtomicOp& op : ops) ASSERT_TRUE(SaveOp(op, rows).ok());
  EXPECT_EQ(std::string("GOPS1\n") + rows.str(), first.str());
}

TEST(TraceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gepc_trace_test.gops";
  ASSERT_TRUE(SaveOpsToFile(SampleOps(), path).ok());
  auto loaded = LoadOpsFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), SampleOps().size());
  EXPECT_EQ(LoadOpsFromFile("/no/such/file").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gepc
