// Differential check of the sharded solver against the sequential one:
// across randomized instances and shard counts, SolveSharded must produce a
// feasible plan whose total utility stays within a bounded fraction of the
// sequential SolveGepc answer. Sharding trades a little utility (boundary
// users see only their shard's events) for parallelism — this test pins
// down "a little".

#include <gtest/gtest.h>

#include <vector>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  // Tight budgets keep interactions local, the regime sharding targets.
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

TEST(ShardedDifferentialTest, UtilityWithinFivePercentOfSequential) {
  for (const uint64_t seed : {101u, 202u, 303u}) {
    const Instance instance = MakeLocalInstance(140, 36, seed);
    auto sequential = SolveGepc(instance, GepcOptions{});
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    ASSERT_GT(sequential->total_utility, 0.0);

    for (const int shards : {2, 4, 8}) {
      ShardedGepcOptions options;
      options.shards = shards;
      options.threads = 2;
      auto sharded = SolveSharded(instance, options);
      ASSERT_TRUE(sharded.ok())
          << "seed " << seed << " shards " << shards << ": "
          << sharded.status();

      // Hard constraints (conflicts, budgets, capacities) must hold; lower
      // bounds are best-effort under sharding, as in the sequential
      // contract for partial solutions.
      ValidationOptions lenient;
      lenient.check_lower_bounds = false;
      const Status valid = ValidatePlan(instance, sharded->plan, lenient);
      EXPECT_TRUE(valid.ok())
          << "seed " << seed << " shards " << shards << ": " << valid;

      EXPECT_GE(sharded->total_utility, 0.95 * sequential->total_utility)
          << "seed " << seed << " shards " << shards << ": sharded "
          << sharded->total_utility << " vs sequential "
          << sequential->total_utility;
    }
  }
}

TEST(ShardedDifferentialTest, ReportedUtilityMatchesPlan) {
  const Instance instance = MakeLocalInstance(120, 30, 404);
  ShardedGepcOptions options;
  options.shards = 4;
  options.threads = 2;
  auto sharded = SolveSharded(instance, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_NEAR(sharded->plan.TotalUtility(instance), sharded->total_utility,
              1e-9);
}

}  // namespace
}  // namespace gepc
