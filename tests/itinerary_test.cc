#include "core/itinerary.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(ItineraryTest, EmptyPlanEmptyItinerary) {
  const Instance instance = MakePaperInstance();
  const Itinerary itinerary = BuildItinerary(instance, Plan(5, 4), 0);
  EXPECT_TRUE(itinerary.stops.empty());
  EXPECT_DOUBLE_EQ(itinerary.total_cost, 0.0);
  EXPECT_TRUE(itinerary.within_budget);
  EXPECT_TRUE(itinerary.conflict_free);
}

TEST(ItineraryTest, MatchesPaperD1Accounting) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  const Itinerary itinerary = BuildItinerary(instance, plan, 0);
  ASSERT_EQ(itinerary.stops.size(), 2u);
  // Stops in start-time order: e1 (1 p.m.) before e2 (4 p.m.).
  EXPECT_EQ(itinerary.stops[0].event, kE1);
  EXPECT_EQ(itinerary.stops[1].event, kE2);
  EXPECT_NEAR(itinerary.stops[0].travel_from_previous, std::sqrt(17.0),
              1e-12);
  EXPECT_NEAR(itinerary.stops[1].travel_from_previous, std::sqrt(41.0),
              1e-12);
  EXPECT_NEAR(itinerary.travel_home, 6.0, 1e-12);
  EXPECT_NEAR(itinerary.total_cost, 16.53, 0.005);
  EXPECT_NEAR(itinerary.total_cost,
              UserTravelCost(instance, plan, 0), 1e-12);
  EXPECT_NEAR(itinerary.total_utility, 1.3, 1e-12);
  EXPECT_TRUE(itinerary.within_budget);
}

TEST(ItineraryTest, FlagsOverBudget) {
  Instance instance = MakePaperInstance();
  instance.set_user_budget(0, 5.0);
  const Itinerary itinerary =
      BuildItinerary(instance, MakePaperPlan(), 0);
  EXPECT_FALSE(itinerary.within_budget);
}

TEST(ItineraryTest, FlagsConflicts) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(0, kE1);
  plan.Add(0, kE3);  // overlaps e1
  const Itinerary itinerary = BuildItinerary(instance, plan, 0);
  EXPECT_FALSE(itinerary.conflict_free);
}

TEST(ItineraryTest, FeesIncludedInCost) {
  std::vector<User> users = {{{0, 0}, 50.0}};
  std::vector<Event> events = {{{3, 4}, 0, 1, {0, 60}, /*fee=*/7.0}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.5);
  Plan plan(1, 1);
  plan.Add(0, 0);
  const Itinerary itinerary = BuildItinerary(instance, plan, 0);
  EXPECT_DOUBLE_EQ(itinerary.total_fees, 7.0);
  EXPECT_DOUBLE_EQ(itinerary.total_travel, 10.0);  // 5 out + 5 home
  EXPECT_DOUBLE_EQ(itinerary.total_cost, 17.0);
}

TEST(ItineraryTest, BuildAllSkipsIdleUsers) {
  const Instance instance = MakePaperInstance();
  Plan plan(5, 4);
  plan.Add(1, kE3);
  plan.Add(4, kE4);
  const std::vector<Itinerary> all = BuildAllItineraries(instance, plan);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].user, 1);
  EXPECT_EQ(all[1].user, 4);
}

TEST(ItineraryTest, ToStringMentionsEventsAndFlags) {
  const Instance instance = MakePaperInstance();
  const Itinerary ok = BuildItinerary(instance, MakePaperPlan(), 0);
  const std::string rendered = ok.ToString();
  EXPECT_NE(rendered.find("u0"), std::string::npos);
  EXPECT_NE(rendered.find("e1"), std::string::npos);  // event id e1 == 1? e... ids
  EXPECT_EQ(rendered.find("OVER BUDGET"), std::string::npos);

  Instance broke = MakePaperInstance();
  broke.set_user_budget(0, 1.0);
  const std::string over =
      BuildItinerary(broke, MakePaperPlan(), 0).ToString();
  EXPECT_NE(over.find("OVER BUDGET"), std::string::npos);
}

}  // namespace
}  // namespace gepc
