#include "benchutil/table.h"

#include <gtest/gtest.h>

#include "benchutil/measure.h"

namespace gepc {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"a", "long-header"});
  table.AddRow({"xx", "y"});
  const std::string out = table.ToString();
  // Header line, separator, one row.
  EXPECT_NE(out.find("a   long-header"), std::string::npos);
  EXPECT_NE(out.find("xx  y"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTableTest, MultipleRowsKeepOrder) {
  TextTable table({"k", "v"});
  table.AddRow({"first", "1"});
  table.AddRow({"second", "2"});
  const std::string out = table.ToString();
  EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(FormatUtilityTest, PlainSmallScientificLarge) {
  EXPECT_EQ(FormatUtility(12.345), "12.35");
  EXPECT_EQ(FormatUtility(34306.0), "34306");
  EXPECT_EQ(FormatUtility(5.903e7), "5.903e+07");
}

TEST(FormatSecondsTest, PrecisionBands) {
  EXPECT_EQ(FormatSeconds(0.0441), "0.0441");
  EXPECT_EQ(FormatSeconds(1.32), "1.32");
  EXPECT_EQ(FormatSeconds(12383.0), "12383");
}

TEST(FormatMegabytesTest, OneDecimal) {
  EXPECT_EQ(FormatMegabytes(3 * 1024 * 1024 + 950 * 1024), "3.9");
  EXPECT_EQ(FormatMegabytes(0), "0.0");
}

TEST(RunMeasuredTest, MeasuresElapsedTime) {
  const Measurement m = RunMeasured([] {
    volatile double x = 0.0;
    for (int i = 0; i < 2000000; ++i) x += 1.0;
  });
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_LT(m.seconds, 10.0);
  EXPECT_GE(m.peak_bytes, 0);
}

TEST(RunMeasuredTest, CapturesOutputByReference) {
  int out = 0;
  RunMeasured([&] { out = 42; });
  EXPECT_EQ(out, 42);
}

}  // namespace
}  // namespace gepc
