// GCKP1 checkpoint subsystem: deterministic byte-level round-trips,
// canonical file naming, atomic publication, newest-first listing, and
// retention pruning. The corruption-fuzz counterpart (every byte flipped /
// every truncation) lives in ckpt_corruption_test.cc.

#include "ckpt/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "tests/paper_example.h"

namespace gepc {
namespace {

namespace fs = std::filesystem;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

std::string MakeDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  EXPECT_FALSE(ec) << ec.message();
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(CheckpointChecksumTest, StableAndSensitive) {
  const std::string bytes = "GCKP1 checksum probe";
  const uint64_t sum = CheckpointChecksum(bytes.data(), bytes.size());
  EXPECT_EQ(sum, CheckpointChecksum(bytes.data(), bytes.size()));
  std::string flipped = bytes;
  flipped[0] ^= 1;
  EXPECT_NE(sum, CheckpointChecksum(flipped.data(), flipped.size()));
  // FNV-1a offset basis for the empty range — a fixed, documented anchor.
  EXPECT_EQ(CheckpointChecksum(nullptr, 0), 14695981039346656037ull);
}

TEST(CheckpointFileNameTest, ZeroPaddedSoLexicographicIsVersionOrder) {
  EXPECT_EQ(CheckpointFileName(7), "ckpt-00000000000000000007.gckp");
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(100));
}

TEST(CheckpointEncodeTest, RoundTripPreservesStateAndBytes) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  auto bytes = EncodeCheckpoint(instance, plan, 42);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ASSERT_TRUE(bytes->rfind("GCKP1 42 ", 0) == 0) << bytes->substr(0, 40);

  auto decoded = DecodeCheckpoint(*bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, 42u);
  EXPECT_EQ(decoded->instance.num_users(), instance.num_users());
  EXPECT_EQ(decoded->instance.num_events(), instance.num_events());
  EXPECT_DOUBLE_EQ(decoded->plan.TotalUtility(decoded->instance),
                   plan.TotalUtility(instance));

  // Determinism: re-encoding the decoded state is byte-identical.
  auto again = EncodeCheckpoint(decoded->instance, decoded->plan, 42);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bytes, *again);
}

TEST(CheckpointEncodeTest, VersionIsPartOfTheBytes) {
  const Instance instance = MakePaperInstance();
  const Plan plan = MakePaperPlan();
  auto a = EncodeCheckpoint(instance, plan, 1);
  auto b = EncodeCheckpoint(instance, plan, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(*a, *b);
}

TEST(CheckpointWriteTest, PublishesUnderCanonicalNameWithExactBytes) {
  const std::string dir = MakeDir("ckpt_write");
  auto path = WriteCheckpoint(dir, MakePaperInstance(), MakePaperPlan(), 5);
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(fs::path(*path).filename().string(), CheckpointFileName(5));

  auto expected = EncodeCheckpoint(MakePaperInstance(), MakePaperPlan(), 5);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(ReadFile(*path), *expected);
  // No temp files left behind.
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);

  auto loaded = LoadCheckpoint(*path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->version, 5u);
}

TEST(CheckpointWriteTest, MissingDirectoryFailsCleanly) {
  auto path = WriteCheckpoint(::testing::TempDir() + "/ckpt_no_such_dir",
                              MakePaperInstance(), MakePaperPlan(), 1);
  EXPECT_FALSE(path.ok());
}

TEST(CheckpointLoadTest, MissingFileIsNotFound) {
  auto loaded = LoadCheckpoint(::testing::TempDir() + "/ckpt_nope.gckp");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointListTest, NewestFirstAndStrictNameFilter) {
  const std::string dir = MakeDir("ckpt_list");
  for (const uint64_t version : {3u, 1u, 12u}) {
    ASSERT_TRUE(
        WriteCheckpoint(dir, MakePaperInstance(), MakePaperPlan(), version)
            .ok());
  }
  // Non-checkpoint files are ignored, not errors.
  std::ofstream(dir + "/README.txt") << "not a checkpoint";
  std::ofstream(dir + "/ckpt-junk.gckp") << "bad name";

  auto list = ListCheckpoints(dir);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].version, 12u);
  EXPECT_EQ((*list)[1].version, 3u);
  EXPECT_EQ((*list)[2].version, 1u);
}

TEST(CheckpointListTest, MissingDirectoryIsEmptyNotError) {
  auto list = ListCheckpoints(::testing::TempDir() + "/ckpt_list_missing");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_TRUE(list->empty());
}

TEST(CheckpointPruneTest, KeepsNewestRetainAndReportsSurvivors) {
  const std::string dir = MakeDir("ckpt_prune");
  for (uint64_t version = 1; version <= 5; ++version) {
    ASSERT_TRUE(
        WriteCheckpoint(dir, MakePaperInstance(), MakePaperPlan(), version)
            .ok());
  }
  auto survivors = PruneCheckpoints(dir, 2);
  ASSERT_TRUE(survivors.ok()) << survivors.status().ToString();
  ASSERT_EQ(survivors->size(), 2u);
  EXPECT_EQ((*survivors)[0].version, 5u);
  EXPECT_EQ((*survivors)[1].version, 4u);

  auto list = ListCheckpoints(dir);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].version, 5u);
  EXPECT_EQ((*list)[1].version, 4u);
}

TEST(CheckpointPruneTest, RetainBelowOneIsClampedToOne) {
  const std::string dir = MakeDir("ckpt_prune_clamp");
  for (uint64_t version = 1; version <= 3; ++version) {
    ASSERT_TRUE(
        WriteCheckpoint(dir, MakePaperInstance(), MakePaperPlan(), version)
            .ok());
  }
  auto survivors = PruneCheckpoints(dir, 0);
  ASSERT_TRUE(survivors.ok());
  ASSERT_EQ(survivors->size(), 1u);
  EXPECT_EQ((*survivors)[0].version, 3u);
}

}  // namespace
}  // namespace gepc
