#include "sched/schedule.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/friendship.h"
#include "fault/fault.h"

namespace gepc {
namespace {

ScheduleProblem SmallProblem(uint64_t seed = 7) {
  ScheduleGenConfig config;
  config.num_users = 60;
  config.num_drafts = 3;
  config.candidates_per_draft = 3;
  config.seed = seed;
  return GenerateScheduleProblem(config);
}

class SchedTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Reset(); }
  void TearDown() override { fault::Registry::Global().Reset(); }
};

TEST_F(SchedTest, GenerateIsDeterministicAndValid) {
  const ScheduleProblem a = SmallProblem(3);
  const ScheduleProblem b = SmallProblem(3);
  ASSERT_TRUE(a.Validate().ok());
  ASSERT_EQ(a.users.size(), 60u);
  ASSERT_EQ(a.drafts.size(), 3u);
  for (size_t d = 0; d < a.drafts.size(); ++d) {
    EXPECT_EQ(a.drafts[d].interest, b.drafts[d].interest);
    ASSERT_EQ(a.drafts[d].candidates.size(), 3u);
    for (size_t c = 0; c < 3u; ++c) {
      EXPECT_EQ(a.drafts[d].candidates[c].slot,
                b.drafts[d].candidates[c].slot);
      EXPECT_EQ(a.drafts[d].candidates[c].capacity,
                b.drafts[d].candidates[c].capacity);
    }
  }
}

TEST_F(SchedTest, ValidateRejectsInterestSizeMismatch) {
  ScheduleProblem problem = SmallProblem();
  problem.drafts[0].interest.pop_back();
  EXPECT_EQ(problem.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveSchedule(problem).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SchedTest, FingerprintIsCanonical) {
  EXPECT_EQ(ScheduleFingerprint({0, 1, 2}), ScheduleFingerprint({0, 1, 2}));
  EXPECT_NE(ScheduleFingerprint({0, 1, 2}), ScheduleFingerprint({0, 2, 1}));
  EXPECT_NE(ScheduleFingerprint({0, -1}), ScheduleFingerprint({0, 0}));
  EXPECT_NE(ScheduleFingerprint({}), ScheduleFingerprint({0}));
}

TEST_F(SchedTest, MaterializeBuildsOnlyChosenDrafts) {
  const ScheduleProblem problem = SmallProblem();
  const std::vector<int> choice = {1, -1, 0};
  const Instance instance = MaterializeSchedule(problem, choice);
  EXPECT_EQ(instance.num_users(), 60);
  ASSERT_EQ(instance.num_events(), 2);  // draft 1 omitted
  const ScheduleCandidate& first = problem.drafts[0].candidates[1];
  EXPECT_EQ(instance.event(0).time, first.slot);
  EXPECT_EQ(instance.event(0).upper_bound, first.capacity);
  EXPECT_LE(instance.event(0).lower_bound, first.capacity);
  // Interest columns ride along unchanged.
  for (int i = 0; i < instance.num_users(); ++i) {
    EXPECT_EQ(instance.utility(i, 0),
              problem.drafts[0].interest[static_cast<size_t>(i)]);
    EXPECT_EQ(instance.utility(i, 1),
              problem.drafts[2].interest[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(instance.Validate().ok());
}

TEST_F(SchedTest, SearchIsDeterministicPerSeedAcrossThreadCounts) {
  const ScheduleProblem problem = SmallProblem(11);
  ScheduleOptions options;
  options.seed = 5;
  options.threads = 1;
  auto one = SolveSchedule(problem, options);
  options.threads = 4;
  auto four = SolveSchedule(problem, options);
  ASSERT_TRUE(one.ok() && four.ok());
  EXPECT_EQ(one->choice, four->choice);
  EXPECT_EQ(one->score, four->score);  // bitwise
  EXPECT_EQ(one->total_utility, four->total_utility);
  EXPECT_EQ(one->attendance, four->attendance);
  EXPECT_EQ(one->stats.oracle_calls + one->stats.cache_hits,
            four->stats.oracle_calls + four->stats.cache_hits);
}

TEST_F(SchedTest, MemoizationDoesNotChangeTheResult) {
  const ScheduleProblem problem = SmallProblem(13);
  ScheduleOptions memoized;
  memoized.seed = 2;
  ScheduleOptions naive = memoized;
  naive.memoize = false;
  auto a = SolveSchedule(problem, memoized);
  auto b = SolveSchedule(problem, naive);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->choice, b->choice);
  EXPECT_EQ(a->score, b->score);
  EXPECT_EQ(b->stats.cache_hits, 0);
  EXPECT_GE(b->stats.oracle_calls, a->stats.oracle_calls);
}

TEST_F(SchedTest, SharedCacheAmortizesAcrossLambdaSweep) {
  const ScheduleProblem problem = SmallProblem(17);
  FriendshipConfig fc;
  fc.seed = 18;
  const FriendshipGraph graph = GenerateFriendshipGraph(problem.users, fc);

  // Cache-sharing contract: every sharer arms the SAME graph; only lambda
  // varies (at lambda 0 the recorded pair counts weigh nothing).
  ScheduleCache cache;
  ScheduleOptions plain;
  plain.seed = 3;
  plain.affinity.graph = &graph;
  plain.affinity.lambda = 0.0;
  auto first = SolveSchedule(problem, plain, &cache);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(cache.size(), 0);

  // Evals are lambda-independent, so a search at a different lambda reuses
  // the same cache entries instead of re-solving.
  ScheduleOptions social = plain;
  social.affinity.lambda = 0.5;
  auto second = SolveSchedule(problem, social, &cache);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->stats.cache_hits, 0);
  EXPECT_LT(second->stats.oracle_calls, first->stats.oracle_calls);
  // The affinity-aware score includes the pair term.
  EXPECT_GE(second->score, second->total_utility);
  EXPECT_EQ(second->affinity_utility, second->score);

  // Cache hits must not change WHAT the search finds — only what it pays:
  // a fresh, unshared search at the same lambda lands on the same schedule.
  auto fresh = SolveSchedule(problem, social);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(second->choice, fresh->choice);
  EXPECT_EQ(second->score, fresh->score);
}

TEST_F(SchedTest, LambdaZeroGraphReducesToPureAttendance) {
  const ScheduleProblem problem = SmallProblem(19);
  FriendshipConfig fc;
  const FriendshipGraph graph = GenerateFriendshipGraph(problem.users, fc);
  ScheduleOptions plain;
  plain.seed = 4;
  ScheduleOptions zero = plain;
  zero.affinity.graph = &graph;
  zero.affinity.lambda = 0.0;
  auto a = SolveSchedule(problem, plain);
  auto b = SolveSchedule(problem, zero);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->choice, b->choice);
  EXPECT_EQ(a->score, b->score);
  EXPECT_EQ(b->affinity_utility, b->total_utility);
}

TEST_F(SchedTest, EstimateScheduleIsDeterministic) {
  const ScheduleProblem problem = SmallProblem(23);
  const std::vector<int> choice = {0, 1, 2};
  const ScheduleEval a = EstimateSchedule(problem, choice);
  const ScheduleEval b = EstimateSchedule(problem, choice);
  EXPECT_EQ(a.total_utility, b.total_utility);
  EXPECT_EQ(a.attendance, b.attendance);
  EXPECT_TRUE(a.degraded);
  EXPECT_GE(a.attendance, 0);
}

TEST_F(SchedTest, CandidateFaultSkipsDeterministically) {
  const ScheduleProblem problem = SmallProblem(29);
  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.skip = 1;
  spec.count = 2;
  fault::Registry::Global().Arm("sched.candidate", spec);
  ScheduleOptions options;
  options.seed = 6;
  options.threads = 3;
  auto faulted = SolveSchedule(problem, options);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_EQ(faulted->stats.skipped_candidates, 2);

  // Same arming, same result — fault decisions are taken sequentially at
  // wave-build time, never on a worker thread.
  fault::Registry::Global().Reset();
  fault::Registry::Global().Arm("sched.candidate", spec);
  options.threads = 1;
  auto again = SolveSchedule(problem, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(faulted->choice, again->choice);
  EXPECT_EQ(faulted->score, again->score);
}

TEST_F(SchedTest, AllCandidatesSkippedLeavesDraftUnscheduled) {
  const ScheduleProblem problem = SmallProblem(31);
  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.count = 1000000;  // every candidate hit fires
  fault::Registry::Global().Arm("sched.candidate", spec);
  auto result = SolveSchedule(problem);
  ASSERT_TRUE(result.ok());
  for (const int c : result->choice) EXPECT_EQ(c, -1);
  EXPECT_EQ(result->stats.oracle_calls, 0);
  EXPECT_EQ(result->score, 0.0);
}

TEST_F(SchedTest, OracleFaultDegradesToEstimateAndIsNeverCached) {
  const ScheduleProblem problem = SmallProblem(37);
  fault::FaultSpec spec;
  spec.code = StatusCode::kInternal;
  spec.count = 3;
  fault::Registry::Global().Arm("sched.oracle", spec);
  ScheduleCache cache;
  ScheduleOptions options;
  options.seed = 8;
  auto result = SolveSchedule(problem, options, &cache);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.degraded_candidates, 3);
  // Degraded evals never enter the cache: every cached entry is real.
  ScheduleEval eval;
  for (int d = 0; d < 3; ++d) {
    for (int c = 0; c < 3; ++c) {
      std::vector<int> probe(3, -1);
      probe[static_cast<size_t>(d)] = c;
      if (cache.Lookup(ScheduleFingerprint(probe), &eval)) {
        EXPECT_FALSE(eval.degraded);
      }
    }
  }
}

TEST_F(SchedTest, EnumerateRejectsOversizedProducts) {
  ScheduleGenConfig config;
  config.num_users = 10;
  config.num_drafts = 4;
  config.candidates_per_draft = 4;
  const ScheduleProblem problem = GenerateScheduleProblem(config);
  auto result = EnumerateSchedule(problem, {}, nullptr, /*max_configs=*/8);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SchedTest, ResultCarriesMaterializedInstanceAndPlan) {
  const ScheduleProblem problem = SmallProblem(41);
  auto result = SolveSchedule(problem);
  ASSERT_TRUE(result.ok());
  int scheduled = 0;
  for (const int c : result->choice) {
    if (c >= 0) ++scheduled;
  }
  EXPECT_EQ(result->instance.num_events(), scheduled);
  EXPECT_EQ(result->plan.num_users(),
            static_cast<int>(problem.users.size()));
  EXPECT_EQ(result->plan.TotalUtility(result->instance),
            result->total_utility);
  EXPECT_EQ(static_cast<int>(result->plan.TotalAssignments()),
            result->attendance);
}

TEST_F(SchedTest, ForUsersGeneratorCoversThePopulation) {
  const ScheduleProblem base = SmallProblem(43);
  ScheduleGenConfig config;
  config.num_drafts = 2;
  config.candidates_per_draft = 2;
  config.seed = 44;
  const ScheduleProblem derived =
      GenerateScheduleProblemForUsers(base.users, config);
  ASSERT_TRUE(derived.Validate().ok());
  EXPECT_EQ(derived.users.size(), base.users.size());
  ASSERT_EQ(derived.drafts.size(), 2u);
  EXPECT_EQ(derived.drafts[0].interest.size(), base.users.size());
}

}  // namespace
}  // namespace gepc
