#include "gepc/regret_greedy.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "gepc/greedy.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;

TEST(RegretGreedyTest, FeasibleOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcRegret(instance, copies);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
  for (int i = 0; i < instance.num_users(); ++i) {
    const auto& held = result->copy_plan.copies_of_user[static_cast<size_t>(i)];
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        EXPECT_FALSE(copies.CopiesConflict(instance, held[a], held[b]));
      }
    }
    EXPECT_LE(CopyTourCost(instance, copies, i, held),
              instance.user(i).budget + 1e-9);
  }
}

TEST(RegretGreedyTest, DeterministicWithoutSeed) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto a = SolveXiGepcRegret(instance, copies);
  auto b = SolveXiGepcRegret(instance, copies);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->copy_plan.user_of_copy, b->copy_plan.user_of_copy);
}

TEST(RegretGreedyTest, ForcedPlacementWinsOverBigRegret) {
  // e0 is attendable by exactly one user (must place now even though its
  // utility regret is nominally small); e1 has two candidates.
  std::vector<User> users = {{{0, 0}, 100.0}, {{0, 0}, 100.0}};
  std::vector<Event> events = {{{1, 0}, 1, 1, {0, 10}},
                               {{0, 1}, 1, 1, {0, 10}}};  // conflict pair
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.2);  // only u0 can attend e0
  instance.set_utility(0, 1, 0.9);
  instance.set_utility(1, 1, 0.3);
  const CopyMap copies(instance);
  auto result = SolveXiGepcRegret(instance, copies);
  ASSERT_TRUE(result.ok());
  const Plan plan = CollapseToPlan(instance, copies, result->copy_plan);
  // u0 must take e0 (forced); e1 then goes to u1 despite lower utility.
  EXPECT_TRUE(plan.Contains(0, 0));
  EXPECT_TRUE(plan.Contains(1, 1));
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
}

TEST(RegretGreedyTest, CountsOrphansWhenUnplaceable) {
  std::vector<User> users = {{{0, 0}, 1.0}};
  std::vector<Event> events = {{{50, 50}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  const CopyMap copies(instance);
  auto result = SolveXiGepcRegret(instance, copies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 1);
}

TEST(RegretGreedyTest, CompetitiveWithRandomOrderGreedy) {
  double regret_total = 0.0;
  double greedy_total = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.mean_eta = 6.0;
    config.mean_xi = 2.0;
    config.seed = seed * 97;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok());
    const CopyMap copies(*instance);
    auto regret = SolveXiGepcRegret(*instance, copies);
    GreedyOptions greedy_options;
    greedy_options.seed = seed;
    auto greedy = SolveXiGepcGreedy(*instance, copies, greedy_options);
    ASSERT_TRUE(regret.ok() && greedy.ok());
    regret_total += CollapseToPlan(*instance, copies, regret->copy_plan)
                        .TotalUtility(*instance);
    greedy_total += CollapseToPlan(*instance, copies, greedy->copy_plan)
                        .TotalUtility(*instance);
  }
  // Regret insertion should be at least competitive in aggregate.
  EXPECT_GE(regret_total, 0.95 * greedy_total);
}

}  // namespace
}  // namespace gepc
