// In-process tests of the epoll front end (src/net/server.h) against stub
// handlers: handshake + session ids, request/response correlation,
// pipelining, admission control under a saturated op pool (Status
// rejection while the accept loop stays live), read/op pool isolation,
// shutdown-from-handler, and the net.* fault-injection points.

#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "net/frame.h"
#include "service/dispatch.h"
#include "service/planning_service.h"
#include "tests/paper_example.h"

namespace gepc {
namespace net {
namespace {

/// Minimal blocking client for tests.
class TestClient {
 public:
  bool Connect(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool Send(FrameType type, const std::string& payload,
            bool compress = false) {
    const std::string wire = EncodeFrame(type, payload, compress);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n = write(fd_, wire.data() + off, wire.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks for the next frame; false on EOF/error.
  bool Recv(Frame* out) {
    char buffer[65536];
    Status error;
    while (true) {
      const auto next = decoder_.Pop(out, &error);
      if (next == FrameDecoder::Next::kFrame) return true;
      if (next == FrameDecoder::Next::kError) return false;
      const ssize_t n = read(fd_, buffer, sizeof(buffer));
      if (n <= 0) return false;
      decoder_.Feed(buffer, static_cast<size_t>(n));
    }
  }

  /// Hello -> Welcome; returns the Welcome payload ("" on failure).
  std::string Handshake() {
    if (!Send(FrameType::kHello, "{}")) return "";
    Frame frame;
    if (!Recv(&frame) || frame.type != FrameType::kWelcome) return "";
    return frame.payload;
  }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  ~TestClient() { Close(); }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

NetServerOptions SmallOptions() {
  NetServerOptions options;
  options.port = 0;
  options.read_workers = 1;
  options.op_workers = 1;
  return options;
}

HandlerResult Echo(const std::string& request) {
  return {"echo:" + request, false};
}

TEST(NetServerTest, HandshakeGrantsDistinctSessions) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());

  TestClient a;
  TestClient b;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  const std::string welcome_a = a.Handshake();
  const std::string welcome_b = b.Handshake();
  ASSERT_NE(welcome_a, "");
  ASSERT_NE(welcome_b, "");
  EXPECT_NE(welcome_a.find("\"session\":"), std::string::npos);
  EXPECT_NE(welcome_a.find("\"frame_version\":1"), std::string::npos);
  EXPECT_NE(welcome_a, welcome_b);  // distinct session ids
  server.Stop();
}

TEST(NetServerTest, WelcomeCarriesExtraFields) {
  NetServer server(SmallOptions(), Echo, nullptr,
                   "\"users\":500,\"events\":40");
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  const std::string welcome = client.Handshake();
  EXPECT_NE(welcome.find("\"users\":500"), std::string::npos) << welcome;
  EXPECT_NE(welcome.find("\"events\":40"), std::string::npos) << welcome;
  server.Stop();
}

TEST(NetServerTest, RequestBeforeHelloIsAProtocolError) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(FrameType::kRequest, "{\"cmd\":\"stats\"}"));
  Frame frame;
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_EQ(frame.type, FrameType::kStatus);
  EXPECT_NE(frame.payload.find("hello required"), std::string::npos);
  // The server closes the connection afterwards.
  EXPECT_FALSE(client.Recv(&frame));
  EXPECT_GE(server.Counters().protocol_errors, 1u);
  server.Stop();
}

TEST(NetServerTest, EchoesResponsesAndCountsFrames) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  for (int i = 0; i < 10; ++i) {
    const std::string request = "req-" + std::to_string(i);
    ASSERT_TRUE(client.Send(FrameType::kRequest, request));
    Frame frame;
    ASSERT_TRUE(client.Recv(&frame));
    EXPECT_EQ(frame.type, FrameType::kResponse);
    EXPECT_EQ(frame.payload, "echo:" + request);
  }
  const NetServerCounters counters = server.Counters();
  EXPECT_GE(counters.frames_in, 11u);   // hello + 10 requests
  EXPECT_GE(counters.frames_out, 11u);  // welcome + 10 responses
  EXPECT_EQ(counters.connections_accepted, 1u);
  server.Stop();
}

TEST(NetServerTest, PipelinedRequestsAllComplete) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  constexpr int kBurst = 50;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.Send(FrameType::kRequest, std::to_string(i)));
  }
  int got = 0;
  Frame frame;
  while (got < kBurst && client.Recv(&frame)) {
    if (frame.type == FrameType::kResponse) ++got;
  }
  EXPECT_EQ(got, kBurst);
  server.Stop();
}

TEST(NetServerTest, CompressedRequestsAndResponsesRoundTrip) {
  NetServerOptions options = SmallOptions();
  options.compress = true;
  NetServer server(options, Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  // Big repetitive payload: client compresses the request, server (with
  // compress on) compresses the response; both sides must inflate.
  std::string request;
  for (int i = 0; i < 500; ++i) request += "{\"cmd\":\"stats\"}";
  ASSERT_TRUE(client.Send(FrameType::kRequest, request, /*compress=*/true));
  Frame frame;
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_EQ(frame.payload, "echo:" + request);
  EXPECT_TRUE(frame.compressed);
  server.Stop();
}

TEST(NetServerTest, GarbageBytesGetStatusThenClose) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_GT(write(client.fd(), garbage.data(), garbage.size()), 0);
  Frame frame;
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_EQ(frame.type, FrameType::kStatus);
  EXPECT_FALSE(client.Recv(&frame));  // closed
  server.Stop();
}

TEST(NetServerTest, SaturatedOpPoolRejectsWithoutStallingAccepts) {
  // One op worker parked on a latch + a 1-slot op queue: the first request
  // occupies the worker, the second fills the queue, the third must be
  // rejected with a Status frame — while a brand-new client can still
  // connect and handshake (the accept loop never blocked).
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  NetServerOptions options = SmallOptions();
  options.op_queue_capacity = 1;
  auto blocking_handler = [&](const std::string& request) -> HandlerResult {
    if (request == "block") {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    return {"done:" + request, false};
  };
  NetServer server(options, blocking_handler);
  ASSERT_TRUE(server.Start().ok());

  TestClient writer;
  ASSERT_TRUE(writer.Connect(server.port()));
  ASSERT_NE(writer.Handshake(), "");
  ASSERT_TRUE(writer.Send(FrameType::kRequest, "block"));   // parks worker
  // Wait until the worker actually picked the job up, then fill the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(writer.Send(FrameType::kRequest, "queued"));  // fills queue

  // Saturation: this one must bounce with a Status frame, quickly.
  std::string rejection;
  for (int attempt = 0; attempt < 100 && rejection.empty(); ++attempt) {
    ASSERT_TRUE(writer.Send(FrameType::kRequest, "bounce"));
    Frame frame;
    ASSERT_TRUE(writer.Recv(&frame));
    if (frame.type == FrameType::kStatus) rejection = frame.payload;
    // A Response here would mean the queue drained (it cannot: the worker
    // is parked), so anything else is a test failure.
    ASSERT_EQ(frame.type, FrameType::kStatus);
  }
  EXPECT_NE(rejection.find("saturated"), std::string::npos) << rejection;
  EXPECT_GE(server.Counters().rejected_ops, 1u);

  // The accept loop is alive: a fresh client handshakes while the op pool
  // is still wedged.
  TestClient fresh;
  ASSERT_TRUE(fresh.Connect(server.port()));
  EXPECT_NE(fresh.Handshake(), "");

  // Unblock; the parked and queued requests complete in order.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  Frame frame;
  ASSERT_TRUE(writer.Recv(&frame));
  EXPECT_EQ(frame.payload, "done:block");
  ASSERT_TRUE(writer.Recv(&frame));
  EXPECT_EQ(frame.payload, "done:queued");
  server.Stop();
}

TEST(NetServerTest, ReadsFlowWhileOpPoolIsSaturated) {
  // Router sends "op*" to the op pool (wedged) and everything else to the
  // read pool — reads must keep completing.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  NetServerOptions options = SmallOptions();
  options.op_queue_capacity = 1;
  auto handler = [&](const std::string& request) -> HandlerResult {
    if (request == "op-block") {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    return {"done:" + request, false};
  };
  auto router = [](const std::string& request) {
    return request.rfind("op", 0) == 0;
  };
  NetServer server(options, handler, router);
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  ASSERT_TRUE(client.Send(FrameType::kRequest, "op-block"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.Send(FrameType::kRequest, "op-queued"));

  // Reads complete while the op pool is parked.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Send(FrameType::kRequest, "read-" + std::to_string(i)));
    Frame frame;
    ASSERT_TRUE(client.Recv(&frame));
    EXPECT_EQ(frame.type, FrameType::kResponse);
    EXPECT_EQ(frame.payload, "done:read-" + std::to_string(i));
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  Frame frame;
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_EQ(frame.payload, "done:op-block");
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_EQ(frame.payload, "done:op-queued");
  server.Stop();
}

TEST(NetServerTest, MaxConnectionsRefusesTheOverflowClient) {
  NetServerOptions options = SmallOptions();
  options.max_connections = 2;
  NetServer server(options, Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient a;
  TestClient b;
  ASSERT_TRUE(a.Connect(server.port()));
  ASSERT_TRUE(b.Connect(server.port()));
  ASSERT_NE(a.Handshake(), "");
  ASSERT_NE(b.Handshake(), "");
  TestClient overflow;
  ASSERT_TRUE(overflow.Connect(server.port()));
  Frame frame;
  ASSERT_TRUE(overflow.Recv(&frame));
  EXPECT_EQ(frame.type, FrameType::kStatus);
  EXPECT_NE(frame.payload.find("server full"), std::string::npos);
  EXPECT_FALSE(overflow.Recv(&frame));  // closed
  EXPECT_GE(server.Counters().connections_refused, 1u);
  // Existing sessions are unaffected.
  ASSERT_TRUE(a.Send(FrameType::kRequest, "still-alive"));
  ASSERT_TRUE(a.Recv(&frame));
  EXPECT_EQ(frame.payload, "echo:still-alive");
  server.Stop();
}

TEST(NetServerTest, ShutdownRequestAcksThenStopsTheServer) {
  auto handler = [](const std::string& request) -> HandlerResult {
    if (request == "shutdown") return {"{\"ok\":true,\"shutdown\":true}", true};
    return {"echo:" + request, false};
  };
  NetServer server(SmallOptions(), handler);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  ASSERT_TRUE(client.Send(FrameType::kRequest, "shutdown"));
  Frame frame;
  ASSERT_TRUE(client.Recv(&frame));  // the ack arrives before the stop
  EXPECT_EQ(frame.type, FrameType::kResponse);
  EXPECT_NE(frame.payload.find("\"shutdown\":true"), std::string::npos);
  server.WaitForStop();
  EXPECT_TRUE(server.stopped());
  server.Stop();
}

TEST(NetServerTest, AcceptFaultDropsTheConnection) {
  fault::Registry::Global().Reset();
  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  spec.count = 1;  // only the first accept
  fault::Registry::Global().Arm("net.accept", spec);
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());

  TestClient victim;
  ASSERT_TRUE(victim.Connect(server.port()));
  Frame frame;
  EXPECT_FALSE(victim.Recv(&frame));  // dropped before any frame

  // The next connection (fault exhausted) works.
  TestClient survivor;
  ASSERT_TRUE(survivor.Connect(server.port()));
  EXPECT_NE(survivor.Handshake(), "");
  EXPECT_GE(fault::Registry::Global().FireCount("net.accept"), 1u);
  server.Stop();
  fault::Registry::Global().Reset();
}

TEST(NetServerTest, ReadFaultResetsTheConnection) {
  fault::Registry::Global().Reset();
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");

  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  fault::Registry::Global().Arm("net.read", spec);
  ASSERT_TRUE(client.Send(FrameType::kRequest, "doomed"));
  Frame frame;
  EXPECT_FALSE(client.Recv(&frame));  // connection torn down by the fault
  fault::Registry::Global().Reset();

  // Later connections are healthy again.
  TestClient after;
  ASSERT_TRUE(after.Connect(server.port()));
  EXPECT_NE(after.Handshake(), "");
  server.Stop();
}

TEST(NetServerTest, WriteFaultResetsTheConnection) {
  fault::Registry::Global().Reset();
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");

  fault::FaultSpec spec;
  spec.code = StatusCode::kUnavailable;
  fault::Registry::Global().Arm("net.write", spec);
  ASSERT_TRUE(client.Send(FrameType::kRequest, "doomed"));
  Frame frame;
  EXPECT_FALSE(client.Recv(&frame));  // response write was faulted
  fault::Registry::Global().Reset();
  server.Stop();
}

TEST(NetServerTest, StopClosesClientsAndIsIdempotent) {
  NetServer server(SmallOptions(), Echo);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  server.Stop();
  server.Stop();
  EXPECT_TRUE(server.stopped());
  Frame frame;
  EXPECT_FALSE(client.Recv(&frame));  // EOF after stop
}

TEST(NetServerTest, ServesTheRealDispatchProtocol) {
  // End-to-end with the production wiring (the same glue gepc_serve uses):
  // CommandDispatcher over a real PlanningService, routed by command kind.
  auto service = PlanningService::Create(
      testing_support::MakePaperInstance(), testing_support::MakePaperPlan());
  ASSERT_TRUE(service.ok()) << service.status();
  const CommandDispatcher dispatcher(service->get(), DispatchDefaults{});
  NetServer server(
      SmallOptions(),
      [&dispatcher](const std::string& request) {
        const DispatchOutcome outcome = dispatcher.Dispatch(request);
        return HandlerResult{outcome.response, outcome.shutdown};
      },
      [](const std::string& request) {
        return ClassifyCommand(ExtractCmdHint(request)) != CommandKind::kRead;
      });
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_NE(client.Handshake(), "");
  Frame frame;
  ASSERT_TRUE(client.Send(FrameType::kRequest,
                          R"({"id":1,"cmd":"apply","op":"budget:0:75.5"})"));
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_NE(frame.payload.find("\"id\":1"), std::string::npos);
  EXPECT_NE(frame.payload.find("\"applied\":true"), std::string::npos);
  ASSERT_TRUE(
      client.Send(FrameType::kRequest, R"({"id":2,"cmd":"stats"})"));
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_NE(frame.payload.find("\"id\":2"), std::string::npos);
  EXPECT_NE(frame.payload.find("\"ops_applied\":1"), std::string::npos);
  // Shutdown over the wire stops the server after acking.
  ASSERT_TRUE(
      client.Send(FrameType::kRequest, R"({"id":3,"cmd":"shutdown"})"));
  ASSERT_TRUE(client.Recv(&frame));
  EXPECT_NE(frame.payload.find("\"shutdown\":true"), std::string::npos);
  server.WaitForStop();
  EXPECT_TRUE(server.stopped());
}

}  // namespace
}  // namespace net
}  // namespace gepc
