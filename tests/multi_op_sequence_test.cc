// Long-horizon incremental planning: the paper treats multiple changes as
// repeated single atomic operations (Sec. II-B); these tests drive long
// sequences through one IncrementalPlanner and check the state never decays
// into infeasibility, plus "inverse pair" behaviours (tighten then relax).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "iep/planner.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE2;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(MultiOpSequenceTest, TightenThenRelaxEtaRecoversCapacityUse) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());

  // Tighten: eta_4 -> 1 evicts u4 (Example 6).
  ASSERT_TRUE(planner->Apply(AtomicOp::UpperBoundChange(kE4, 1)).ok());
  EXPECT_EQ(planner->plan().attendance(kE4), 1);

  // Relax back to 5: the re-offer lets users return to e4 if it still
  // fits their (possibly re-arranged) plans.
  auto relaxed = planner->Apply(AtomicOp::UpperBoundChange(kE4, 5));
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed->negative_impact, 0);
  EXPECT_GE(relaxed->plan.attendance(kE4), 1);
}

TEST(MultiOpSequenceTest, RepeatedXiIncreasesSaturateAtEta) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  for (int xi = 2; xi <= 5; ++xi) {
    auto result = planner->Apply(AtomicOp::LowerBoundChange(kE4, xi));
    ASSERT_TRUE(result.ok()) << "xi=" << xi;
    EXPECT_LE(result->plan.attendance(kE4), 5);
  }
  // eta_4 = 5, so attendance can never exceed 5 no matter how xi moved.
  EXPECT_LE(planner->plan().attendance(kE4), 5);
}

TEST(MultiOpSequenceTest, ZeroThenRestoreUtility) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  ASSERT_TRUE(planner->Apply(AtomicOp::UtilityChange(2, kE2, 0.0)).ok());
  EXPECT_FALSE(planner->plan().Contains(2, kE2));
  // The displacement re-offer compensates u3 with e4 (0.5), which then
  // blocks e2's return (e2 and e4 touch) — restoring interest must keep
  // the plan feasible and add nothing infeasible, with zero impact.
  EXPECT_TRUE(planner->plan().Contains(2, kE4));
  auto restored = planner->Apply(AtomicOp::UtilityChange(2, kE2, 0.7));
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->plan.Contains(2, kE2));
  EXPECT_EQ(restored->negative_impact, 0);
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(planner->instance(), restored->plan, validation).ok());
}

TEST(MultiOpSequenceTest, FiftyRandomOpsNeverBreakFeasibility) {
  GeneratorConfig config;
  config.num_users = 70;
  config.num_events = 16;
  config.mean_eta = 10.0;
  config.mean_xi = 3.0;
  config.seed = 424242;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  auto initial = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(initial.ok());
  auto planner = IncrementalPlanner::Create(*instance, initial->plan);
  ASSERT_TRUE(planner.ok());

  Rng rng(31337);
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  for (int step = 0; step < 50; ++step) {
    const Instance& current = planner->instance();
    const EventId event = static_cast<EventId>(
        rng.UniformUint64(static_cast<uint64_t>(current.num_events())));
    const UserId user = static_cast<UserId>(
        rng.UniformUint64(static_cast<uint64_t>(current.num_users())));
    AtomicOp op;
    switch (step % 5) {
      case 0:
        op = AtomicOp::UpperBoundChange(
            event, std::max(0, current.event(event).upper_bound - 2));
        break;
      case 1:
        op = AtomicOp::LowerBoundChange(
            event, std::min(current.event(event).upper_bound,
                            current.event(event).lower_bound + 1));
        break;
      case 2: {
        const Interval old = current.event(event).time;
        op = AtomicOp::TimeChange(event, {old.start + 45, old.end + 45});
        break;
      }
      case 3:
        op = AtomicOp::UtilityChange(user, event, rng.UniformDouble());
        break;
      default:
        op = AtomicOp::BudgetChange(user, current.user(user).budget * 0.9);
        break;
    }
    auto result = planner->Apply(op);
    ASSERT_TRUE(result.ok()) << "step " << step << ": " << result.status();
    ASSERT_TRUE(
        ValidatePlan(planner->instance(), planner->plan(), validation).ok())
        << "step " << step;
  }
}

TEST(MultiOpSequenceTest, ShrinkingEveryBudgetEmptiesPlansGracefully) {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  ASSERT_TRUE(planner.ok());
  for (int i = 0; i < 5; ++i) {
    auto result = planner->Apply(AtomicOp::BudgetChange(i, 0.0));
    ASSERT_TRUE(result.ok());
  }
  // Budget 0 means no one can travel anywhere: all plans empty.
  EXPECT_EQ(planner->plan().TotalAssignments(), 0);
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(planner->instance(), planner->plan(), validation).ok());
}

}  // namespace
}  // namespace gepc
