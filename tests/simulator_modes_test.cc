// Cross-mode simulator properties: the incremental and re-plan maintenance
// modes see identical drift streams (same seed), so their per-day op counts
// match and both end feasible; incremental maintenance must disturb users
// no more than wholesale re-planning over the run.

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace gepc {
namespace {

SimulationConfig BaseConfig(uint64_t seed) {
  SimulationConfig config;
  config.base.num_users = 60;
  config.base.num_events = 12;
  config.base.mean_eta = 8.0;
  config.base.mean_xi = 2.0;
  config.base.seed = 99;
  config.num_days = 5;
  config.new_events_per_day = 1;
  config.seed = seed;
  return config;
}

TEST(SimulatorModesTest, SameSeedSameDriftStream) {
  SimulationConfig incremental = BaseConfig(4);
  incremental.incremental = true;
  SimulationConfig replan = BaseConfig(4);
  replan.incremental = false;

  auto a = RunSimulation(incremental);
  auto b = RunSimulation(replan);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->days.size(), b->days.size());
  // Drift generation depends only on the config seed and the evolving
  // instance; day-1 drift in particular is drawn from identical states.
  EXPECT_EQ(a->days[1].ops, b->days[1].ops);
}

TEST(SimulatorModesTest, IncrementalDisturbsNoMoreThanReplan) {
  int64_t incremental_total = 0;
  int64_t replan_total = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    SimulationConfig incremental = BaseConfig(seed);
    incremental.incremental = true;
    SimulationConfig replan = BaseConfig(seed);
    replan.incremental = false;
    auto a = RunSimulation(incremental);
    auto b = RunSimulation(replan);
    ASSERT_TRUE(a.ok() && b.ok());
    incremental_total += a->total_negative_impact;
    replan_total += b->total_negative_impact;
  }
  EXPECT_LE(incremental_total, replan_total);
}

TEST(SimulatorModesTest, UtilitiesStayComparable) {
  SimulationConfig incremental = BaseConfig(7);
  incremental.incremental = true;
  SimulationConfig replan = BaseConfig(7);
  replan.incremental = false;
  auto a = RunSimulation(incremental);
  auto b = RunSimulation(replan);
  ASSERT_TRUE(a.ok() && b.ok());
  // Tables VII-IX observation at simulation scale: incremental utility
  // tracks the re-planned utility, not collapses.
  EXPECT_GE(a->final_utility, 0.5 * b->final_utility);
}

}  // namespace
}  // namespace gepc
