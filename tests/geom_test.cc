#include "geom/point.h"

#include <gtest/gtest.h>

#include "geom/bounding_box.h"

namespace gepc {
namespace {

TEST(PointTest, DistanceMatchesPythagoras) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  const Point a{2.5, -1.0};
  const Point b{-3.0, 7.5};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, SquaredDistanceAgrees) {
  const Point a{0, 0};
  const Point b{3, 4};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
}

TEST(PointTest, PaperExampleDistances) {
  // Sec. II: D_1 = d(u1,e1) + d(e1,e2) + d(e2,u1) = sqrt17 + sqrt41 + 6.
  const Point u1{0, 0};
  const Point e1{1, -4};
  const Point e2{6, 0};
  EXPECT_NEAR(Distance(u1, e1), std::sqrt(17.0), 1e-12);
  EXPECT_NEAR(Distance(e1, e2), std::sqrt(41.0), 1e-12);
  EXPECT_NEAR(Distance(e2, u1), 6.0, 1e-12);
  EXPECT_NEAR(Distance(u1, e1) + Distance(e1, e2) + Distance(e2, u1), 16.53,
              0.005);
}

TEST(PointTest, EqualityAndStreaming) {
  EXPECT_TRUE((Point{1, 2} == Point{1, 2}));
  EXPECT_FALSE((Point{1, 2} == Point{2, 1}));
  std::ostringstream os;
  os << Point{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

TEST(BoundingBoxTest, FromExtentContainsInterior) {
  const BoundingBox box = BoundingBox::FromExtent(10, 5);
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({10, 5}));
  EXPECT_TRUE(box.Contains({5, 2.5}));
  EXPECT_FALSE(box.Contains({-0.1, 0}));
  EXPECT_FALSE(box.Contains({5, 5.1}));
}

TEST(BoundingBoxTest, ExtendGrows) {
  BoundingBox box;
  box.Extend({1, 2});
  box.Extend({-3, 5});
  EXPECT_DOUBLE_EQ(box.min_x, -3);
  EXPECT_DOUBLE_EQ(box.max_x, 1);
  EXPECT_DOUBLE_EQ(box.min_y, 2);
  EXPECT_DOUBLE_EQ(box.max_y, 5);
}

TEST(BoundingBoxTest, DiagonalAndDims) {
  const BoundingBox box = BoundingBox::FromExtent(3, 4);
  EXPECT_DOUBLE_EQ(box.Width(), 3);
  EXPECT_DOUBLE_EQ(box.Height(), 4);
  EXPECT_DOUBLE_EQ(box.Diagonal(), 5);
}

TEST(BoundingBoxTest, ClampProjectsOutsidePoints) {
  const BoundingBox box = BoundingBox::FromExtent(10, 10);
  EXPECT_EQ(box.Clamp({-5, 3}), (Point{0, 3}));
  EXPECT_EQ(box.Clamp({11, 12}), (Point{10, 10}));
  EXPECT_EQ(box.Clamp({4, 4}), (Point{4, 4}));
}

TEST(BoundingBoxTest, Center) {
  const BoundingBox box = BoundingBox::FromExtent(10, 6);
  EXPECT_EQ(box.Center(), (Point{5, 3}));
}

}  // namespace
}  // namespace gepc
