#include "temporal/interval_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace gepc {
namespace {

TEST(IntervalIndexTest, EmptyIndex) {
  IntervalIndex index;
  EXPECT_EQ(index.size(), 0);
  EXPECT_TRUE(index.Conflicting({0, 10}).empty());
  EXPECT_EQ(index.CountConflicting({0, 10}), 0);
  EXPECT_FALSE(index.AnyConflict({0, 10}));
}

TEST(IntervalIndexTest, SingleInterval) {
  IntervalIndex index({{10, 20}});
  EXPECT_EQ(index.Conflicting({15, 25}), (std::vector<int>{0}));
  EXPECT_EQ(index.Conflicting({21, 30}), (std::vector<int>{}));
  EXPECT_EQ(index.Conflicting({0, 9}), (std::vector<int>{}));
  // Touching conflicts (paper rule).
  EXPECT_EQ(index.Conflicting({20, 30}), (std::vector<int>{0}));
  EXPECT_EQ(index.Conflicting({0, 10}), (std::vector<int>{0}));
}

TEST(IntervalIndexTest, ReturnsAscendingIds) {
  IntervalIndex index({{50, 60}, {0, 100}, {55, 58}, {200, 300}});
  EXPECT_EQ(index.Conflicting({54, 56}), (std::vector<int>{0, 1, 2}));
}

TEST(IntervalIndexTest, CountMatchesListSize) {
  IntervalIndex index({{0, 10}, {5, 15}, {20, 30}, {25, 35}});
  for (Minutes s = 0; s < 40; s += 3) {
    const Interval q{s, s + 4};
    EXPECT_EQ(index.CountConflicting(q),
              static_cast<int>(index.Conflicting(q).size()));
  }
}

TEST(IntervalIndexTest, IntervalAccessor) {
  IntervalIndex index({{3, 7}, {8, 9}});
  EXPECT_EQ(index.interval(1), (Interval{8, 9}));
}

TEST(IntervalIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(515);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformUint64(60));
    std::vector<Interval> intervals;
    for (int i = 0; i < n; ++i) {
      const Minutes start = static_cast<Minutes>(rng.UniformInt(0, 800));
      intervals.push_back(
          {start, start + static_cast<Minutes>(rng.UniformInt(1, 120))});
    }
    IntervalIndex index(intervals);
    for (int q = 0; q < 25; ++q) {
      const Minutes start = static_cast<Minutes>(rng.UniformInt(0, 900));
      const Interval query{start,
                           start + static_cast<Minutes>(rng.UniformInt(1, 150))};
      std::vector<int> expected;
      for (int i = 0; i < n; ++i) {
        if (Conflicts(intervals[static_cast<size_t>(i)], query)) {
          expected.push_back(i);
        }
      }
      EXPECT_EQ(index.Conflicting(query), expected)
          << "trial " << trial << " query " << q;
    }
  }
}

TEST(IntervalIndexTest, AnyConflictShortCircuitsCorrectly) {
  IntervalIndex index({{0, 10}, {100, 110}});
  EXPECT_TRUE(index.AnyConflict({5, 7}));
  EXPECT_TRUE(index.AnyConflict({105, 120}));
  EXPECT_FALSE(index.AnyConflict({50, 60}));
}

TEST(IntervalIndexTest, WorksWithIdenticalIntervals) {
  IntervalIndex index({{5, 10}, {5, 10}, {5, 10}});
  EXPECT_EQ(index.Conflicting({7, 8}), (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace gepc
