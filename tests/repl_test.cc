// Replication subsystem (src/repl/): wire codecs, checkpoint-ship +
// live-tail round trips over a real socket pair, follower write redirects,
// lag gauges, retention pinning, promotion, and the three repl.* fault
// injection points.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "ckpt/checkpoint.h"
#include "common/logging.h"
#include "fault/fault.h"
#include "iep/op_spec.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "repl/follower.h"
#include "repl/source.h"
#include "repl/wire.h"
#include "service/dispatch.h"
#include "service/planning_service.h"
#include "service/torture.h"
#include "tests/paper_example.h"

namespace gepc {
namespace repl {
namespace {

namespace fs = std::filesystem;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

AtomicOp Op(const std::string& spec) {
  auto op = ParseOpSpec(spec);
  EXPECT_TRUE(op.ok()) << spec << ": " << op.status().ToString();
  return *op;
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

TEST(ReplWireTest, SyncRequestRoundTrip) {
  SyncRequest request;
  request.have = 41;
  request.need_base = true;
  auto parsed = ParseSyncRequest(EncodeSyncRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->have, 41u);
  EXPECT_TRUE(parsed->need_base);

  request.need_base = false;
  parsed = ParseSyncRequest(EncodeSyncRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->need_base);
}

TEST(ReplWireTest, SyncRequestRejectsGarbage) {
  EXPECT_FALSE(ParseSyncRequest("not json").ok());
  EXPECT_FALSE(ParseSyncRequest("{}").ok());
  EXPECT_FALSE(ParseSyncRequest(R"({"have":-3})").ok());
}

TEST(ReplWireTest, CkptBeginRoundTrip) {
  CkptBegin begin;
  begin.version = 12;
  begin.bytes = 4096;
  auto parsed = ParseCkptBegin(EncodeCkptBegin(begin));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, 12u);
  EXPECT_EQ(parsed->bytes, 4096u);
  EXPECT_FALSE(ParseCkptBegin(R"({"version":1})").ok());
}

TEST(ReplWireTest, HeartbeatRoundTrip) {
  auto parsed = ParseHeartbeat(EncodeHeartbeat(99));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, 99u);
  EXPECT_FALSE(ParseHeartbeat("{}").ok());
}

TEST(ReplWireTest, RowRoundTrip) {
  const AtomicOp op = Op("budget:1:250");
  auto encoded = EncodeRow(7, op);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  // "<seq> <GOPS1 row>", no trailing newline: the follower can append
  // "\n" and journal the byte-identical row.
  EXPECT_EQ(encoded->substr(0, 2), "7 ");
  EXPECT_EQ(encoded->back() != '\n', true);

  auto parsed = ParseRow(*encoded);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sequence, 7u);
  auto reencoded = EncodeRow(7, parsed->op);
  ASSERT_TRUE(reencoded.ok());
  EXPECT_EQ(*encoded, *reencoded);
}

TEST(ReplWireTest, RowRejectsDefects) {
  const AtomicOp op = Op("eta:0:5");
  auto encoded = EncodeRow(3, op);
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(ParseRow("").ok());
  EXPECT_FALSE(ParseRow("nodigits").ok());
  EXPECT_FALSE(ParseRow("0 " + encoded->substr(2)).ok());  // seq must be > 0
  EXPECT_FALSE(ParseRow("3").ok());                        // row text missing
  EXPECT_FALSE(ParseRow("3 complete garbage").ok());
}

TEST(ReplWireTest, ReplErrorRoundTrip) {
  const std::string payload = EncodeReplError("sync \"died\"");
  EXPECT_EQ(ParseReplError(payload), "sync \"died\"");
  // Lenient by design: a mangled error payload still yields something.
  EXPECT_FALSE(ParseReplError("not json").empty());
}

// ---------------------------------------------------------------------------
// End-to-end source/follower fixture
// ---------------------------------------------------------------------------

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::Registry::Global().Reset();
    obs::SetEnabled(true);
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kError);
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/repl_" + info->name();
    std::error_code ec;
    fs::remove_all(root_, ec);
    fs::create_directories(root_ + "/primary/ckpt", ec);
    fs::create_directories(root_ + "/follower/ckpt", ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  void TearDown() override {
    follower_.reset();
    source_.reset();
    server_.reset();
    primary_.reset();
    fault::Registry::Global().Reset();
    SetLogLevel(previous_level_);
  }

  void StartPrimary(int checkpoint_every = 0) {
    ServiceOptions options;
    options.journal_path = root_ + "/primary/j.gops";
    options.checkpoint_dir = root_ + "/primary/ckpt";
    options.checkpoint_every = checkpoint_every;
    auto service =
        PlanningService::Create(MakePaperInstance(), MakePaperPlan(), options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    primary_ = std::move(*service);

    ReplicationSourceOptions source_options;
    source_options.journal_path = options.journal_path;
    source_options.checkpoint_dir = options.checkpoint_dir;
    source_options.heartbeat_interval_ms = 50;
    source_ = std::make_unique<ReplicationSource>(primary_.get(),
                                                  source_options);

    net::NetServerOptions server_options;
    server_options.port = 0;
    server_options.read_workers = 1;
    server_options.op_workers = 1;
    server_ = std::make_unique<net::NetServer>(
        std::move(server_options), [](const std::string&) {
          return net::HandlerResult{R"({"ok":false,"error":"repl only"})",
                                    false};
        });
    ASSERT_TRUE(source_->Attach(server_.get()).ok());
    ASSERT_TRUE(server_->Start().ok());
  }

  FollowerOptions FollowerOpts() const {
    FollowerOptions options;
    options.primary_port = server_->port();
    options.journal_path = root_ + "/follower/j.gops";
    options.checkpoint_dir = root_ + "/follower/ckpt";
    options.promote_after_ms = 0;  // tests promote manually
    options.heartbeat_timeout_ms = 1000;
    options.bootstrap_timeout_ms = 8000;
    options.reconnect_backoff_initial_ms = 20;
    options.reconnect_backoff_max_ms = 100;
    return options;
  }

  void StartFollower() {
    auto started = Follower::Start(FollowerOpts(), &role_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    follower_ = std::move(*started);
  }

  bool WaitForApplied(uint64_t want, int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (follower_->stats().applied >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  std::string StateOf(const PlanningService& service) {
    const auto snapshot = service.snapshot();
    auto state = SerializeServiceState(*snapshot->instance, *snapshot->plan,
                                       snapshot->version);
    EXPECT_TRUE(state.ok());
    return state.ok() ? *state : "";
  }

  std::string root_;
  LogLevel previous_level_ = LogLevel::kInfo;
  ServeRole role_;
  std::unique_ptr<PlanningService> primary_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<net::NetServer> server_;
  std::unique_ptr<Follower> follower_;
};

TEST_F(ReplTest, CheckpointBootstrapThenLiveTail) {
  StartPrimary();
  // Rows committed before the follower exists force a checkpoint ship: an
  // empty follower cannot bridge from the journal alone.
  ASSERT_TRUE(primary_->Apply(Op("budget:0:200")).applied);
  ASSERT_TRUE(primary_->Apply(Op("eta:1:4")).applied);
  StartFollower();
  EXPECT_TRUE(role_.follower.load());
  ASSERT_TRUE(WaitForApplied(2));
  EXPECT_EQ(follower_->stats().checkpoints_received +
                follower_->stats().rows_applied >
            0,
            true);

  // Live rows fan out through the commit hook.
  ASSERT_TRUE(primary_->Apply(Op("budget:2:300")).applied);
  ASSERT_TRUE(primary_->Apply(Op("xi:0:1")).applied);
  ASSERT_TRUE(WaitForApplied(4));

  EXPECT_EQ(StateOf(*follower_->service()), StateOf(*primary_));
  EXPECT_TRUE(follower_->stats().connected);

  const ReplicationSourceStats stats = source_->stats();
  EXPECT_EQ(stats.followers, 1u);
  EXPECT_EQ(stats.syncs_completed, 1u);
  EXPECT_GE(stats.rows_shipped, 2u);
}

TEST_F(ReplTest, LagGaugesExposedAndCaughtUp) {
  StartPrimary();
  StartFollower();
  ASSERT_TRUE(primary_->Apply(Op("budget:0:150")).applied);
  ASSERT_TRUE(WaitForApplied(1));
  // Give the next heartbeat a chance to confirm the catch-up.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto lag_rows =
      obs::Registry::Global().GetGauge("gepc_repl_lag_rows", "");
  const auto lag_ms = obs::Registry::Global().GetGauge("gepc_repl_lag_ms", "");
  EXPECT_EQ(lag_rows->value(), 0);
  EXPECT_EQ(lag_ms->value(), 0);

  const std::string text = obs::Registry::Global().RenderPrometheusText();
  EXPECT_NE(text.find("gepc_repl_lag_rows"), std::string::npos);
  EXPECT_NE(text.find("gepc_repl_lag_ms"), std::string::npos);
  EXPECT_NE(text.find("gepc_repl_rows_shipped_total"), std::string::npos);
}

TEST_F(ReplTest, DispatcherRedirectsWritesWhileFollowing) {
  StartPrimary();
  StartFollower();
  ASSERT_TRUE(WaitForApplied(0));

  DispatchDefaults defaults;
  const CommandDispatcher dispatcher(follower_->service(), defaults, &role_);

  const DispatchOutcome apply =
      dispatcher.Dispatch(R"({"cmd":"apply","op":"budget:0:120"})");
  EXPECT_NE(apply.response.find("\"redirect\""), std::string::npos);
  EXPECT_NE(apply.response.find("127.0.0.1:"), std::string::npos);

  const DispatchOutcome rebuild = dispatcher.Dispatch(R"({"cmd":"rebuild"})");
  EXPECT_NE(rebuild.response.find("\"redirect\""), std::string::npos);

  // Reads flow: the follower serves snapshots like a primary.
  const DispatchOutcome stats = dispatcher.Dispatch(R"({"cmd":"stats"})");
  EXPECT_NE(stats.response.find("\"role\":\"follower\""), std::string::npos);
  const DispatchOutcome read =
      dispatcher.Dispatch(R"({"cmd":"query_user","user":0})");
  EXPECT_NE(read.response.find("\"ok\":true"), std::string::npos);
}

TEST_F(ReplTest, PromotionFlipsRoleAndAcceptsWrites) {
  StartPrimary();
  ASSERT_TRUE(primary_->Apply(Op("budget:0:175")).applied);
  StartFollower();
  ASSERT_TRUE(WaitForApplied(1));

  // Kill the primary the way a crash looks from the follower: sockets die.
  source_->Stop();
  server_->Stop();
  const std::string final_primary_state = StateOf(*primary_);
  primary_.reset();

  follower_->Stop();  // joins the tail thread; PromoteNow is race-free
  ASSERT_TRUE(follower_->PromoteNow().ok());
  EXPECT_TRUE(follower_->promoted());
  EXPECT_FALSE(role_.follower.load());
  EXPECT_EQ(StateOf(*follower_->service()), final_primary_state);

  const ApplyOutcome outcome = follower_->service()->Apply(Op("eta:0:6"));
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(outcome.sequence, 2u);

  // Idempotent: a second promotion is a no-op success.
  EXPECT_TRUE(follower_->PromoteNow().ok());

  DispatchDefaults defaults;
  const CommandDispatcher dispatcher(follower_->service(), defaults, &role_);
  const DispatchOutcome stats = dispatcher.Dispatch(R"({"cmd":"stats"})");
  EXPECT_NE(stats.response.find("\"role\":\"primary\""), std::string::npos);
}

TEST_F(ReplTest, RetentionPinHoldsCompactionForSyncingFollower) {
  // checkpoint_every=2 would normally compact the journal up to each new
  // checkpoint; a registered follower's pin must hold the base back.
  StartPrimary(/*checkpoint_every=*/2);
  StartFollower();
  ASSERT_TRUE(WaitForApplied(0));
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(primary_->Apply(Op("budget:1:" + std::to_string(150 + i)))
                    .applied);
  }
  ASSERT_TRUE(WaitForApplied(6));

  // The live follower's pin rides the fan-out, so compaction may advance —
  // but never beyond what the follower has been sent.
  const ServiceStats stats = primary_->Stats();
  EXPECT_LE(stats.journal_base_sequence, 6u);

  // With the follower detached the pin releases and checkpointing compacts
  // freely again.
  follower_->Stop();
  follower_.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto outcome = primary_->Checkpoint();
  EXPECT_TRUE(outcome.published) << outcome.error;
  EXPECT_EQ(primary_->retention_pin(), kNoRetentionPin);
}

TEST_F(ReplTest, FollowerRestartUsesLocalStateThenResumesTail) {
  StartPrimary();
  ASSERT_TRUE(primary_->Apply(Op("budget:0:210")).applied);
  StartFollower();
  ASSERT_TRUE(WaitForApplied(1));
  const uint64_t checkpoints_before = follower_->stats().checkpoints_received;
  follower_->Stop();
  follower_.reset();
  role_.follower.store(false);
  role_.primary.clear();

  // More rows land while the follower is down.
  ASSERT_TRUE(primary_->Apply(Op("eta:1:5")).applied);
  ASSERT_TRUE(primary_->Apply(Op("budget:2:140")).applied);

  // Restart: local checkpoint + journal bridge the gap, so no second
  // checkpoint ship is needed.
  StartFollower();
  ASSERT_TRUE(WaitForApplied(3));
  EXPECT_EQ(StateOf(*follower_->service()), StateOf(*primary_));
  EXPECT_EQ(follower_->stats().checkpoints_received, 0u)
      << "restart should bridge from local state, not re-ship (first boot "
         "shipped "
      << checkpoints_before << ")";
}

// ---------------------------------------------------------------------------
// Fault injection (docs/fault-injection.md, repl.* rows)
// ---------------------------------------------------------------------------

TEST_F(ReplTest, ShipFaultFailsSyncThenRetrySucceeds) {
  StartPrimary();
  ASSERT_TRUE(primary_->Apply(Op("budget:0:160")).applied);
  ASSERT_TRUE(fault::ArmFromSpec("repl.ship=unavailable:count=1").ok());
  StartFollower();  // first sync dies with kReplError; reconnect succeeds
  ASSERT_TRUE(WaitForApplied(1));
  EXPECT_GE(source_->stats().sync_errors, 1u);
  EXPECT_EQ(StateOf(*follower_->service()), StateOf(*primary_));
}

TEST_F(ReplTest, TailFaultForcesResyncWithoutLoss) {
  StartPrimary();
  StartFollower();
  ASSERT_TRUE(WaitForApplied(0));
  ASSERT_TRUE(fault::ArmFromSpec("repl.tail=unavailable:count=1").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(primary_->Apply(Op("budget:0:" + std::to_string(120 + i)))
                    .applied);
  }
  ASSERT_TRUE(WaitForApplied(4));
  EXPECT_EQ(StateOf(*follower_->service()), StateOf(*primary_));
  // The poisoned row tore the session; the follower reconnected.
  EXPECT_GE(follower_->stats().reconnects, 1u);
}

TEST_F(ReplTest, PromoteFaultAbortsThenSucceeds) {
  StartPrimary();
  StartFollower();
  ASSERT_TRUE(WaitForApplied(0));
  source_->Stop();
  server_->Stop();
  primary_.reset();
  follower_->Stop();

  ASSERT_TRUE(fault::ArmFromSpec("repl.promote=unavailable:count=1").ok());
  const Status aborted = follower_->PromoteNow();
  EXPECT_FALSE(aborted.ok());
  EXPECT_FALSE(follower_->promoted());
  EXPECT_TRUE(role_.follower.load());

  ASSERT_TRUE(follower_->PromoteNow().ok());
  EXPECT_TRUE(follower_->promoted());
  EXPECT_FALSE(role_.follower.load());
}

}  // namespace
}  // namespace repl
}  // namespace gepc
