#include "flow/hungarian.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flow/min_cost_flow.h"

namespace gepc {
namespace {

TEST(HungarianTest, OneByOne) {
  HungarianSolver solver(1, 1, {3.5});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->column_of_row, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(result->total_cost, 3.5);
}

TEST(HungarianTest, ClassicThreeByThree) {
  // Optimal: r0->c1 (1), r1->c0 (2), r2->c2 (1) = 4.
  HungarianSolver solver(3, 3,
                         {4, 1, 3,
                          2, 0, 5,
                          3, 2, 1});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost, 4.0);
  EXPECT_EQ(result->column_of_row[0], 1);
  EXPECT_EQ(result->column_of_row[1], 0);
  EXPECT_EQ(result->column_of_row[2], 2);
}

TEST(HungarianTest, RectangularLeavesColumnsFree) {
  // 2 rows, 4 cols: picks the two cheapest compatible columns.
  HungarianSolver solver(2, 4,
                         {9, 1, 9, 9,
                          9, 9, 9, 2});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost, 3.0);
  EXPECT_EQ(result->column_of_row[0], 1);
  EXPECT_EQ(result->column_of_row[1], 3);
}

TEST(HungarianTest, ForbiddenPairsRespected) {
  constexpr double F = HungarianSolver::kForbidden;
  HungarianSolver solver(2, 2,
                         {F, 1,
                          1, F});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost, 2.0);
  EXPECT_EQ(result->column_of_row[0], 1);
  EXPECT_EQ(result->column_of_row[1], 0);
}

TEST(HungarianTest, InfeasibleWhenRowFullyForbidden) {
  constexpr double F = HungarianSolver::kForbidden;
  HungarianSolver solver(2, 2,
                         {F, F,
                          1, 1});
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(HungarianTest, InfeasibleWhenRowsCompeteForOneColumn) {
  constexpr double F = HungarianSolver::kForbidden;
  HungarianSolver solver(2, 2,
                         {1, F,
                          1, F});
  auto result = solver.Solve();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(HungarianTest, BadDimensionsRejected) {
  HungarianSolver tall(3, 2, std::vector<double>(6, 1.0));
  EXPECT_EQ(tall.Solve().status().code(), StatusCode::kInvalidArgument);
  HungarianSolver wrong_size(2, 2, {1.0});
  EXPECT_EQ(wrong_size.Solve().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HungarianTest, NegativeCostsHandled) {
  HungarianSolver solver(2, 2,
                         {-5, 0,
                          0, -5});
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->total_cost, -10.0);
}

TEST(HungarianTest, AgreesWithMinCostFlowOnRandomMatrices) {
  Rng rng(2027);
  for (int trial = 0; trial < 15; ++trial) {
    const int rows = 2 + static_cast<int>(rng.UniformUint64(5));
    const int cols = rows + static_cast<int>(rng.UniformUint64(3));
    std::vector<double> cost(static_cast<size_t>(rows) *
                             static_cast<size_t>(cols));
    for (double& c : cost) c = rng.UniformDouble(0.0, 10.0);

    HungarianSolver solver(rows, cols, cost);
    auto hungarian = solver.Solve();
    ASSERT_TRUE(hungarian.ok()) << "trial " << trial;

    MinCostFlow flow(rows + cols + 2);
    const int source = 0;
    const int sink = rows + cols + 1;
    for (int r = 0; r < rows; ++r) flow.AddEdge(source, 1 + r, 1, 0.0);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        flow.AddEdge(1 + r, 1 + rows + c, 1,
                     cost[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                          static_cast<size_t>(c)]);
      }
    }
    for (int c = 0; c < cols; ++c) flow.AddEdge(1 + rows + c, sink, 1, 0.0);
    auto mcmf = flow.Solve(source, sink);
    ASSERT_TRUE(mcmf.ok());
    ASSERT_EQ(mcmf->flow, rows);
    EXPECT_NEAR(hungarian->total_cost, mcmf->cost, 1e-6) << "trial " << trial;
  }
}

TEST(HungarianTest, AssignmentIsAPartialPermutation) {
  Rng rng(404);
  const int rows = 6;
  const int cols = 8;
  std::vector<double> cost(static_cast<size_t>(rows * cols));
  for (double& c : cost) c = rng.UniformDouble(0.0, 1.0);
  HungarianSolver solver(rows, cols, cost);
  auto result = solver.Solve();
  ASSERT_TRUE(result.ok());
  std::vector<bool> used(static_cast<size_t>(cols), false);
  for (int col : result->column_of_row) {
    ASSERT_GE(col, 0);
    ASSERT_LT(col, cols);
    EXPECT_FALSE(used[static_cast<size_t>(col)]) << "column reused";
    used[static_cast<size_t>(col)] = true;
  }
}

}  // namespace
}  // namespace gepc
