#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "geom/bounding_box.h"
#include "geom/point.h"

namespace gepc {
namespace {

std::vector<Point> RandomPoints(int count, double width, double height,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back(Point{rng.UniformDouble() * width,
                           rng.UniformDouble() * height});
  }
  return points;
}

std::vector<int> BruteRange(const std::vector<Point>& points,
                            const BoundingBox& box) {
  std::vector<int> hits;
  for (size_t i = 0; i < points.size(); ++i) {
    if (box.Contains(points[i])) hits.push_back(static_cast<int>(i));
  }
  return hits;
}

std::vector<int> BruteRadius(const std::vector<Point>& points,
                             const Point& center, double radius) {
  std::vector<int> hits;
  if (radius < 0.0) return hits;
  for (size_t i = 0; i < points.size(); ++i) {
    // Same criterion as GridIndex::RadiusQuery: squared-distance compare,
    // inclusive, so the cross-check cannot flake on the boundary.
    if (SquaredDistance(points[i], center) <= radius * radius) {
      hits.push_back(static_cast<int>(i));
    }
  }
  return hits;
}

TEST(GridIndexTest, RangeQueryMatchesBruteForceOnRandomClouds) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<Point> points = RandomPoints(200, 100.0, 80.0, seed);
    const GridIndex index(points);
    Rng rng(seed + 100);
    for (int q = 0; q < 50; ++q) {
      const double x0 = rng.UniformDouble() * 110.0 - 5.0;
      const double y0 = rng.UniformDouble() * 90.0 - 5.0;
      const BoundingBox box{x0, y0, x0 + rng.UniformDouble() * 40.0,
                            y0 + rng.UniformDouble() * 40.0};
      EXPECT_EQ(index.RangeQuery(box), BruteRange(points, box))
          << "seed " << seed << " query " << q;
    }
  }
}

TEST(GridIndexTest, RadiusQueryMatchesBruteForceOnRandomClouds) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    const std::vector<Point> points = RandomPoints(200, 100.0, 80.0, seed);
    const GridIndex index(points);
    Rng rng(seed + 100);
    for (int q = 0; q < 50; ++q) {
      const Point center{rng.UniformDouble() * 120.0 - 10.0,
                         rng.UniformDouble() * 100.0 - 10.0};
      const double radius = rng.UniformDouble() * 50.0;
      EXPECT_EQ(index.RadiusQuery(center, radius),
                BruteRadius(points, center, radius))
          << "seed " << seed << " query " << q;
    }
  }
}

TEST(GridIndexTest, DiskStraddlingCellBoundariesFindsAllHits) {
  // Points sitting exactly on / just beside cell edges with a forced cell
  // size, probed by disks centered on the edges — the straddling case a
  // one-cell-off bug would miss.
  std::vector<Point> points;
  for (int gx = 0; gx <= 4; ++gx) {
    for (int gy = 0; gy <= 4; ++gy) {
      const double x = gx * 10.0;
      const double y = gy * 10.0;
      points.push_back(Point{x, y});              // on the corner
      points.push_back(Point{x + 1e-9, y});       // just inside the next cell
      points.push_back(Point{x - 1e-9, y + 1e-9});
    }
  }
  const GridIndex index(points, /*cell_size=*/10.0);
  for (const Point& center :
       {Point{10.0, 10.0}, Point{20.0, 15.0}, Point{5.0, 30.0},
        Point{0.0, 0.0}, Point{40.0, 40.0}}) {
    for (double radius : {0.0, 1e-9, 5.0, 10.0, 14.2, 25.0}) {
      EXPECT_EQ(index.RadiusQuery(center, radius),
                BruteRadius(points, center, radius))
          << "center (" << center.x << "," << center.y << ") r " << radius;
    }
  }
}

TEST(GridIndexTest, DegenerateAllPointsCoincident) {
  // Zero-extent cloud: everything lands in one cell and the auto cell size
  // must not divide by zero.
  const std::vector<Point> points(50, Point{3.0, 4.0});
  const GridIndex index(points);
  EXPECT_EQ(index.RadiusQuery(Point{3.0, 4.0}, 0.0).size(), 50u);
  EXPECT_EQ(index.RadiusQuery(Point{0.0, 0.0}, 4.9).size(), 0u);
  EXPECT_EQ(index.RadiusQuery(Point{0.0, 0.0}, 5.0).size(), 50u);
  const BoundingBox everything{-10.0, -10.0, 10.0, 10.0};
  const std::vector<int> all = index.RangeQuery(everything);
  ASSERT_EQ(all.size(), 50u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(GridIndexTest, CollinearCloudsDoNotBreakCellSizing) {
  // Zero-height extent: auto-sizing must cope with a degenerate axis.
  std::vector<Point> points;
  for (int i = 0; i < 30; ++i) points.push_back(Point{i * 1.0, 7.0});
  const GridIndex index(points);
  EXPECT_EQ(index.RadiusQuery(Point{14.5, 7.0}, 1.0),
            BruteRadius(points, Point{14.5, 7.0}, 1.0));
  EXPECT_EQ(index.RadiusQuery(Point{0.0, 7.0}, 100.0).size(), 30u);
}

TEST(GridIndexTest, EmptyIndexAnswersEmpty) {
  const GridIndex index(std::vector<Point>{});
  EXPECT_EQ(index.num_points(), 0);
  EXPECT_TRUE(index.RadiusQuery(Point{0.0, 0.0}, 100.0).empty());
  EXPECT_TRUE(index.RangeQuery(BoundingBox{-1.0, -1.0, 1.0, 1.0}).empty());
}

TEST(GridIndexTest, NegativeRadiusReturnsNothing) {
  const GridIndex index(RandomPoints(20, 10.0, 10.0, 9));
  EXPECT_TRUE(index.RadiusQuery(Point{5.0, 5.0}, -1.0).empty());
}

TEST(GridIndexTest, ResultsAscendRegardlessOfLayout) {
  const std::vector<Point> points = RandomPoints(300, 50.0, 50.0, 11);
  const GridIndex index(points, /*cell_size=*/3.0);
  const std::vector<int> hits = index.RadiusQuery(Point{25.0, 25.0}, 20.0);
  EXPECT_FALSE(hits.empty());
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
}

}  // namespace
}  // namespace gepc
