// Acceptance anchor for the journaled service: a randomized 1k-op stream
// pushed through a live PlanningService must be exactly reconstructible by
// replaying its journal into a fresh planner — same plan, same total
// utility, same per-user assignments. This is what makes the journal a
// crash-recovery mechanism rather than a log.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "service/journal.h"
#include "service/planning_service.h"

namespace gepc {
namespace {

AtomicOp RandomOp(const Instance& instance, Rng* rng) {
  const int num_users = instance.num_users();
  const int num_events = instance.num_events();
  const int user = static_cast<int>(rng->UniformUint64(num_users));
  const int event = static_cast<int>(rng->UniformUint64(num_events));
  switch (rng->UniformUint64(6)) {
    case 0: {
      // Mostly valid eta changes; sometimes below current attendance or on
      // a bogus event so the rejected path is exercised too.
      const int eta = static_cast<int>(rng->UniformUint64(12));
      const int target =
          rng->Bernoulli(0.05) ? num_events + 3 : event;  // 5% invalid id
      return AtomicOp::UpperBoundChange(target, eta);
    }
    case 1:
      return AtomicOp::LowerBoundChange(event,
                                        static_cast<int>(rng->UniformUint64(6)));
    case 2: {
      const int start = static_cast<int>(rng->UniformUint64(20)) * 60;
      const int duration = 30 + static_cast<int>(rng->UniformUint64(4)) * 30;
      return AtomicOp::TimeChange(event, {start, start + duration});
    }
    case 3:
      return AtomicOp::LocationChange(
          event, {rng->UniformDouble(0.0, 100.0),
                  rng->UniformDouble(0.0, 100.0)});
    case 4:
      return AtomicOp::BudgetChange(user, rng->UniformDouble(10.0, 160.0));
    default:
      return AtomicOp::UtilityChange(user, event,
                                     rng->Bernoulli(0.2)
                                         ? 0.0
                                         : rng->UniformDouble(0.0, 1.0));
  }
}

TEST(ServiceDeterminismTest, ThousandOpJournalReplaysToIdenticalState) {
  GeneratorConfig config;
  config.num_users = 60;
  config.num_events = 12;
  config.mean_xi = 2;
  config.mean_eta = 8;
  config.seed = 20260806;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  auto solved = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const Instance base_instance = *instance;
  const Plan base_plan = solved->plan;

  const std::string journal_path =
      ::testing::TempDir() + "/determinism_1k.gops";
  std::remove(journal_path.c_str());

  ServiceOptions options;
  options.journal_path = journal_path;
  auto service = PlanningService::Create(*std::move(instance),
                                         std::move(solved->plan), options);
  ASSERT_TRUE(service.ok()) << service.status();

  Rng rng(7);
  uint64_t applied = 0;
  uint64_t rejected = 0;
  for (int i = 0; i < 1000; ++i) {
    const ApplyOutcome outcome =
        (*service)->Apply(RandomOp(base_instance, &rng));
    outcome.applied ? ++applied : ++rejected;
  }
  (*service)->Drain();
  const auto live = (*service)->snapshot();
  ASSERT_EQ(live->version, 1000u);
  (*service)->Shutdown();
  EXPECT_GT(rejected, 0u) << "stream should exercise the rejected path";
  EXPECT_GT(applied, 800u);

  auto replay = ReplayJournal(base_instance, base_plan, journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->ops_applied, applied);
  EXPECT_EQ(replay->ops_rejected, rejected);

  // Exact state reconstruction: plan, utility, per-user assignments.
  EXPECT_TRUE(replay->plan == *live->plan);
  EXPECT_DOUBLE_EQ(replay->total_utility, live->total_utility);
  for (int user = 0; user < base_instance.num_users(); ++user) {
    std::vector<EventId> from_replay = replay->plan.events_of(user);
    std::vector<EventId> from_live = live->plan->events_of(user);
    std::sort(from_replay.begin(), from_replay.end());
    std::sort(from_live.begin(), from_live.end());
    EXPECT_EQ(from_replay, from_live) << "user " << user;
  }

  // And a recovered *service* lands in the same state too.
  auto recovered =
      PlanningService::Recover(base_instance, base_plan, options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->snapshot()->version, 1000u);
  EXPECT_TRUE(*(*recovered)->snapshot()->plan == *live->plan);
  EXPECT_DOUBLE_EQ((*recovered)->snapshot()->total_utility,
                   live->total_utility);
}

}  // namespace
}  // namespace gepc
