// Property sweep comparing both approximation algorithms against the exact
// branch-and-bound oracle on small random instances: the approximations must
// stay feasible and respect the exact optimum as an upper bound, and their
// achieved ratios should not collapse to zero (the paper guarantees
// 1/(Uc_max - 1) - O(eps) and 1/(2 Uc_max) respectively).

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/exact.h"
#include "gepc/solver.h"

namespace gepc {
namespace {

Instance SmallRandomInstance(uint64_t seed) {
  GeneratorConfig config;
  config.num_users = 6;
  config.num_events = 5;
  config.num_groups = 3;
  config.mean_eta = 3.0;
  config.eta_spread = 0.4;
  config.mean_xi = 1.0;
  config.conflict_ratio = 0.4;
  config.budget_min_fraction = 0.5;
  config.budget_max_fraction = 1.2;
  config.seed = seed;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

class ApproxVsExact : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxVsExact, BothAlgorithmsBoundedByExactOptimum) {
  const Instance instance = SmallRandomInstance(GetParam());
  auto exact = SolveGepcExact(instance);
  ASSERT_TRUE(exact.ok()) << exact.status();
  if (!exact->feasible) GTEST_SKIP() << "instance infeasible for this seed";

  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto approx = SolveGepc(instance, options);
    ASSERT_TRUE(approx.ok()) << approx.status();

    // Feasibility of constraints 1-3 always holds.
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(instance, approx->plan, validation).ok())
        << GepcAlgorithmName(algorithm);

    // The exact optimum upper-bounds any feasible plan. When the
    // approximation missed some lower bound its plan is not comparable, so
    // only check the bound for fully feasible outputs.
    if (approx->events_below_lower_bound == 0) {
      EXPECT_LE(approx->total_utility, exact->total_utility + 1e-6)
          << GepcAlgorithmName(algorithm);
      // Loose sanity floor: a vanishing ratio would signal a broken solver.
      EXPECT_GE(approx->total_utility, 0.2 * exact->total_utility)
          << GepcAlgorithmName(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxVsExact,
                         ::testing::Range<uint64_t>(1, 21));

class FeasibilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FeasibilitySweep, MediumInstancesAlwaysValid) {
  GeneratorConfig config;
  config.num_users = 80;
  config.num_events = 15;
  config.mean_eta = 10.0;
  config.mean_xi = 3.0;
  config.seed = GetParam() * 7919;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(*instance, options);
    ASSERT_TRUE(result.ok()) << result.status();
    ValidationOptions validation;
    validation.check_lower_bounds = false;
    EXPECT_TRUE(ValidatePlan(*instance, result->plan, validation).ok())
        << GepcAlgorithmName(algorithm);
    // The xi-GEPC step placed all copies it could; shortfall must be tiny
    // on these satisfiable configurations.
    EXPECT_LE(result->events_below_lower_bound, 2)
        << GepcAlgorithmName(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilitySweep,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace gepc
