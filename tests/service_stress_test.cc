// Concurrency stress for PlanningService: multiple producer threads feed
// >= 10k atomic operations through the bounded queue while >= 4 reader
// threads hammer snapshots, itineraries and stats. Run under ASan/UBSan in
// CI (the sanitize job); the invariants checked here are the service's
// core guarantees: no op lost, snapshots internally consistent, journal
// replay reconstructs the final state.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "service/journal.h"
#include "service/planning_service.h"
#include "shard/sharded_solver.h"

namespace gepc {
namespace {

constexpr int kProducers = 2;
constexpr int kOpsPerProducer = 5000;  // 10k ops total
constexpr int kReaders = 4;

AtomicOp RandomBenignOp(int num_users, int num_events, Rng* rng) {
  const int user = static_cast<int>(rng->UniformUint64(num_users));
  const int event = static_cast<int>(rng->UniformUint64(num_events));
  switch (rng->UniformUint64(4)) {
    case 0:
      return AtomicOp::BudgetChange(user, rng->UniformDouble(20.0, 160.0));
    case 1:
      return AtomicOp::UtilityChange(user, event,
                                     rng->UniformDouble(0.0, 1.0));
    case 2:
      return AtomicOp::UpperBoundChange(event,
                                        6 + static_cast<int>(
                                                rng->UniformUint64(6)));
    default:
      return AtomicOp::LowerBoundChange(
          event, static_cast<int>(rng->UniformUint64(3)));
  }
}

TEST(ServiceStressTest, ProducersAndReadersRaceCleanly) {
  GeneratorConfig config;
  config.num_users = 50;
  config.num_events = 10;
  config.mean_xi = 2;
  config.mean_eta = 8;
  config.seed = 99;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  auto solved = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const Instance base_instance = *instance;
  const Plan base_plan = solved->plan;
  const int num_users = base_instance.num_users();
  const int num_events = base_instance.num_events();

  const std::string journal_path = ::testing::TempDir() + "/stress.gops";
  std::remove(journal_path.c_str());

  ServiceOptions options;
  options.journal_path = journal_path;
  options.queue_capacity = 64;  // small bound so producers hit backpressure
  auto service = PlanningService::Create(*std::move(instance),
                                         std::move(solved->plan), options);
  ASSERT_TRUE(service.ok()) << service.status();
  PlanningService& svc = **service;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> accepted{0};       // ops the queue took
  std::atomic<uint64_t> backpressured{0};  // TrySubmit refusals (queue full)

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back(
        [&svc, &accepted, &backpressured, p, num_users, num_events] {
          Rng rng(1000 + static_cast<uint64_t>(p));
          for (int i = 0; i < kOpsPerProducer; ++i) {
            // Mix blocking and non-blocking submission paths.
            if (i % 3 == 0) {
              auto ticket =
                  svc.TrySubmit(RandomBenignOp(num_users, num_events, &rng));
              if (!ticket.ok()) {
                // Backpressure: fall back to the blocking path.
                backpressured.fetch_add(1, std::memory_order_relaxed);
                svc.Submit(RandomBenignOp(num_users, num_events, &rng));
              }
            } else {
              svc.Submit(RandomBenignOp(num_users, num_events, &rng));
            }
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&svc, &done, &reads, r, num_users] {
      Rng rng(2000 + static_cast<uint64_t>(r));
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snap = svc.snapshot();
        ASSERT_NE(snap, nullptr);
        // Versions move forward only.
        ASSERT_GE(snap->version, last_version);
        last_version = snap->version;
        // A snapshot is internally consistent: the precomputed aggregates
        // match its own immutable plan + instance.
        ASSERT_DOUBLE_EQ(snap->total_utility,
                         snap->plan->TotalUtility(*snap->instance));
        ASSERT_EQ(snap->total_assignments, snap->plan->TotalAssignments());

        const int user = static_cast<int>(rng.UniformUint64(num_users));
        auto itinerary = svc.QueryUser(user);
        ASSERT_TRUE(itinerary.ok());
        const ServiceStats stats = svc.Stats();
        ASSERT_LE(stats.queue_high_water, stats.queue_capacity);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::thread& t : producers) t.join();
  svc.Drain();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const ServiceStats stats = svc.Stats();
  // Every accepted op was processed; the only "drops" are TrySubmit
  // refusals under backpressure, each of which was retried via Submit.
  EXPECT_EQ(stats.ops_applied + stats.ops_rejected, accepted.load());
  EXPECT_EQ(stats.ops_dropped, backpressured.load());
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_GT(reads.load(), 0u);
  const auto final_snap = svc.snapshot();
  EXPECT_EQ(final_snap->version, accepted.load());
  svc.Shutdown();

  // The journal replays to the exact final state even though the ops were
  // interleaved by two racing producers: the journal *is* the order.
  auto replay = ReplayJournal(base_instance, base_plan, journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->ops_applied, stats.ops_applied);
  EXPECT_EQ(replay->ops_rejected, stats.ops_rejected);
  EXPECT_TRUE(replay->plan == *final_snap->plan);
  EXPECT_DOUBLE_EQ(replay->total_utility, final_snap->total_utility);
}

TEST(ServiceStressTest, RebuildsRaceWithOpsAndReaders) {
  // Sharded rebuilds interleaved with atomic ops while readers hammer
  // snapshots — the writer thread runs the whole sharded engine (its own
  // inner thread pool) between ops, so this exercises exec + shard +
  // service together. Run under TSan in CI (the sanitize=thread job).
  GeneratorConfig config;
  config.num_users = 60;
  config.num_events = 12;
  config.mean_xi = 1;
  config.mean_eta = 6;
  config.seed = 7;
  config.budget_min_fraction = 0.1;
  config.budget_max_fraction = 0.3;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok()) << instance.status();
  auto solved = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const int num_users = instance->num_users();
  const int num_events = instance->num_events();
  auto service = PlanningService::Create(*std::move(instance),
                                         std::move(solved->plan));
  ASSERT_TRUE(service.ok()) << service.status();
  PlanningService& svc = **service;

  std::atomic<bool> done{false};
  std::thread producer([&svc, num_users, num_events] {
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
      svc.Submit(RandomBenignOp(num_users, num_events, &rng));
      if (i % 25 == 0) {
        ShardedGepcOptions options;
        options.shards = 3;
        options.threads = 4;
        svc.SubmitRebuild(options);
      }
    }
  });
  std::thread rebuilder([&svc] {
    for (int i = 0; i < 8; ++i) {
      ShardedGepcOptions options;
      options.shards = 2;
      options.threads = 2;
      const RebuildOutcome outcome = svc.Rebuild(options);
      ASSERT_TRUE(outcome.rebuilt) << outcome.error;
    }
  });
  std::thread reader([&svc, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = svc.snapshot();
      ASSERT_NE(snap, nullptr);
      ASSERT_DOUBLE_EQ(snap->total_utility,
                       snap->plan->TotalUtility(*snap->instance));
    }
  });

  producer.join();
  rebuilder.join();
  svc.Drain();
  done.store(true, std::memory_order_release);
  reader.join();

  const auto snap = svc.snapshot();
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(*snap->instance, *snap->plan, validation).ok());
}

}  // namespace
}  // namespace gepc
