#include "flow/min_cost_flow.h"

#include <gtest/gtest.h>

namespace gepc {
namespace {

TEST(MinCostFlowTest, SingleEdge) {
  MinCostFlow flow(2);
  const int e = flow.AddEdge(0, 1, 5, 2.0);
  auto result = flow.Solve(0, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->flow, 5);
  EXPECT_DOUBLE_EQ(result->cost, 10.0);
  EXPECT_EQ(flow.FlowOn(e), 5);
}

TEST(MinCostFlowTest, PrefersCheaperParallelPath) {
  MinCostFlow flow(4);
  // Two disjoint paths 0->1->3 (cost 1+1) and 0->2->3 (cost 5+5), cap 1 each.
  const int cheap_a = flow.AddEdge(0, 1, 1, 1.0);
  flow.AddEdge(1, 3, 1, 1.0);
  const int pricey_a = flow.AddEdge(0, 2, 1, 5.0);
  flow.AddEdge(2, 3, 1, 5.0);
  auto result = flow.Solve(0, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 2);
  EXPECT_DOUBLE_EQ(result->cost, 12.0);
  EXPECT_EQ(flow.FlowOn(cheap_a), 1);
  EXPECT_EQ(flow.FlowOn(pricey_a), 1);
}

TEST(MinCostFlowTest, RespectsBottleneck) {
  MinCostFlow flow(3);
  flow.AddEdge(0, 1, 10, 0.0);
  flow.AddEdge(1, 2, 3, 0.0);
  auto result = flow.Solve(0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 3);
}

TEST(MinCostFlowTest, DisconnectedGraphHasZeroFlow) {
  MinCostFlow flow(4);
  flow.AddEdge(0, 1, 5, 1.0);
  flow.AddEdge(2, 3, 5, 1.0);
  auto result = flow.Solve(0, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 0);
  EXPECT_DOUBLE_EQ(result->cost, 0.0);
}

TEST(MinCostFlowTest, HandlesNegativeEdgeCosts) {
  MinCostFlow flow(3);
  const int neg = flow.AddEdge(0, 1, 2, -3.0);
  flow.AddEdge(1, 2, 2, 1.0);
  auto result = flow.Solve(0, 2);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->flow, 2);
  EXPECT_DOUBLE_EQ(result->cost, -4.0);
  EXPECT_EQ(flow.FlowOn(neg), 2);
}

TEST(MinCostFlowTest, ChoosesMinCostAmongMaxFlows) {
  // Both paths reach flow 1, but 0->1->3 costs 2 and 0->2->3 costs 10;
  // max-flow is 1 either way so the cheap one must carry it.
  MinCostFlow flow(4);
  const int cheap = flow.AddEdge(0, 1, 1, 1.0);
  flow.AddEdge(1, 3, 1, 1.0);
  const int pricey = flow.AddEdge(0, 2, 1, 5.0);
  flow.AddEdge(2, 3, 1, 5.0);
  flow.AddEdge(3, 3, 0, 0.0);  // harmless self-loop with zero capacity
  MinCostFlow bounded(4);
  const int b_cheap = bounded.AddEdge(0, 1, 1, 1.0);
  bounded.AddEdge(1, 3, 1, 1.0);
  bounded.AddEdge(0, 2, 1, 5.0);
  bounded.AddEdge(2, 3, 1, 5.0);
  // Restrict the sink so only one unit fits.
  MinCostFlow tight(5);
  const int t_cheap = tight.AddEdge(0, 1, 1, 1.0);
  tight.AddEdge(1, 3, 1, 1.0);
  const int t_pricey = tight.AddEdge(0, 2, 1, 5.0);
  tight.AddEdge(2, 3, 1, 5.0);
  tight.AddEdge(3, 4, 1, 0.0);
  auto result = tight.Solve(0, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 1);
  EXPECT_DOUBLE_EQ(result->cost, 2.0);
  EXPECT_EQ(tight.FlowOn(t_cheap), 1);
  EXPECT_EQ(tight.FlowOn(t_pricey), 0);
  (void)cheap;
  (void)pricey;
  (void)b_cheap;
}

TEST(MinCostFlowTest, BadEndpointsRejected) {
  MinCostFlow flow(2);
  flow.AddEdge(0, 1, 1, 0.0);
  EXPECT_EQ(flow.Solve(0, 0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(flow.Solve(-1, 1).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(flow.Solve(0, 9).status().code(), StatusCode::kInvalidArgument);
}

TEST(MinCostFlowTest, AssignmentProblemSolvedExactly) {
  // 3x3 assignment, costs: worker w to task t. Known optimum = 5 (1+3+1).
  const double costs[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 1}};
  // Hungarian optimum: w0->t1 (1), w1->t0 (2), w2->t2 (1) -> total 4.
  MinCostFlow flow(8);  // 0 source, 1-3 workers, 4-6 tasks, 7 sink
  for (int w = 0; w < 3; ++w) flow.AddEdge(0, 1 + w, 1, 0.0);
  std::vector<int> ids;
  for (int w = 0; w < 3; ++w) {
    for (int t = 0; t < 3; ++t) {
      ids.push_back(flow.AddEdge(1 + w, 4 + t, 1, costs[w][t]));
    }
  }
  for (int t = 0; t < 3; ++t) flow.AddEdge(4 + t, 7, 1, 0.0);
  auto result = flow.Solve(0, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 3);
  EXPECT_DOUBLE_EQ(result->cost, 4.0);
}

TEST(MinCostFlowTest, FlowConservationAtInternalNodes) {
  MinCostFlow flow(5);
  std::vector<int> ids;
  ids.push_back(flow.AddEdge(0, 1, 4, 1.0));
  ids.push_back(flow.AddEdge(0, 2, 4, 2.0));
  ids.push_back(flow.AddEdge(1, 3, 3, 1.0));
  ids.push_back(flow.AddEdge(2, 3, 3, 1.0));
  ids.push_back(flow.AddEdge(1, 2, 2, 0.0));
  ids.push_back(flow.AddEdge(3, 4, 5, 0.0));
  auto result = flow.Solve(0, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 5);
  // Node 1: in = edge0, out = edge2 + edge4.
  EXPECT_EQ(flow.FlowOn(ids[0]), flow.FlowOn(ids[2]) + flow.FlowOn(ids[4]));
  // Node 3: in = edge2 + edge3, out = edge5.
  EXPECT_EQ(flow.FlowOn(ids[2]) + flow.FlowOn(ids[3]), flow.FlowOn(ids[5]));
}

TEST(MinCostFlowTest, ZeroCapacityEdgeCarriesNothing) {
  MinCostFlow flow(2);
  const int e = flow.AddEdge(0, 1, 0, -100.0);
  auto result = flow.Solve(0, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->flow, 0);
  EXPECT_EQ(flow.FlowOn(e), 0);
}

}  // namespace
}  // namespace gepc
