#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sim/scenarios.h"

namespace gepc {
namespace {

SimulationConfig SmallConfig(bool incremental, uint64_t seed = 5) {
  SimulationConfig config;
  config.base.num_users = 40;
  config.base.num_events = 10;
  config.base.mean_eta = 6.0;
  config.base.mean_xi = 2.0;
  config.base.seed = 77;
  config.num_days = 4;
  config.new_events_per_day = 1;
  config.incremental = incremental;
  config.seed = seed;
  return config;
}

TEST(SimulatorTest, RunsAndReportsEveryDay) {
  auto result = RunSimulation(SmallConfig(/*incremental=*/true));
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->days.size(), 5u);  // day 0 + 4 drift days
  EXPECT_EQ(result->days.front().day, 0);
  EXPECT_EQ(result->days.back().day, 4);
  EXPECT_GT(result->final_utility, 0.0);
}

TEST(SimulatorTest, DeterministicPerSeed) {
  auto a = RunSimulation(SmallConfig(true, 9));
  auto b = RunSimulation(SmallConfig(true, 9));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->days.size(), b->days.size());
  for (size_t d = 0; d < a->days.size(); ++d) {
    EXPECT_DOUBLE_EQ(a->days[d].total_utility, b->days[d].total_utility);
    EXPECT_DOUBLE_EQ(a->days[d].affinity_utility, b->days[d].affinity_utility);
    EXPECT_EQ(a->days[d].negative_impact, b->days[d].negative_impact);
    EXPECT_EQ(a->days[d].ops, b->days[d].ops);
  }
  EXPECT_DOUBLE_EQ(a->final_affinity_utility, b->final_affinity_utility);
}

TEST(SimulatorTest, DifferentSeedsDriftDifferently) {
  auto a = RunSimulation(SmallConfig(true, 1));
  auto b = RunSimulation(SmallConfig(true, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = false;
  for (size_t d = 1; d < a->days.size(); ++d) {
    if (a->days[d].ops != b->days[d].ops ||
        a->days[d].total_utility != b->days[d].total_utility) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimulatorTest, DayZeroHasNoDrift) {
  auto result = RunSimulation(SmallConfig(true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->days[0].ops, 0);
  EXPECT_EQ(result->days[0].negative_impact, 0);
}

TEST(SimulatorTest, EventsGrowWithArrivals) {
  SimulationConfig config = SmallConfig(true);
  config.new_events_per_day = 3;
  config.num_days = 3;
  auto result = RunSimulation(config);
  ASSERT_TRUE(result.ok());
  // Effective utility accounting must track the grown event set without
  // crashing; day metrics exist for all days.
  EXPECT_EQ(result->days.size(), 4u);
}

TEST(SimulatorTest, ReplanBaselineAlsoRuns) {
  auto result = RunSimulation(SmallConfig(/*incremental=*/false));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->days.size(), 5u);
  EXPECT_GT(result->final_utility, 0.0);
}

TEST(SimulatorTest, IncrementalCausesNoMoreDifThanItsOps) {
  auto result = RunSimulation(SmallConfig(true));
  ASSERT_TRUE(result.ok());
  // Each op's repair dif is bounded by the plan size; sanity: aggregate dif
  // is finite and non-negative.
  EXPECT_GE(result->total_negative_impact, 0);
}

TEST(SimulatorTest, AvailabilityDriftRuns) {
  SimulationConfig config = SmallConfig(true);
  config.p_availability_shrink = 0.3;
  auto result = RunSimulation(config);
  ASSERT_TRUE(result.ok()) << result.status();
  // Availability shrinks expand into many utility-zero ops.
  int total_ops = 0;
  for (const DayMetrics& day : result->days) total_ops += day.ops;
  SimulationConfig plain = SmallConfig(true);
  auto baseline = RunSimulation(plain);
  ASSERT_TRUE(baseline.ok());
  int baseline_ops = 0;
  for (const DayMetrics& day : baseline->days) baseline_ops += day.ops;
  EXPECT_GT(total_ops, baseline_ops);
}

TEST(SimulatorTest, RejectsBadDayCount) {
  SimulationConfig config = SmallConfig(true);
  config.num_days = 0;
  EXPECT_EQ(RunSimulation(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SimulatorTest, EffectiveUtilityNeverExceedsTotal) {
  auto result = RunSimulation(SmallConfig(true));
  ASSERT_TRUE(result.ok());
  for (const DayMetrics& day : result->days) {
    EXPECT_LE(day.effective_utility, day.total_utility + 1e-9)
        << "day " << day.day;
  }
}

TEST(SimulatorTest, AffinityUtilityEqualsTotalWhenUnarmed) {
  auto result = RunSimulation(SmallConfig(true));
  ASSERT_TRUE(result.ok());
  for (const DayMetrics& day : result->days) {
    EXPECT_DOUBLE_EQ(day.affinity_utility, day.total_utility)
        << "day " << day.day;
  }
  EXPECT_DOUBLE_EQ(result->final_affinity_utility, result->final_utility);
}

/// Shrinks a preset config so the suite stays fast but still exercises the
/// preset's distinctive machinery (drafted events / friendship graph).
SimulationConfig SmallScenario(ScenarioPreset preset, uint64_t seed = 3) {
  SimulationConfig config = MakeScenarioConfig(preset, seed);
  config.base.num_users = 40;
  config.base.num_events = 8;
  config.num_days = 3;
  return config;
}

TEST(ScenarioTest, ParsesKnownNamesAndRejectsOthers) {
  ScenarioPreset preset = ScenarioPreset::kMixed;
  EXPECT_TRUE(ParseScenarioPreset("scheduling", &preset));
  EXPECT_EQ(preset, ScenarioPreset::kScheduling);
  EXPECT_TRUE(ParseScenarioPreset("affinity", &preset));
  EXPECT_EQ(preset, ScenarioPreset::kAffinity);
  EXPECT_TRUE(ParseScenarioPreset("mixed", &preset));
  EXPECT_EQ(preset, ScenarioPreset::kMixed);
  EXPECT_FALSE(ParseScenarioPreset("bogus", &preset));
  EXPECT_FALSE(ParseScenarioPreset("", &preset));
  EXPECT_EQ(std::string(ScenarioPresetName(ScenarioPreset::kScheduling)),
            "scheduling");
}

TEST(ScenarioTest, SchedulingPresetPlacesDraftedEvents) {
  auto result = RunSimulation(SmallScenario(ScenarioPreset::kScheduling));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->days.size(), 4u);
  // New events arrive through the sched search; drift days carry ops.
  EXPECT_GT(result->days.back().ops, 0);
}

TEST(ScenarioTest, AffinityPresetReportsAffinityAwareUtility) {
  auto result = RunSimulation(SmallScenario(ScenarioPreset::kAffinity));
  ASSERT_TRUE(result.ok()) << result.status();
  // lambda > 0: affinity utility = total + lambda * pairs >= total.
  for (const DayMetrics& day : result->days) {
    EXPECT_GE(day.affinity_utility, day.total_utility - 1e-9)
        << "day " << day.day;
  }
  EXPECT_GE(result->final_affinity_utility, result->final_utility - 1e-9);
}

TEST(ScenarioTest, MixedPresetIsDeterministicPerSeed) {
  auto a = RunSimulation(SmallScenario(ScenarioPreset::kMixed, 11));
  auto b = RunSimulation(SmallScenario(ScenarioPreset::kMixed, 11));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->days.size(), b->days.size());
  for (size_t d = 0; d < a->days.size(); ++d) {
    EXPECT_DOUBLE_EQ(a->days[d].total_utility, b->days[d].total_utility);
    EXPECT_DOUBLE_EQ(a->days[d].affinity_utility,
                     b->days[d].affinity_utility);
    EXPECT_EQ(a->days[d].ops, b->days[d].ops);
  }
}

}  // namespace
}  // namespace gepc
