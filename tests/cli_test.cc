// End-to-end tests of the gepc_cli binary (path injected by CMake as
// GEPC_CLI_PATH). Each test drives a full shell command and inspects exit
// codes and produced files — the closest thing to a user session.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "ckpt/checkpoint.h"
#include "data/io.h"

namespace gepc {
namespace {

std::string Cli() { return GEPC_CLI_PATH; }

// Per-test-case temp path: ctest runs every discovered case as its own
// process in parallel, so fixed file names under the shared TempDir would
// collide across cases.
std::string Tmp(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + info->name() + "_" + name;
}

int RunCommand(const std::string& command) {
  const int status = std::system((command + " > /dev/null 2>&1").c_str());
  return WEXITSTATUS(status);
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_path_ = Tmp("cli_test.gepc");
    plan_path_ = Tmp("cli_test.gpln");
    ASSERT_EQ(RunCommand(Cli() + " generate --users 40 --events 10 --seed 5" +
                         " --xi 2 --eta 6 --out " + instance_path_),
              0);
  }

  std::string instance_path_;
  std::string plan_path_;
};

TEST_F(CliTest, GenerateProducesLoadableInstance) {
  auto instance = LoadInstanceFromFile(instance_path_);
  ASSERT_TRUE(instance.ok()) << instance.status();
  EXPECT_EQ(instance->num_users(), 40);
  EXPECT_EQ(instance->num_events(), 10);
}

TEST_F(CliTest, StatsSucceedsOnGeneratedInstance) {
  EXPECT_EQ(RunCommand(Cli() + " stats --in " + instance_path_), 0);
}

TEST_F(CliTest, SolveWritesValidPlan) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --algorithm greedy --plan-out " + plan_path_),
            0);
  auto plan = LoadPlanFromFile(plan_path_);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT(plan->TotalAssignments(), 0);
  // The CLI's own validator accepts it.
  EXPECT_EQ(RunCommand(Cli() + " validate --in " + instance_path_ +
                       " --plan " + plan_path_),
            0);
}

TEST_F(CliTest, GapAlgorithmAlsoSolves) {
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --algorithm gap --plan-out " + plan_path_),
            0);
}

TEST_F(CliTest, ValidateFlagsBrokenPlan) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --plan-out " + plan_path_),
            0);
  // Corrupt the plan: give user 0 every event (guaranteed conflicts).
  std::ofstream out(plan_path_, std::ios::app);
  for (int j = 0; j < 10; ++j) out << "p 1 " << j << "\n";
  out.close();
  const int code = RunCommand(Cli() + " validate --in " + instance_path_ +
                              " --plan " + plan_path_);
  EXPECT_NE(code, 0);
}

TEST_F(CliTest, ApplyRunsOpsAndWritesPlan) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --plan-out " + plan_path_),
            0);
  const std::string out_path = Tmp("cli_test_after.gpln");
  EXPECT_EQ(RunCommand(Cli() + " apply --in " + instance_path_ + " --plan " +
                       plan_path_ + " --op eta:0:1 --op xi:1:3 --reorder" +
                       " --plan-out " + out_path),
            0);
  auto plan = LoadPlanFromFile(out_path);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->attendance(0), 1);
}

TEST_F(CliTest, ItineraryPrints) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --plan-out " + plan_path_),
            0);
  EXPECT_EQ(RunCommand(Cli() + " itinerary --in " + instance_path_ +
                       " --plan " + plan_path_),
            0);
  EXPECT_EQ(RunCommand(Cli() + " itinerary --in " + instance_path_ +
                       " --plan " + plan_path_ + " --user 0"),
            0);
  EXPECT_NE(RunCommand(Cli() + " itinerary --in " + instance_path_ +
                       " --plan " + plan_path_ + " --user 999"),
            0);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_NE(RunCommand(Cli() + " frobnicate"), 0);
  EXPECT_NE(RunCommand(Cli()), 0);  // no command at all
}

TEST_F(CliTest, UnknownFlagRejectedWithUsage) {
  const std::string command = Cli() + " stats --in " + instance_path_ +
                              " --frobnicate 3";
  EXPECT_EQ(RunCommand(command), 64);
  // The error message names the bad flag and the usage block follows.
  const std::string capture = Tmp("cli_test_stderr.txt");
  ASSERT_EQ(WEXITSTATUS(std::system(
                (command + " > /dev/null 2> " + capture).c_str())),
            64);
  std::ifstream in(capture);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("--frobnicate"), std::string::npos);
  EXPECT_NE(text.find("usage:"), std::string::npos);
}

TEST_F(CliTest, FlagMissingValueRejected) {
  EXPECT_EQ(RunCommand(Cli() + " stats --in"), 64);
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --algorithm"),
            64);
}

TEST_F(CliTest, StrayPositionalRejected) {
  EXPECT_EQ(RunCommand(Cli() + " stats --in " + instance_path_ + " extra"),
            64);
}

TEST_F(CliTest, FlagFromOtherCommandRejected) {
  // --op belongs to `apply`, not `stats`.
  EXPECT_EQ(RunCommand(Cli() + " stats --in " + instance_path_ +
                       " --op eta:0:1"),
            64);
}

TEST_F(CliTest, MissingFilesFailCleanly) {
  EXPECT_NE(RunCommand(Cli() + " stats --in /no/such/file.gepc"), 0);
  EXPECT_NE(RunCommand(Cli() + " solve --in /no/such/file.gepc"), 0);
}

TEST_F(CliTest, BadOpSpecFails) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --plan-out " + plan_path_),
            0);
  EXPECT_NE(RunCommand(Cli() + " apply --in " + instance_path_ + " --plan " +
                       plan_path_ + " --op bogus:1:2"),
            0);
}

TEST_F(CliTest, ShardedSolveWritesValidPlan) {
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --shards 3 --threads 2 --plan-out " + plan_path_),
            0);
  EXPECT_EQ(RunCommand(Cli() + " validate --in " + instance_path_ +
                       " --plan " + plan_path_),
            0);
}

TEST_F(CliTest, ShardedSolveIndependentOfThreadCount) {
  const std::string one = Tmp("cli_test_t1.gpln");
  const std::string eight = Tmp("cli_test_t8.gpln");
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --shards 4 --threads 1 --plan-out " + one),
            0);
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --shards 4 --threads 8 --plan-out " + eight),
            0);
  auto plan_one = LoadPlanFromFile(one);
  auto plan_eight = LoadPlanFromFile(eight);
  ASSERT_TRUE(plan_one.ok() && plan_eight.ok());
  EXPECT_TRUE(*plan_one == *plan_eight);
}

TEST_F(CliTest, InvalidThreadsOrShardsRejectedWithUsage) {
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --threads 0"),
            64);
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --threads -2"),
            64);
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --shards banana"),
            64);
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --shards 4x"),
            64);
  // --threads/--shards belong to solve only.
  EXPECT_EQ(RunCommand(Cli() + " stats --in " + instance_path_ +
                       " --threads 2"),
            64);
}

TEST_F(CliTest, SolveMetricsPrintsExposition) {
  const std::string capture = Tmp("cli_test_metrics_stdout.txt");
  ASSERT_EQ(WEXITSTATUS(std::system((Cli() + " solve --in " + instance_path_ +
                                     " --metrics > " + capture + " 2>&1")
                                        .c_str())),
            0);
  std::ifstream in(capture);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("--- metrics ---"), std::string::npos);
  EXPECT_NE(text.find("gepc_solver_solves_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gepc_solver_total_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gepc_solver_topup_ms histogram"),
            std::string::npos);
}

TEST_F(CliTest, SolveMetricsFileForm) {
  const std::string metrics_path = Tmp("cli_test_metrics.prom");
  std::remove(metrics_path.c_str());
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --metrics=" + metrics_path),
            0);
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good()) << "metrics file not written";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("gepc_solver_solves_total 1"), std::string::npos);
}

TEST_F(CliTest, SolveTraceWritesChromeTraceJson) {
  const std::string trace_path = Tmp("cli_test_trace.json");
  std::remove(trace_path.c_str());
  ASSERT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ + " --trace " +
                       trace_path),
            0);
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written";
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"gepc.solve\""), std::string::npos);
}

class CliCkptTest : public CliTest {
 protected:
  // A real checkpoint directory with two valid GCKP1 files (versions 1, 2).
  void SetUp() override {
    CliTest::SetUp();
    ckpt_dir_ = Tmp("ckpt");
    std::error_code ec;
    std::filesystem::remove_all(ckpt_dir_, ec);
    std::filesystem::create_directories(ckpt_dir_, ec);
    ASSERT_FALSE(ec) << ec.message();
    auto instance = LoadInstanceFromFile(instance_path_);
    ASSERT_TRUE(instance.ok()) << instance.status();
    Plan plan(instance->num_users(), instance->num_events());
    for (const uint64_t version : {1u, 2u}) {
      auto path = WriteCheckpoint(ckpt_dir_, *instance, plan, version);
      ASSERT_TRUE(path.ok()) << path.status().ToString();
      if (version == 2) newest_path_ = *path;
    }
  }

  std::string ckpt_dir_;
  std::string newest_path_;
};

TEST_F(CliCkptTest, InspectSingleValidCheckpoint) {
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect --ckpt " + newest_path_), 0);
}

TEST_F(CliCkptTest, InspectDirectoryListsNewestFirst) {
  const std::string out_path = Tmp("ckpt_inspect.txt");
  ASSERT_EQ(WEXITSTATUS(std::system((Cli() + " ckpt-inspect --dir " +
                                     ckpt_dir_ + " > " + out_path + " 2>&1")
                                        .c_str())),
            0);
  std::ifstream in(out_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Version 2 is reported before version 1.
  const size_t v2 = text.find("version:          2");
  const size_t v1 = text.find("version:          1");
  EXPECT_NE(v2, std::string::npos) << text;
  EXPECT_NE(v1, std::string::npos) << text;
  EXPECT_LT(v2, v1);
}

TEST_F(CliCkptTest, TornCheckpointIsDefectiveAndExitIsNonzero) {
  std::error_code ec;
  std::filesystem::resize_file(newest_path_, 40, ec);
  ASSERT_FALSE(ec);
  // Single-file mode reports the defect...
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect --ckpt " + newest_path_), 1);
  // ...and directory mode flags the dir as unhealthy while still listing
  // the intact sibling.
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect --dir " + ckpt_dir_), 1);
}

TEST_F(CliCkptTest, UsageErrorsExit64) {
  // Exactly one of --ckpt / --dir is required.
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect"), 64);
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect --ckpt " + newest_path_ +
                       " --dir " + ckpt_dir_),
            64);
  EXPECT_EQ(RunCommand(Cli() + " ckpt-inspect --bogus x"), 64);
}

TEST_F(CliTest, ScheduleSearchRuns) {
  EXPECT_EQ(RunCommand(Cli() + " schedule --users 50 --drafts 3"
                       " --candidates 3 --seed 7"),
            0);
}

TEST_F(CliTest, ScheduleExhaustiveAndAffinityRun) {
  EXPECT_EQ(RunCommand(Cli() + " schedule --users 40 --drafts 2"
                       " --candidates 2 --seed 3 --exhaustive"
                       " --lambda 0.5 --degree 5 --threads 2"),
            0);
  EXPECT_EQ(RunCommand(Cli() + " schedule --users 40 --drafts 2"
                       " --candidates 2 --no-memoize"),
            0);
}

TEST_F(CliTest, ScheduleFlagsValidatedStrictly) {
  EXPECT_EQ(RunCommand(Cli() + " schedule --drafts 0"), 64);
  EXPECT_EQ(RunCommand(Cli() + " schedule --candidates -3"), 64);
  EXPECT_EQ(RunCommand(Cli() + " schedule --lambda -0.5"), 64);
  EXPECT_EQ(RunCommand(Cli() + " schedule --threads 4x"), 64);
  EXPECT_EQ(RunCommand(Cli() + " schedule --exhaustive=1"), 64);
}

TEST_F(CliTest, SimScenarioPresetsRun) {
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario scheduling --days 2"
                       " --users 30 --events 6 --seed 4"),
            0);
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario=affinity --days 2"
                       " --users 30 --events 6 --resolve"),
            0);
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario mixed --days 2 --users 30"
                       " --events 6"),
            0);
}

TEST_F(CliTest, SimScenarioValidatedStrictly) {
  EXPECT_EQ(RunCommand(Cli() + " sim --days 2"), 64);          // no scenario
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario bogus"), 64);  // unknown
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario mixed --days 0"), 64);
  EXPECT_EQ(RunCommand(Cli() + " sim --scenario mixed --resolve=1"), 64);
}

TEST_F(CliTest, ObservabilityFlagsValidatedStrictly) {
  // --trace is a required-value flag; --metrics only takes the = form.
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ + " --trace"),
            64);
  // --metrics belongs to solve only.
  EXPECT_EQ(RunCommand(Cli() + " stats --in " + instance_path_ +
                       " --metrics"),
            64);
  // = on a flag that takes no value is rejected.
  EXPECT_EQ(RunCommand(Cli() + " solve --in " + instance_path_ +
                       " --no-topup=1"),
            64);
}

}  // namespace
}  // namespace gepc
