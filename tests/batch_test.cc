#include "iep/batch.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "data/generator.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE2;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

IncrementalPlanner MakePlanner() {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  EXPECT_TRUE(planner.ok());
  return *std::move(planner);
}

TEST(BatchTest, SequentialMatchesRepeatedApply) {
  std::vector<AtomicOp> ops = {
      AtomicOp::UpperBoundChange(kE4, 1),
      AtomicOp::LowerBoundChange(kE2, 3),
  };

  IncrementalPlanner manual = MakePlanner();
  int64_t manual_dif = 0;
  for (const AtomicOp& op : ops) {
    auto step = manual.Apply(op);
    ASSERT_TRUE(step.ok());
    manual_dif += step->negative_impact;
  }

  IncrementalPlanner batched = MakePlanner();
  auto batch = ApplyBatch(&batched, ops, BatchMode::kSequential);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_TRUE(batch->plan == manual.plan());
  EXPECT_EQ(batch->negative_impact, manual_dif);
  EXPECT_EQ(batch->ops_applied, 2);
}

TEST(BatchTest, ReorderedEndsFeasible) {
  IncrementalPlanner planner = MakePlanner();
  std::vector<AtomicOp> ops = {
      AtomicOp::LowerBoundChange(kE4, 3),    // demand (phase 2)
      AtomicOp::UpperBoundChange(kE2, 2),    // shrink (phase 0)
      AtomicOp::TimeChange(testing_support::kE1,
                           {15 * 60 + 30, 17 * 60 + 30}),  // phase 1
  };
  auto batch = ApplyBatch(&planner, ops, BatchMode::kReordered);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(planner.instance(), batch->plan, options).ok());
  EXPECT_EQ(batch->ops_applied, 3);
}

TEST(BatchTest, EmptyBatchIsNoop) {
  IncrementalPlanner planner = MakePlanner();
  const Plan before = planner.plan();
  auto batch = ApplyBatch(&planner, {}, BatchMode::kSequential);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->plan == before);
  EXPECT_EQ(batch->negative_impact, 0);
  EXPECT_EQ(batch->ops_applied, 0);
}

TEST(BatchTest, NullPlannerRejected) {
  auto batch = ApplyBatch(nullptr, {}, BatchMode::kSequential);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchTest, InvalidOpStopsBatch) {
  IncrementalPlanner planner = MakePlanner();
  std::vector<AtomicOp> ops = {
      AtomicOp::UpperBoundChange(kE4, 1),
      AtomicOp::BudgetChange(0, -5.0),  // invalid
      AtomicOp::LowerBoundChange(kE2, 3),
  };
  auto batch = ApplyBatch(&planner, ops, BatchMode::kSequential);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  // The first op stays applied, like running ops one by one.
  EXPECT_EQ(planner.instance().event(kE4).upper_bound, 1);
}

TEST(BatchTest, ReorderedRunsRemovalsBeforeDemands) {
  // Shrinking e2 to 2 frees its third attendee; raising xi_4 to 3 needs
  // one more user. Reordered mode runs the shrink first so the freed user
  // is available for the demand; both orders must end feasible, and the
  // reordered batch must not do worse on dif.
  std::vector<AtomicOp> ops = {
      AtomicOp::LowerBoundChange(kE4, 3),
      AtomicOp::UpperBoundChange(kE2, 2),
  };
  IncrementalPlanner sequential = MakePlanner();
  auto seq = ApplyBatch(&sequential, ops, BatchMode::kSequential);
  IncrementalPlanner reordered = MakePlanner();
  auto reord = ApplyBatch(&reordered, ops, BatchMode::kReordered);
  ASSERT_TRUE(seq.ok() && reord.ok());
  EXPECT_EQ(reord->plan.attendance(kE4), 3);
  EXPECT_LE(reord->plan.attendance(kE2), 2);
  EXPECT_LE(reord->negative_impact, seq->negative_impact + 1);
}

TEST(BatchTest, RandomBatchesKeepInvariants) {
  GeneratorConfig config;
  config.num_users = 50;
  config.num_events = 12;
  config.mean_eta = 8.0;
  config.mean_xi = 3.0;
  config.seed = 808;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  auto initial = SolveGepc(*instance, GepcOptions{});
  ASSERT_TRUE(initial.ok());

  for (BatchMode mode : {BatchMode::kSequential, BatchMode::kReordered}) {
    auto planner = IncrementalPlanner::Create(*instance, initial->plan);
    ASSERT_TRUE(planner.ok());
    std::vector<AtomicOp> ops;
    for (int j = 0; j < 6; ++j) {
      if (j % 2 == 0) {
        ops.push_back(AtomicOp::UpperBoundChange(
            j, std::max(0, instance->event(j).upper_bound - 2)));
      } else {
        ops.push_back(AtomicOp::LowerBoundChange(
            j, std::min(instance->event(j).upper_bound,
                        instance->event(j).lower_bound + 1)));
      }
    }
    auto batch = ApplyBatch(&*planner, ops, mode);
    ASSERT_TRUE(batch.ok());
    ValidationOptions options;
    options.check_lower_bounds = false;
    EXPECT_TRUE(
        ValidatePlan(planner->instance(), batch->plan, options).ok());
    EXPECT_GE(batch->negative_impact, 0);
  }
}

TEST(BatchTest, ReofferReportsAdditions) {
  // Shrink then fully relax an event in one reordered batch: the closing
  // re-offer can restore attendances (dif-free additions).
  IncrementalPlanner planner = MakePlanner();
  std::vector<AtomicOp> ops = {
      AtomicOp::UpperBoundChange(kE2, 1),
      AtomicOp::UpperBoundChange(kE2, 4),
  };
  auto batch = ApplyBatch(&planner, ops, BatchMode::kReordered);
  ASSERT_TRUE(batch.ok());
  EXPECT_GE(batch->added_by_final_reoffer, 0);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(
      ValidatePlan(planner.instance(), batch->plan, options).ok());
}

}  // namespace
}  // namespace gepc
