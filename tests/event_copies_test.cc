#include "gepc/event_copies.h"

#include <gtest/gtest.h>

#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;

TEST(CopyMapTest, CountsMatchLowerBounds) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  // xi = 1, 2, 3, 1 -> m+ = 7.
  EXPECT_EQ(copies.num_copies(), 7);
  EXPECT_EQ(copies.copies_of(kE1).size(), 1u);
  EXPECT_EQ(copies.copies_of(kE2).size(), 2u);
  EXPECT_EQ(copies.copies_of(kE3).size(), 3u);
  EXPECT_EQ(copies.copies_of(kE4).size(), 1u);
}

TEST(CopyMapTest, EventOfInvertsCopiesOf) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  for (int j = 0; j < instance.num_events(); ++j) {
    for (int copy : copies.copies_of(j)) {
      EXPECT_EQ(copies.event_of(copy), j);
    }
  }
}

TEST(CopyMapTest, ZeroLowerBoundEventHasNoCopies) {
  Instance instance = MakePaperInstance();
  ASSERT_TRUE(instance.set_event_bounds(kE1, 0, 3).ok());
  const CopyMap copies(instance);
  EXPECT_TRUE(copies.copies_of(kE1).empty());
  EXPECT_EQ(copies.num_copies(), 6);
}

TEST(CopyMapTest, SameEventCopiesConflict) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  const auto& e3_copies = copies.copies_of(kE3);
  EXPECT_TRUE(copies.CopiesConflict(instance, e3_copies[0], e3_copies[1]));
}

TEST(CopyMapTest, CrossEventConflictFollowsTimeRelation) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  const int c1 = copies.copies_of(kE1)[0];
  const int c3 = copies.copies_of(kE3)[0];
  const int c2 = copies.copies_of(kE2)[0];
  EXPECT_TRUE(copies.CopiesConflict(instance, c1, c3));   // e1/e3 overlap
  EXPECT_FALSE(copies.CopiesConflict(instance, c1, c2));  // e1 then e2 fine
}

TEST(CopyPlanTest, AssignUnassignRoundTrip) {
  CopyPlan plan(3, 5);
  EXPECT_EQ(plan.UnassignedCopies(), 5);
  plan.Assign(1, 2);
  EXPECT_EQ(plan.user_of_copy[2], 1);
  EXPECT_EQ(plan.copies_of_user[1], (std::vector<int>{2}));
  EXPECT_EQ(plan.UnassignedCopies(), 4);
  plan.Unassign(2);
  EXPECT_EQ(plan.user_of_copy[2], -1);
  EXPECT_TRUE(plan.copies_of_user[1].empty());
}

TEST(CopyPlanTest, UnassignMissingIsNoop) {
  CopyPlan plan(2, 2);
  plan.Unassign(0);
  EXPECT_EQ(plan.UnassignedCopies(), 2);
}

TEST(CollapseToPlanTest, MapsCopiesToEvents) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan copy_plan(5, copies.num_copies());
  copy_plan.Assign(0, copies.copies_of(kE1)[0]);
  copy_plan.Assign(1, copies.copies_of(kE3)[0]);
  copy_plan.Assign(2, copies.copies_of(kE3)[1]);
  const Plan plan = CollapseToPlan(instance, copies, copy_plan);
  EXPECT_TRUE(plan.Contains(0, kE1));
  EXPECT_TRUE(plan.Contains(1, kE3));
  EXPECT_TRUE(plan.Contains(2, kE3));
  EXPECT_EQ(plan.attendance(kE3), 2);
}

TEST(CollapseToPlanTest, DuplicateCopiesOfOneEventMerge) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan copy_plan(5, copies.num_copies());
  copy_plan.Assign(0, copies.copies_of(kE3)[0]);
  copy_plan.Assign(0, copies.copies_of(kE3)[1]);  // defensive: same event
  const Plan plan = CollapseToPlan(instance, copies, copy_plan);
  EXPECT_EQ(plan.attendance(kE3), 1);
  EXPECT_EQ(plan.events_of(0).size(), 1u);
}

TEST(CopyTourCostTest, MatchesEventTour) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  const std::vector<int> held = {copies.copies_of(kE1)[0]};
  EXPECT_NEAR(CopyTourCost(instance, copies, 0, held,
                           copies.copies_of(kE2)[0]),
              std::sqrt(17.0) + std::sqrt(41.0) + 6.0, 1e-9);
}

TEST(CanHoldCopyTest, RejectsConflictBudgetAndZeroUtility) {
  Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  CopyPlan plan(5, copies.num_copies());
  plan.Assign(0, copies.copies_of(kE3)[0]);
  // Conflict with held e3 copy.
  EXPECT_FALSE(
      CanHoldCopy(instance, copies, plan, 0, copies.copies_of(kE1)[0]));
  // Same event's second copy conflicts too.
  EXPECT_FALSE(
      CanHoldCopy(instance, copies, plan, 0, copies.copies_of(kE3)[1]));
  // u5 cannot afford e1 (budget).
  CopyPlan u5_plan(5, copies.num_copies());
  u5_plan.Assign(4, copies.copies_of(kE4)[0]);
  EXPECT_FALSE(
      CanHoldCopy(instance, copies, u5_plan, 4, copies.copies_of(kE1)[0]));
  // Zero utility blocks.
  instance.set_utility(1, kE2, 0.0);
  CopyPlan empty(5, copies.num_copies());
  EXPECT_FALSE(
      CanHoldCopy(instance, copies, empty, 1, copies.copies_of(kE2)[0]));
  // And a plain feasible case passes.
  EXPECT_TRUE(
      CanHoldCopy(instance, copies, empty, 1, copies.copies_of(kE3)[0]));
}

}  // namespace
}  // namespace gepc
