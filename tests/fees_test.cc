// Tests of the admission-fee cost model (the Sec. VII "costs of attendance
// rolled into travel costs" extension). Zero fees must reproduce the paper's
// pure-travel behaviour exactly; positive fees tighten every budget check.

#include <gtest/gtest.h>

#include <sstream>

#include "core/feasibility.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/exact.h"
#include "gepc/solver.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::MakePaperInstance;

TEST(FeesTest, TourCostAddsFees) {
  Instance instance = MakePaperInstance();
  const double travel_only = TourCost(instance, 0, {kE1, kE2});
  Event e1 = instance.event(kE1);
  e1.fee = 3.5;
  // Mutate via a rebuilt instance (Event fee is a plain field).
  std::vector<User> users(instance.users());
  std::vector<Event> events(instance.events());
  events[kE1].fee = 3.5;
  events[kE2].fee = 1.5;
  Instance with_fees(std::move(users), std::move(events));
  EXPECT_NEAR(TourCost(with_fees, 0, {kE1, kE2}), travel_only + 5.0, 1e-9);
}

TEST(FeesTest, ZeroFeeIsPaperModel) {
  const Instance instance = MakePaperInstance();
  EXPECT_NEAR(TourCost(instance, 0, {kE1, kE2}),
              std::sqrt(17.0) + std::sqrt(41.0) + 6.0, 1e-12);
}

TEST(FeesTest, CanAttendChargesFee) {
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{3, 0}, 0, 1, {0, 10}, /*fee=*/0.0}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  Plan plan(1, 1);
  EXPECT_TRUE(CanAttend(instance, plan, 0, 0));  // tour 6 <= 10

  std::vector<User> users2 = {{{0, 0}, 10.0}};
  std::vector<Event> events2 = {{{3, 0}, 0, 1, {0, 10}, /*fee=*/5.0}};
  Instance pricey(std::move(users2), std::move(events2));
  pricey.set_utility(0, 0, 0.9);
  EXPECT_FALSE(CanAttend(pricey, plan, 0, 0));  // 6 + 5 > 10
}

TEST(FeesTest, NegativeFeeInvalid) {
  Event e{{0, 0}, 0, 1, {0, 10}, -1.0};
  EXPECT_FALSE(e.IsValid());
  Instance instance({{{0, 0}, 1.0}}, {e});
  EXPECT_EQ(instance.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(FeesTest, ExactSolverRespectsFees) {
  // Budget 25 covers one of the two fee-bearing events, not both.
  std::vector<User> users = {{{0, 0}, 25.0}};
  std::vector<Event> events = {{{5, 0}, 0, 1, {0, 10}, 6.0},
                               {{-5, 0}, 0, 1, {20, 30}, 6.0}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.5);
  instance.set_utility(0, 1, 0.9);
  // Both: 10 + 10 + 10 travel... actually 5 + 10 + 5 = 20 travel + 12 fees
  // = 32 > 25. One alone: 10 travel + 6 fee = 16 <= 25.
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_utility, 0.9, 1e-12);
}

TEST(FeesTest, SolversStayWithinFeeInclusiveBudget) {
  GeneratorConfig config;
  config.num_users = 40;
  config.num_events = 10;
  config.mean_eta = 6.0;
  config.mean_xi = 2.0;
  config.mean_fee = 15.0;
  config.seed = 99;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  bool any_fee = false;
  for (int j = 0; j < instance->num_events(); ++j) {
    if (instance->event(j).fee > 0.0) any_fee = true;
  }
  EXPECT_TRUE(any_fee);
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(*instance, options);
    ASSERT_TRUE(result.ok()) << result.status();
    for (int i = 0; i < instance->num_users(); ++i) {
      EXPECT_LE(UserTravelCost(*instance, result->plan, i),
                instance->user(i).budget + 1e-9)
          << GepcAlgorithmName(algorithm) << " user " << i;
    }
  }
}

TEST(FeesTest, FeesReduceAchievableUtility) {
  GeneratorConfig config;
  config.num_users = 40;
  config.num_events = 10;
  config.mean_eta = 6.0;
  config.mean_xi = 1.0;
  config.seed = 7;
  auto free_instance = GenerateInstance(config);
  config.mean_fee = 40.0;  // steep fees relative to ~141-diagonal budgets
  auto priced_instance = GenerateInstance(config);
  ASSERT_TRUE(free_instance.ok() && priced_instance.ok());
  auto free_result = SolveGepc(*free_instance, GepcOptions{});
  auto priced_result = SolveGepc(*priced_instance, GepcOptions{});
  ASSERT_TRUE(free_result.ok() && priced_result.ok());
  EXPECT_LT(priced_result->total_utility, free_result->total_utility);
}

TEST(FeesTest, IoRoundTripsFee) {
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{1, 1}, 0, 2, {0, 10}, 2.25}};
  Instance instance(std::move(users), std::move(events));
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(instance, buffer).ok());
  auto loaded = LoadInstance(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->event(0).fee, 2.25);
}

TEST(FeesTest, IoAcceptsLegacyRowsWithoutFee) {
  std::stringstream in(
      "GEPC1 1 1\n"
      "u 0 0 10\n"
      "e 1 1 0 2 0 10\n");  // six event fields, no fee
  auto loaded = LoadInstance(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_DOUBLE_EQ(loaded->event(0).fee, 0.0);
}

}  // namespace
}  // namespace gepc
