// Robustness: hostile or degenerate inputs must produce clean Status errors
// (or harmless empty results), never crashes or hangs. These tests throw
// random garbage at the parsers and extreme-but-legal configurations at the
// generator and solvers.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/feasibility.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/solver.h"

namespace gepc {
namespace {

TEST(RobustnessTest, InstanceParserSurvivesRandomBytes) {
  Rng rng(8888);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const int length = static_cast<int>(rng.UniformUint64(200));
    for (int k = 0; k < length; ++k) {
      garbage += static_cast<char>(rng.UniformInt(1, 126));
    }
    std::stringstream in(garbage);
    auto result = LoadInstance(in);  // must not crash
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST(RobustnessTest, InstanceParserSurvivesMutatedValidFiles) {
  GeneratorConfig config;
  config.num_users = 10;
  config.num_events = 4;
  config.mean_eta = 3.0;
  config.mean_xi = 1.0;
  config.seed = 3;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveInstance(*instance, buffer).ok());
  const std::string valid = buffer.str();

  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.UniformUint64(5));
    for (int f = 0; f < flips; ++f) {
      const size_t pos =
          static_cast<size_t>(rng.UniformUint64(mutated.size()));
      mutated[pos] = static_cast<char>(rng.UniformInt(32, 126));
    }
    std::stringstream in(mutated);
    auto result = LoadInstance(in);  // must not crash
    (void)result;
  }
}

TEST(RobustnessTest, PlanParserSurvivesRandomBytes) {
  Rng rng(9999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage = "GPLN1 3 3\n";
    const int length = static_cast<int>(rng.UniformUint64(120));
    for (int k = 0; k < length; ++k) {
      garbage += static_cast<char>(rng.UniformInt(1, 126));
    }
    std::stringstream in(garbage);
    auto result = LoadPlan(in);
    (void)result;
  }
}

TEST(RobustnessTest, GeneratorHandlesExtremeShapes) {
  // 1 user, 1 event.
  GeneratorConfig tiny;
  tiny.num_users = 1;
  tiny.num_events = 1;
  tiny.mean_eta = 1.0;
  tiny.mean_xi = 0.0;
  EXPECT_TRUE(GenerateInstance(tiny).ok());

  // Many events, few users.
  GeneratorConfig wide;
  wide.num_users = 3;
  wide.num_events = 200;
  wide.mean_eta = 2.0;
  wide.mean_xi = 0.5;
  auto instance = GenerateInstance(wide);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance->Validate().ok());

  // Tiny city (all locations nearly identical).
  GeneratorConfig dense;
  dense.num_users = 20;
  dense.num_events = 5;
  dense.mean_eta = 4.0;
  dense.mean_xi = 1.0;
  dense.city_width = 0.001;
  dense.city_height = 0.001;
  EXPECT_TRUE(GenerateInstance(dense).ok());
}

TEST(RobustnessTest, SolversHandleAllZeroUtilities) {
  std::vector<User> users(4, User{{0, 0}, 10.0});
  std::vector<Event> events = {{{1, 0}, 0, 2, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(instance, options);
    ASSERT_TRUE(result.ok()) << GepcAlgorithmName(algorithm);
    EXPECT_EQ(result->plan.TotalAssignments(), 0);
    EXPECT_DOUBLE_EQ(result->total_utility, 0.0);
  }
}

TEST(RobustnessTest, SolversHandleZeroBudgets) {
  std::vector<User> users(3, User{{5, 5}, 0.0});
  std::vector<Event> events = {{{1, 0}, 0, 2, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < 3; ++i) instance.set_utility(i, 0, 0.9);
  auto result = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.TotalAssignments(), 0);
}

TEST(RobustnessTest, SolversHandleEventAtUserLocation) {
  // Distance 0 tour: a zero-budget user CAN attend an event at home.
  std::vector<User> users = {{{5, 5}, 0.0}};
  std::vector<Event> events = {{{5, 5}, 0, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  auto result = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan.TotalAssignments(), 1);
}

TEST(RobustnessTest, ManyIdenticalEventsAllConflict) {
  // 12 identical events, every pair conflicting: each user attends at most
  // one; solvers must not loop or blow up.
  std::vector<User> users(6, User{{0, 0}, 100.0});
  std::vector<Event> events(12, Event{{1, 1}, 0, 6, {100, 200}});
  Instance instance(std::move(users), std::move(events));
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 12; ++j) instance.set_utility(i, j, 0.5);
  }
  for (GepcAlgorithm algorithm :
       {GepcAlgorithm::kGreedy, GepcAlgorithm::kGapBased}) {
    GepcOptions options;
    options.algorithm = algorithm;
    auto result = SolveGepc(instance, options);
    ASSERT_TRUE(result.ok()) << GepcAlgorithmName(algorithm);
    for (int i = 0; i < 6; ++i) {
      EXPECT_LE(result->plan.events_of(i).size(), 1u)
          << GepcAlgorithmName(algorithm);
    }
  }
}

}  // namespace
}  // namespace gepc
