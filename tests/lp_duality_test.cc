// Strong-duality property check of the simplex solver: for random feasible
// bounded primals max{c x : Ax <= b, x >= 0}, the dual min{b y : A^T y >= c,
// y >= 0} must reach exactly the same objective. Primal and dual take
// different code paths (<= rows with slacks vs >= rows with artificials),
// so agreement is a strong end-to-end correctness signal.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"

namespace gepc {
namespace {

class LpDuality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LpDuality, PrimalEqualsDual) {
  Rng rng(GetParam() * 7907);
  const int n = 2 + static_cast<int>(rng.UniformUint64(5));  // variables
  const int m = 2 + static_cast<int>(rng.UniformUint64(5));  // constraints

  // Positive data keeps the primal feasible (x = 0) and bounded (every
  // variable appears with a positive coefficient in every row).
  std::vector<std::vector<double>> a(static_cast<size_t>(m),
                                     std::vector<double>(static_cast<size_t>(n)));
  std::vector<double> b(static_cast<size_t>(m));
  std::vector<double> c(static_cast<size_t>(n));
  for (int r = 0; r < m; ++r) {
    for (int v = 0; v < n; ++v) {
      a[static_cast<size_t>(r)][static_cast<size_t>(v)] =
          rng.UniformDouble(0.2, 3.0);
    }
    b[static_cast<size_t>(r)] = rng.UniformDouble(1.0, 12.0);
  }
  for (int v = 0; v < n; ++v) c[static_cast<size_t>(v)] = rng.UniformDouble(0.1, 5.0);

  LinearProgram primal(LinearProgram::Sense::kMaximize, n);
  for (int v = 0; v < n; ++v) primal.set_objective(v, c[static_cast<size_t>(v)]);
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      terms.emplace_back(v, a[static_cast<size_t>(r)][static_cast<size_t>(v)]);
    }
    primal.AddConstraint(std::move(terms), Relation::kLessEqual,
                         b[static_cast<size_t>(r)]);
  }

  LinearProgram dual(LinearProgram::Sense::kMinimize, m);
  for (int r = 0; r < m; ++r) dual.set_objective(r, b[static_cast<size_t>(r)]);
  for (int v = 0; v < n; ++v) {
    std::vector<std::pair<int, double>> terms;
    for (int r = 0; r < m; ++r) {
      terms.emplace_back(r, a[static_cast<size_t>(r)][static_cast<size_t>(v)]);
    }
    dual.AddConstraint(std::move(terms), Relation::kGreaterEqual,
                       c[static_cast<size_t>(v)]);
  }

  auto primal_solution = SolveLp(primal);
  auto dual_solution = SolveLp(dual);
  ASSERT_TRUE(primal_solution.ok()) << primal_solution.status();
  ASSERT_TRUE(dual_solution.ok()) << dual_solution.status();
  EXPECT_NEAR(primal_solution->objective_value,
              dual_solution->objective_value, 1e-6);

  // Weak-duality sanity on the raw solutions too.
  EXPECT_LE(primal_solution->objective_value,
            dual_solution->objective_value + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpDuality, ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace gepc
