// Differential gate for the centroidal-Voronoi partitioner feeding the
// sharded solver: under kVoronoi, SolveSharded must stay feasible and
// within 5% of the sequential utility at every shard count (the same bound
// the bisection cut honors), and shards=1 must stay byte-identical to the
// sequential solver — the partitioner choice can never leak into the
// degenerate case.

#include "shard/sharded_solver.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/feasibility.h"
#include "data/generator.h"
#include "data/io.h"
#include "gepc/solver.h"
#include "shard/voronoi.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  // Tight budgets keep interactions local, the regime sharding targets.
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

std::string Serialize(const Plan& plan) {
  std::ostringstream out;
  EXPECT_TRUE(SavePlan(plan, out).ok());
  return out.str();
}

TEST(RebalanceDifferentialTest, VoronoiUtilityWithinFivePercentOfSequential) {
  for (const uint64_t seed : {101u, 202u, 303u}) {
    const Instance instance = MakeLocalInstance(140, 36, seed);
    auto sequential = SolveGepc(instance, GepcOptions{});
    ASSERT_TRUE(sequential.ok()) << sequential.status();
    ASSERT_GT(sequential->total_utility, 0.0);

    for (const int shards : {2, 4, 8}) {
      ShardedGepcOptions options;
      options.shards = shards;
      options.threads = 2;
      options.partitioner = ShardPartitioner::kVoronoi;
      auto sharded = SolveSharded(instance, options);
      ASSERT_TRUE(sharded.ok())
          << "seed " << seed << " shards " << shards << ": "
          << sharded.status();

      ValidationOptions lenient;
      lenient.check_lower_bounds = false;
      const Status valid = ValidatePlan(instance, sharded->plan, lenient);
      EXPECT_TRUE(valid.ok())
          << "seed " << seed << " shards " << shards << ": " << valid;

      EXPECT_GE(sharded->total_utility, 0.95 * sequential->total_utility)
          << "seed " << seed << " shards " << shards << ": voronoi "
          << sharded->total_utility << " vs sequential "
          << sequential->total_utility;
    }
  }
}

TEST(RebalanceDifferentialTest, SingleShardIsByteIdenticalToSequential) {
  const Instance instance = MakeLocalInstance(120, 30, 404);
  auto sequential = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  ShardedGepcOptions options;
  options.shards = 1;
  options.partitioner = ShardPartitioner::kVoronoi;
  auto sharded = SolveSharded(instance, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(Serialize(sharded->plan), Serialize(sequential->plan));
  EXPECT_DOUBLE_EQ(sharded->total_utility, sequential->total_utility);
}

TEST(RebalanceDifferentialTest, PartitionerChoiceChangesOnlyTheCut) {
  // Both partitioners feed the identical per-shard solver; whatever cut
  // they produce, the result must validate and report consistent utility.
  const Instance instance = MakeLocalInstance(130, 32, 505);
  for (const ShardPartitioner partitioner :
       {ShardPartitioner::kBisection, ShardPartitioner::kVoronoi}) {
    ShardedGepcOptions options;
    options.shards = 4;
    options.partitioner = partitioner;
    auto sharded = SolveSharded(instance, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_NEAR(sharded->plan.TotalUtility(instance), sharded->total_utility,
                1e-9);
  }
}

}  // namespace
}  // namespace gepc
