#include "iep/planner.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

IncrementalPlanner MakePlanner() {
  auto planner =
      IncrementalPlanner::Create(MakePaperInstance(), MakePaperPlan());
  EXPECT_TRUE(planner.ok());
  return *std::move(planner);
}

TEST(PlannerTest, CreateRejectsMismatchedPlan) {
  auto planner = IncrementalPlanner::Create(MakePaperInstance(), Plan(2, 2));
  ASSERT_FALSE(planner.ok());
  EXPECT_EQ(planner.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, EtaDecreaseRouted) {
  IncrementalPlanner planner = MakePlanner();
  auto result = planner.Apply(AtomicOp::UpperBoundChange(kE4, 1));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->negative_impact, 1);
  EXPECT_EQ(planner.instance().event(kE4).upper_bound, 1);
  EXPECT_TRUE(planner.plan() == result->plan);
}

TEST(PlannerTest, EtaIncreaseOnlyAdds) {
  IncrementalPlanner planner = MakePlanner();
  const Plan before = planner.plan();
  auto result = planner.Apply(AtomicOp::UpperBoundChange(kE2, 5));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 0);
  EXPECT_EQ(NegativeImpact(before, result->plan), 0);
}

TEST(PlannerTest, XiIncreaseRouted) {
  IncrementalPlanner planner = MakePlanner();
  auto result = planner.Apply(AtomicOp::LowerBoundChange(kE4, 3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 1);
  EXPECT_EQ(result->plan.attendance(kE4), 3);
}

TEST(PlannerTest, XiDecreaseIsFree) {
  IncrementalPlanner planner = MakePlanner();
  const Plan before = planner.plan();
  auto result = planner.Apply(AtomicOp::LowerBoundChange(kE3, 1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 0);
  EXPECT_TRUE(result->plan == before);
}

TEST(PlannerTest, TimeChangeRouted) {
  IncrementalPlanner planner = MakePlanner();
  auto result = planner.Apply(
      AtomicOp::TimeChange(kE1, {15 * 60 + 30, 17 * 60 + 30}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 1);
  EXPECT_TRUE(result->plan.Contains(3, kE1));  // Example 8's refill
}

TEST(PlannerTest, TimeChangeRejectsBadInterval) {
  IncrementalPlanner planner = MakePlanner();
  auto result = planner.Apply(AtomicOp::TimeChange(kE1, {100, 100}));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, LocationChangeRepairsBudgets) {
  IncrementalPlanner planner = MakePlanner();
  // Move e4 far away: u5 (budget 10) can no longer reach it.
  auto result = planner.Apply(AtomicOp::LocationChange(kE4, {500, 500}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->plan.Contains(4, kE4));
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(planner.instance(), result->plan, options).ok());
}

TEST(PlannerTest, NewEventGetsPopulated) {
  IncrementalPlanner planner = MakePlanner();
  Event fresh;
  fresh.location = {4, 4};
  fresh.lower_bound = 1;
  fresh.upper_bound = 3;
  fresh.time = {21 * 60, 22 * 60};  // after everything
  auto result = planner.Apply(
      AtomicOp::NewEvent(fresh, {0.5, 0.5, 0.5, 0.5, 0.5}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(planner.instance().num_events(), 5);
  EXPECT_GE(result->plan.attendance(4), 1);
  EXPECT_EQ(result->negative_impact, 0);  // pure additions suffice
}

TEST(PlannerTest, NewEventNeedsUtilityPerUser) {
  IncrementalPlanner planner = MakePlanner();
  Event fresh;
  fresh.location = {4, 4};
  fresh.lower_bound = 0;
  fresh.upper_bound = 3;
  fresh.time = {21 * 60, 22 * 60};
  auto result = planner.Apply(AtomicOp::NewEvent(fresh, {0.5}));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, UtilityZeroedDropsAttendance) {
  IncrementalPlanner planner = MakePlanner();
  auto result = planner.Apply(AtomicOp::UtilityChange(4, kE4, 0.0));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->plan.Contains(4, kE4));
  EXPECT_GE(result->negative_impact, 1);
  // e4's xi = 1 still holds via u4.
  EXPECT_GE(result->plan.attendance(kE4), 1);
}

TEST(PlannerTest, UtilityIncreaseMayAddEvent) {
  IncrementalPlanner planner = MakePlanner();
  // u5 currently only attends e4; raise u5's utility for e3 — but u5's
  // budget (10) cannot cover e3 (2 * sqrt(17)) plus e4... check tour: the
  // planner should add it only if feasible.
  auto result = planner.Apply(AtomicOp::UtilityChange(4, kE3, 0.95));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 0);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(planner.instance(), result->plan, options).ok());
}

TEST(PlannerTest, BudgetDecreaseShedsCheapestEvents) {
  IncrementalPlanner planner = MakePlanner();
  // u1's plan {e1, e2} costs 16.53; cut the budget to 9: only a single
  // round trip fits. e1 (0.7) > e2 (0.6), and dropping e2 alone leaves a
  // tour of 2 sqrt(17) = 8.25 <= 9.
  auto result = planner.Apply(AtomicOp::BudgetChange(0, 9.0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.Contains(0, kE1));
  EXPECT_FALSE(result->plan.Contains(0, kE2));
  EXPECT_GE(result->negative_impact, 1);
  ValidationOptions options;
  options.check_lower_bounds = false;
  EXPECT_TRUE(ValidatePlan(planner.instance(), result->plan, options).ok());
}

TEST(PlannerTest, BudgetIncreaseOnlyAdds) {
  IncrementalPlanner planner = MakePlanner();
  const Plan before = planner.plan();
  auto result = planner.Apply(AtomicOp::BudgetChange(4, 100.0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->negative_impact, 0);
  EXPECT_EQ(NegativeImpact(before, result->plan), 0);
  // With budget 100, u5 can now also attend e3 (utility 0.6 > 0).
  EXPECT_TRUE(result->plan.Contains(4, kE3));
}

TEST(PlannerTest, BudgetChangeRejectsNegative) {
  IncrementalPlanner planner = MakePlanner();
  EXPECT_EQ(planner.Apply(AtomicOp::BudgetChange(0, -5.0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlannerTest, OutOfRangeIdsRejected) {
  IncrementalPlanner planner = MakePlanner();
  EXPECT_EQ(
      planner.Apply(AtomicOp::UpperBoundChange(99, 1)).status().code(),
      StatusCode::kOutOfRange);
  EXPECT_EQ(
      planner.Apply(AtomicOp::UtilityChange(99, kE1, 0.5)).status().code(),
      StatusCode::kOutOfRange);
}

TEST(PlannerTest, StateAdvancesAcrossOperations) {
  IncrementalPlanner planner = MakePlanner();
  ASSERT_TRUE(planner.Apply(AtomicOp::UpperBoundChange(kE4, 1)).ok());
  // Second op sees the updated plan: u4 now attends e2 (Example 6).
  EXPECT_TRUE(planner.plan().Contains(3, kE2));
  auto result = planner.Apply(AtomicOp::LowerBoundChange(kE1, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(planner.plan() == result->plan);
}

TEST(PlannerTest, ReSolveDoesNotAdvanceState) {
  IncrementalPlanner planner = MakePlanner();
  const Plan before = planner.plan();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGreedy;
  auto resolved = planner.ReSolve(AtomicOp::UpperBoundChange(kE4, 1), options);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  EXPECT_TRUE(planner.plan() == before);
  EXPECT_EQ(planner.instance().event(kE4).upper_bound, 5);
  EXPECT_GT(resolved->total_utility, 0.0);
}

TEST(PlannerTest, ReSolveWithGapBaseline) {
  IncrementalPlanner planner = MakePlanner();
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  auto resolved = planner.ReSolve(AtomicOp::LowerBoundChange(kE4, 2), options);
  ASSERT_TRUE(resolved.ok()) << resolved.status();
  ValidationOptions validation;
  validation.check_lower_bounds = false;
  Instance mutated = planner.instance();
  ASSERT_TRUE(mutated.set_event_bounds(kE4, 2, 5).ok());
  EXPECT_TRUE(ValidatePlan(mutated, resolved->plan, validation).ok());
}

}  // namespace
}  // namespace gepc
