#include "temporal/interval.h"

#include <gtest/gtest.h>

namespace gepc {
namespace {

TEST(IntervalTest, ValidityRequiresPositiveDuration) {
  EXPECT_TRUE((Interval{0, 1}.IsValid()));
  EXPECT_FALSE((Interval{5, 5}.IsValid()));
  EXPECT_FALSE((Interval{6, 5}.IsValid()));
}

TEST(IntervalTest, Duration) {
  EXPECT_EQ((Interval{60, 180}).Duration(), 120);
}

TEST(IntervalTest, DisjointIntervalsDoNotConflict) {
  EXPECT_FALSE(Conflicts({0, 10}, {11, 20}));
  EXPECT_FALSE(Conflicts({11, 20}, {0, 10}));
}

TEST(IntervalTest, OverlappingIntervalsConflict) {
  EXPECT_TRUE(Conflicts({0, 10}, {5, 15}));
  EXPECT_TRUE(Conflicts({5, 15}, {0, 10}));
}

TEST(IntervalTest, ContainmentConflicts) {
  EXPECT_TRUE(Conflicts({0, 100}, {10, 20}));
  EXPECT_TRUE(Conflicts({10, 20}, {0, 100}));
}

TEST(IntervalTest, BackToBackConflictsPerPaperRule) {
  // Example 1: e4 starts when e2 ends, "leaving no time to go from e2 to
  // e4" — touching intervals conflict.
  EXPECT_TRUE(Conflicts({0, 10}, {10, 20}));
  EXPECT_TRUE(Conflicts({10, 20}, {0, 10}));
}

TEST(IntervalTest, OneUnitGapDoesNotConflict) {
  EXPECT_FALSE(Conflicts({0, 10}, {11, 20}));
}

TEST(IntervalTest, SelfConflicts) {
  EXPECT_TRUE(Conflicts({5, 10}, {5, 10}));
}

TEST(IntervalTest, PaperExampleConflicts) {
  const Interval e1{13 * 60, 15 * 60};
  const Interval e2{16 * 60, 18 * 60};
  const Interval e3{13 * 60 + 30, 15 * 60};
  const Interval e4{18 * 60, 20 * 60};
  EXPECT_TRUE(Conflicts(e1, e3));   // e3 starts before e1 ends
  EXPECT_TRUE(Conflicts(e2, e4));   // e4 starts exactly when e2 ends
  EXPECT_FALSE(Conflicts(e1, e2));
  EXPECT_FALSE(Conflicts(e3, e4));
  EXPECT_FALSE(Conflicts(e1, e4));
  EXPECT_FALSE(Conflicts(e2, e3));
}

TEST(IntervalTest, FormatMinutesMorningAfternoon) {
  EXPECT_EQ(FormatMinutes(13 * 60), "1:00 p.m.");
  EXPECT_EQ(FormatMinutes(9 * 60 + 5), "9:05 a.m.");
  EXPECT_EQ(FormatMinutes(0), "12:00 a.m.");
  EXPECT_EQ(FormatMinutes(12 * 60), "12:00 p.m.");
}

TEST(IntervalTest, FormatIntervalMatchesPaperStyle) {
  EXPECT_EQ(FormatInterval({13 * 60, 15 * 60}), "1:00 p.m.-3:00 p.m.");
}

TEST(IntervalTest, FormatWrapsPastMidnight) {
  EXPECT_EQ(FormatMinutes(25 * 60), "1:00 a.m.");
}

TEST(IntervalTest, Equality) {
  EXPECT_TRUE((Interval{1, 2} == Interval{1, 2}));
  EXPECT_FALSE((Interval{1, 2} == Interval{1, 3}));
}

}  // namespace
}  // namespace gepc
