#include "gepc/exact.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::MakePaperInstance;
using testing_support::MakePaperPlan;

TEST(ExactTest, FindsFeasibleOptimumOnPaperInstance) {
  const Instance instance = MakePaperInstance();
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->feasible);
  EXPECT_TRUE(ValidatePlan(instance, result->plan).ok());
  // The Table I plan scores 6.3, so the optimum is at least that.
  EXPECT_GE(result->total_utility, 6.3 - 1e-9);
  EXPECT_DOUBLE_EQ(result->total_utility,
                   result->plan.TotalUtility(instance));
}

TEST(ExactTest, SingleUserSingleEvent) {
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{1, 0}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.5);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  EXPECT_NEAR(result->total_utility, 0.5, 1e-12);
  EXPECT_TRUE(result->plan.Contains(0, 0));
}

TEST(ExactTest, DetectsInfeasibleLowerBound) {
  // One user, two simultaneous events each demanding one attendee.
  std::vector<User> users = {{{0, 0}, 10.0}};
  std::vector<Event> events = {{{1, 0}, 1, 1, {0, 10}},
                               {{0, 1}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.5);
  instance.set_utility(0, 1, 0.5);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->feasible);
}

TEST(ExactTest, BudgetForcesChoice) {
  // Two distant conflict-free events; budget covers only one round trip.
  std::vector<User> users = {{{0, 0}, 25.0}};
  std::vector<Event> events = {{{10, 0}, 0, 1, {0, 10}},
                               {{-10, 0}, 0, 1, {20, 30}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.4);
  instance.set_utility(0, 1, 0.9);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  // Attending both costs 10 + 20 + 10 = 40 > 25; pick the better one.
  EXPECT_NEAR(result->total_utility, 0.9, 1e-12);
  EXPECT_TRUE(result->plan.Contains(0, 1));
}

TEST(ExactTest, TimeConflictForcesChoice) {
  std::vector<User> users = {{{0, 0}, 100.0}};
  std::vector<Event> events = {{{1, 0}, 0, 1, {0, 10}},
                               {{0, 1}, 0, 1, {5, 15}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.8);
  instance.set_utility(0, 1, 0.3);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_utility, 0.8, 1e-12);
}

TEST(ExactTest, UpperBoundSharesUsers) {
  // Two users, one event with capacity 1: only the better match attends.
  std::vector<User> users = {{{0, 0}, 10.0}, {{0, 0}, 10.0}};
  std::vector<Event> events = {{{1, 0}, 0, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.3);
  instance.set_utility(1, 0, 0.9);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_utility, 0.9, 1e-12);
  EXPECT_TRUE(result->plan.Contains(1, 0));
  EXPECT_FALSE(result->plan.Contains(0, 0));
}

TEST(ExactTest, LowerBoundOverridesUtilityPreference) {
  // The event with xi = 2 must get both users even though one of them
  // would individually prefer the other event.
  std::vector<User> users = {{{0, 0}, 100.0}, {{0, 0}, 100.0}};
  std::vector<Event> events = {{{1, 0}, 2, 2, {0, 10}},
                               {{0, 1}, 0, 2, {5, 15}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.2);
  instance.set_utility(0, 1, 0.9);
  instance.set_utility(1, 0, 0.2);
  instance.set_utility(1, 1, 0.9);
  auto result = SolveGepcExact(instance);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->feasible);
  EXPECT_EQ(result->plan.attendance(0), 2);
  EXPECT_NEAR(result->total_utility, 0.4, 1e-12);
}

TEST(ExactTest, RejectsOversizedInstances) {
  auto oversized = MakePaperInstance();
  ExactOptions options;
  options.max_users = 2;
  EXPECT_EQ(SolveGepcExact(oversized, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactTest, NodeBudgetAborts) {
  const Instance instance = MakePaperInstance();
  ExactOptions options;
  options.max_nodes = 3;
  auto result = SolveGepcExact(instance, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace gepc
