// Differential battery gating the flat LP core: the flat engine must agree
// with the legacy engine on thousands of seeded random programs, and the
// full GEPC pipeline must produce byte-identical plans whichever engine
// solves the GAP relaxation.
#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"
#include "gap/gap_instance.h"
#include "gap/gap_lp.h"
#include "gepc/solver.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

SimplexOptions EngineOptions(SimplexEngine engine) {
  SimplexOptions options;
  options.engine = engine;
  return options;
}

/// Coefficient families the random programs draw from. Rational-friendly
/// values keep intermediate pivots exactly representable (so any mismatch
/// is a logic bug, not rounding); adversarial floats stress the tolerance
/// policy with values that do round.
double DrawCoefficient(Rng& rng, bool rational_friendly) {
  if (rational_friendly) {
    // Multiples of 1/4 in [-3, 3]; occasionally exactly zero.
    return 0.25 * static_cast<double>(rng.UniformInt(-12, 12));
  }
  const double magnitude = std::pow(10.0, rng.UniformDouble(-3.0, 3.0));
  return (rng.Bernoulli(0.5) ? 1.0 : -1.0) * magnitude *
         rng.UniformDouble(0.5, 1.5);
}

/// Weighted toward <= rows so a healthy share of programs stays feasible;
/// >= and = rows still appear often enough to exercise phase 1.
Relation DrawRelation(Rng& rng) {
  switch (rng.UniformInt(0, 9)) {
    case 0:
    case 1:
      return Relation::kGreaterEqual;
    case 2:
    case 3:
      return Relation::kEqual;
    default:
      return Relation::kLessEqual;
  }
}

/// Random LP with degenerate structure on purpose: duplicated rows, zero
/// rhs, duplicate objective coefficients — everything that forces the
/// ratio-test tie-breaks the two engines must take identically.
LinearProgram MakeRandomLp(uint64_t seed) {
  Rng rng(seed);
  const int n = static_cast<int>(rng.UniformInt(1, 14));
  const int m = static_cast<int>(rng.UniformInt(1, 12));
  const bool rational = rng.Bernoulli(0.5);
  const bool maximize = rng.Bernoulli(0.3);

  LinearProgram lp(maximize ? LinearProgram::Sense::kMaximize
                            : LinearProgram::Sense::kMinimize,
                   n);
  for (int v = 0; v < n; ++v) {
    double c = DrawCoefficient(rng, rational);
    // Bias the objective toward the bounded direction (costs >= 0 when
    // minimizing, <= 0 when maximizing) so a solid share of programs is
    // optimal; the rest still produce unbounded coverage.
    if (rng.Bernoulli(0.75)) c = maximize ? -std::fabs(c) : std::fabs(c);
    lp.set_objective(v, c);
  }
  std::vector<std::pair<int, double>> previous;
  double previous_rhs = 0.0;
  Relation previous_rel = Relation::kLessEqual;
  for (int r = 0; r < m; ++r) {
    if (!previous.empty() && rng.Bernoulli(0.15)) {
      // Exact duplicate row: a guaranteed degenerate tie.
      lp.AddConstraint(previous, previous_rel, previous_rhs);
      continue;
    }
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.7)) {
        terms.emplace_back(v, DrawCoefficient(rng, rational));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    if (rng.Bernoulli(0.1)) {
      // Duplicate term for the same variable (exercises term summing).
      terms.push_back(terms.front());
    }
    const Relation rel = DrawRelation(rng);
    double rhs = rng.Bernoulli(0.15) ? 0.0 : DrawCoefficient(rng, rational);
    if (rel == Relation::kLessEqual && rng.Bernoulli(0.85)) {
      rhs = std::fabs(rhs);  // keep a healthy share of feasible programs
    }
    if (rel != Relation::kLessEqual && rng.Bernoulli(0.5)) {
      rhs = -std::fabs(rhs);  // >= / = with rhs <= 0 is satisfiable at x = 0
    }
    previous = terms;
    previous_rhs = rhs;
    previous_rel = rel;
    lp.AddConstraint(std::move(terms), rel, rhs);
  }
  return lp;
}

/// Statuses the solver may legitimately return for a random program; both
/// engines must land in the same bucket.
enum class Bucket { kOptimal, kInfeasible, kUnbounded, kOther };

Bucket BucketOf(const Result<LpSolution>& result) {
  if (result.ok()) return Bucket::kOptimal;
  if (result.status().code() == StatusCode::kInfeasible) {
    return Bucket::kInfeasible;
  }
  if (result.status().message().find("unbounded") != std::string::npos) {
    return Bucket::kUnbounded;
  }
  return Bucket::kOther;
}

TEST(LpDifferentialTest, RandomLpsAgreeAcrossEngines) {
  constexpr int kTrials = 1700;
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const LinearProgram lp = MakeRandomLp(0x9E3779B9u + trial);
    const auto legacy = SolveLp(lp, EngineOptions(SimplexEngine::kLegacy));
    const auto flat = SolveLp(lp, EngineOptions(SimplexEngine::kFlat));

    ASSERT_EQ(BucketOf(legacy), BucketOf(flat))
        << "trial " << trial << ": legacy=" << legacy.status()
        << " flat=" << flat.status();
    switch (BucketOf(legacy)) {
      case Bucket::kOptimal: {
        ++optimal;
        const double scale =
            std::max(1.0, std::fabs(legacy->objective_value));
        EXPECT_NEAR(legacy->objective_value, flat->objective_value,
                    1e-9 * scale)
            << "trial " << trial;
        ASSERT_EQ(legacy->x.size(), flat->x.size());
        for (size_t v = 0; v < legacy->x.size(); ++v) {
          EXPECT_NEAR(legacy->x[v], flat->x[v], 1e-7 * scale)
              << "trial " << trial << " var " << v;
        }
        break;
      }
      case Bucket::kInfeasible:
        ++infeasible;
        break;
      case Bucket::kUnbounded:
        ++unbounded;
        break;
      case Bucket::kOther:
        FAIL() << "trial " << trial
               << ": unexpected status " << legacy.status();
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GT(optimal, kTrials / 4);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(unbounded, 0);
}

GapInstance MakeRandomGap(uint64_t seed) {
  Rng rng(seed);
  const int machines = static_cast<int>(rng.UniformInt(2, 6));
  const int jobs = static_cast<int>(rng.UniformInt(2, 12));
  GapInstance gap(machines, jobs);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, rng.UniformDouble(2.0, 12.0));
  }
  for (int j = 0; j < jobs; ++j) {
    // Every job gets at least one eligible machine so Validate() passes;
    // ties in cost/processing are common by construction.
    const int anchor = static_cast<int>(rng.UniformInt(0, machines - 1));
    for (int i = 0; i < machines; ++i) {
      if (i != anchor && rng.Bernoulli(0.35)) continue;
      const double p = 0.5 * static_cast<double>(rng.UniformInt(1, 8));
      const double c = 0.25 * static_cast<double>(rng.UniformInt(0, 8));
      gap.SetPair(i, j, std::min(p, gap.capacity(i)), c);
    }
  }
  return gap;
}

double TotalCost(const GapInstance& gap, const FractionalAssignment& frac) {
  double cost = 0.0;
  for (size_t j = 0; j < frac.job_shares.size(); ++j) {
    for (const auto& share : frac.job_shares[j]) {
      cost += share.fraction * gap.cost(share.machine, static_cast<int>(j));
    }
  }
  return cost;
}

TEST(LpDifferentialTest, RandomGapRelaxationsAgreeAcrossEngines) {
  constexpr int kTrials = 400;
  int solved = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const GapInstance gap = MakeRandomGap(0xC0FFEEu + trial);
    GapLpOptions legacy_options;
    legacy_options.simplex.engine = SimplexEngine::kLegacy;
    GapLpOptions flat_options;
    flat_options.simplex.engine = SimplexEngine::kFlat;

    const auto legacy = SolveGapLpSimplex(gap, legacy_options);
    const auto flat = SolveGapLpSimplex(gap, flat_options);
    ASSERT_EQ(legacy.ok(), flat.ok())
        << "trial " << trial << ": legacy=" << legacy.status()
        << " flat=" << flat.status();
    if (!legacy.ok()) continue;
    ++solved;

    const double legacy_cost = TotalCost(gap, *legacy);
    const double flat_cost = TotalCost(gap, *flat);
    EXPECT_NEAR(legacy_cost, flat_cost,
                1e-9 * std::max(1.0, std::fabs(legacy_cost)))
        << "trial " << trial;

    // Same engine-internal pivot sequence implies the same vertex: the
    // fractional supports must line up share for share.
    ASSERT_EQ(legacy->job_shares.size(), flat->job_shares.size());
    for (size_t j = 0; j < legacy->job_shares.size(); ++j) {
      ASSERT_EQ(legacy->job_shares[j].size(), flat->job_shares[j].size())
          << "trial " << trial << " job " << j;
      for (size_t s = 0; s < legacy->job_shares[j].size(); ++s) {
        EXPECT_EQ(legacy->job_shares[j][s].machine,
                  flat->job_shares[j][s].machine)
            << "trial " << trial << " job " << j;
        EXPECT_NEAR(legacy->job_shares[j][s].fraction,
                    flat->job_shares[j][s].fraction, 1e-9)
            << "trial " << trial << " job " << j;
      }
    }
  }
  EXPECT_GT(solved, kTrials / 2);
}

std::string SerializePlan(const Plan& plan) {
  std::ostringstream out;
  const Status status = SavePlan(plan, out);
  EXPECT_TRUE(status.ok()) << status;
  return out.str();
}

GepcOptions GapBasedOptionsFor(SimplexEngine engine) {
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  options.gap_based.gap.engine = GapLpEngine::kSimplex;
  options.gap_based.gap.lp.simplex.engine = engine;
  return options;
}

void ExpectByteIdenticalPlans(const Instance& instance,
                              const std::string& label) {
  const auto legacy =
      SolveGepc(instance, GapBasedOptionsFor(SimplexEngine::kLegacy));
  const auto flat =
      SolveGepc(instance, GapBasedOptionsFor(SimplexEngine::kFlat));
  ASSERT_EQ(legacy.ok(), flat.ok())
      << label << ": legacy=" << legacy.status()
      << " flat=" << flat.status();
  if (!legacy.ok()) return;
  EXPECT_EQ(legacy->total_utility, flat->total_utility) << label;
  EXPECT_TRUE(legacy->plan == flat->plan) << label;
  EXPECT_EQ(SerializePlan(legacy->plan), SerializePlan(flat->plan)) << label;
}

TEST(LpDifferentialTest, PaperInstancePlansAreByteIdentical) {
  ExpectByteIdenticalPlans(testing_support::MakePaperInstance(), "paper");
}

TEST(LpDifferentialTest, GeneratedCorpusPlansAreByteIdentical) {
  for (uint64_t seed : {1u, 7u, 23u, 42u, 1234u, 90210u}) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.seed = seed;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    ExpectByteIdenticalPlans(*instance, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace gepc
