// Differential battery gating the LP core: every pivot rule must agree on
// thousands of seeded random programs (same status bucket, same optimal
// objective — the rules may stop at different vertices of the same optimal
// face, never at different optima), workspace reuse must be byte-invisible
// (a reused arena and a fresh solve take the identical pivot path), and the
// full GEPC pipeline must produce byte-identical plans run to run.
#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "data/io.h"
#include "gap/gap_instance.h"
#include "gap/gap_lp.h"
#include "gepc/solver.h"
#include "lp/linear_program.h"
#include "lp/simplex.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

constexpr SimplexPivotRule kAllRules[] = {SimplexPivotRule::kDantzig,
                                          SimplexPivotRule::kBland,
                                          SimplexPivotRule::kSteepestEdge};

const char* RuleName(SimplexPivotRule rule) {
  switch (rule) {
    case SimplexPivotRule::kDantzig:
      return "dantzig";
    case SimplexPivotRule::kBland:
      return "bland";
    case SimplexPivotRule::kSteepestEdge:
      return "steepest-edge";
  }
  return "?";
}

SimplexOptions RuleOptions(SimplexPivotRule rule) {
  SimplexOptions options;
  options.pivot_rule = rule;
  return options;
}

/// Coefficient families the random programs draw from. Rational-friendly
/// values keep intermediate pivots exactly representable (so any mismatch
/// is a logic bug, not rounding); adversarial floats stress the tolerance
/// policy with values that do round.
double DrawCoefficient(Rng& rng, bool rational_friendly) {
  if (rational_friendly) {
    // Multiples of 1/4 in [-3, 3]; occasionally exactly zero.
    return 0.25 * static_cast<double>(rng.UniformInt(-12, 12));
  }
  const double magnitude = std::pow(10.0, rng.UniformDouble(-3.0, 3.0));
  return (rng.Bernoulli(0.5) ? 1.0 : -1.0) * magnitude *
         rng.UniformDouble(0.5, 1.5);
}

/// Weighted toward <= rows so a healthy share of programs stays feasible;
/// >= and = rows still appear often enough to exercise phase 1.
Relation DrawRelation(Rng& rng) {
  switch (rng.UniformInt(0, 9)) {
    case 0:
    case 1:
      return Relation::kGreaterEqual;
    case 2:
    case 3:
      return Relation::kEqual;
    default:
      return Relation::kLessEqual;
  }
}

/// Random LP with degenerate structure on purpose: duplicated rows, zero
/// rhs, duplicate objective coefficients — everything that forces the
/// ratio-test tie-breaks every pricing rule must survive.
LinearProgram MakeRandomLp(uint64_t seed) {
  Rng rng(seed);
  const int n = static_cast<int>(rng.UniformInt(1, 14));
  const int m = static_cast<int>(rng.UniformInt(1, 12));
  const bool rational = rng.Bernoulli(0.5);
  const bool maximize = rng.Bernoulli(0.3);

  LinearProgram lp(maximize ? LinearProgram::Sense::kMaximize
                            : LinearProgram::Sense::kMinimize,
                   n);
  for (int v = 0; v < n; ++v) {
    double c = DrawCoefficient(rng, rational);
    // Bias the objective toward the bounded direction (costs >= 0 when
    // minimizing, <= 0 when maximizing) so a solid share of programs is
    // optimal; the rest still produce unbounded coverage.
    if (rng.Bernoulli(0.75)) c = maximize ? -std::fabs(c) : std::fabs(c);
    lp.set_objective(v, c);
  }
  std::vector<std::pair<int, double>> previous;
  double previous_rhs = 0.0;
  Relation previous_rel = Relation::kLessEqual;
  for (int r = 0; r < m; ++r) {
    if (!previous.empty() && rng.Bernoulli(0.15)) {
      // Exact duplicate row: a guaranteed degenerate tie.
      lp.AddConstraint(previous, previous_rel, previous_rhs);
      continue;
    }
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < n; ++v) {
      if (rng.Bernoulli(0.7)) {
        terms.emplace_back(v, DrawCoefficient(rng, rational));
      }
    }
    if (terms.empty()) terms.emplace_back(0, 1.0);
    if (rng.Bernoulli(0.1)) {
      // Duplicate term for the same variable (exercises term summing).
      terms.push_back(terms.front());
    }
    const Relation rel = DrawRelation(rng);
    double rhs = rng.Bernoulli(0.15) ? 0.0 : DrawCoefficient(rng, rational);
    if (rel == Relation::kLessEqual && rng.Bernoulli(0.85)) {
      rhs = std::fabs(rhs);  // keep a healthy share of feasible programs
    }
    if (rel != Relation::kLessEqual && rng.Bernoulli(0.5)) {
      rhs = -std::fabs(rhs);  // >= / = with rhs <= 0 is satisfiable at x = 0
    }
    previous = terms;
    previous_rhs = rhs;
    previous_rel = rel;
    lp.AddConstraint(std::move(terms), rel, rhs);
  }
  return lp;
}

/// Objective agreement tolerance for `lp`: a relative part, plus a slice
/// of the program's natural objective unit ||c||_inf * ||b||_inf scaled
/// by 1e-7 to cover basis-conditioning amplification on the adversarial
/// subcorpus (coefficients spanning 1e-3..1e3). Near-zero optima on such
/// programs are cancellation residues, and two pivot paths legitimately
/// land on different residues of that size — while the bug class this
/// battery exists to catch (premature optimality, lost feasibility)
/// diverges by the full objective magnitude, orders above this.
double ObjectiveTolerance(const LinearProgram& lp, double objective) {
  double c_inf = 0.0;
  for (int v = 0; v < lp.num_vars(); ++v) {
    c_inf = std::max(c_inf, std::fabs(lp.objective(v)));
  }
  double b_inf = 0.0;
  for (int r = 0; r < lp.num_constraints(); ++r) {
    b_inf = std::max(b_inf, std::fabs(lp.constraint(r).rhs));
  }
  return 1e-7 * (std::max(1.0, std::fabs(objective)) + c_inf * b_inf);
}

/// Statuses the solver may legitimately return for a random program; every
/// pivot rule must land in the same bucket.
enum class Bucket { kOptimal, kInfeasible, kUnbounded, kOther };

Bucket BucketOf(const Result<LpSolution>& result) {
  if (result.ok()) return Bucket::kOptimal;
  if (result.status().code() == StatusCode::kInfeasible) {
    return Bucket::kInfeasible;
  }
  if (result.status().message().find("unbounded") != std::string::npos) {
    return Bucket::kUnbounded;
  }
  return Bucket::kOther;
}

TEST(LpDifferentialTest, RandomLpsAgreeAcrossPivotRules) {
  constexpr int kTrials = 1700;
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const LinearProgram lp = MakeRandomLp(0x9E3779B9u + trial);
    const auto dantzig =
        SolveLp(lp, RuleOptions(SimplexPivotRule::kDantzig));
    for (const SimplexPivotRule rule :
         {SimplexPivotRule::kBland, SimplexPivotRule::kSteepestEdge}) {
      const auto other = SolveLp(lp, RuleOptions(rule));
      ASSERT_EQ(BucketOf(dantzig), BucketOf(other))
          << "trial " << trial << ": dantzig=" << dantzig.status() << " "
          << RuleName(rule) << "=" << other.status();
      if (dantzig.ok()) {
        // Same optimum; possibly a different vertex of the optimal face,
        // so the per-variable solution is deliberately NOT compared.
        EXPECT_NEAR(dantzig->objective_value, other->objective_value,
                    ObjectiveTolerance(lp, dantzig->objective_value))
            << "trial " << trial << " rule " << RuleName(rule);
      }
    }
    switch (BucketOf(dantzig)) {
      case Bucket::kOptimal:
        ++optimal;
        break;
      case Bucket::kInfeasible:
        ++infeasible;
        break;
      case Bucket::kUnbounded:
        ++unbounded;
        break;
      case Bucket::kOther:
        FAIL() << "trial " << trial
               << ": unexpected status " << dantzig.status();
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GT(optimal, kTrials / 4);
  EXPECT_GT(infeasible, 0);
  EXPECT_GT(unbounded, 0);
}

TEST(LpDifferentialTest, WorkspaceReuseIsByteInvisible) {
  // A reused arena must take the identical pivot path a fresh solve takes:
  // status, objective and every coordinate bit-for-bit, across the whole
  // corpus and under every rule. This is the gate that replaced the
  // legacy-engine comparison when the legacy tableau was removed.
  constexpr int kTrials = 600;
  for (const SimplexPivotRule rule : kAllRules) {
    LpWorkspace workspace;
    for (int trial = 0; trial < kTrials; ++trial) {
      const LinearProgram lp = MakeRandomLp(0x9E3779B9u + trial);
      const auto fresh = SolveLp(lp, RuleOptions(rule));
      const auto reused = SolveLp(lp, RuleOptions(rule), &workspace);
      ASSERT_EQ(BucketOf(fresh), BucketOf(reused))
          << "trial " << trial << " rule " << RuleName(rule) << ": fresh="
          << fresh.status() << " reused=" << reused.status();
      if (!fresh.ok()) continue;
      EXPECT_EQ(fresh->objective_value, reused->objective_value)
          << "trial " << trial << " rule " << RuleName(rule);
      ASSERT_EQ(fresh->x.size(), reused->x.size());
      for (size_t v = 0; v < fresh->x.size(); ++v) {
        EXPECT_EQ(fresh->x[v], reused->x[v])
            << "trial " << trial << " rule " << RuleName(rule) << " var "
            << v;
      }
    }
  }
}

GapInstance MakeRandomGap(uint64_t seed) {
  Rng rng(seed);
  const int machines = static_cast<int>(rng.UniformInt(2, 6));
  const int jobs = static_cast<int>(rng.UniformInt(2, 12));
  GapInstance gap(machines, jobs);
  for (int i = 0; i < machines; ++i) {
    gap.set_capacity(i, rng.UniformDouble(2.0, 12.0));
  }
  for (int j = 0; j < jobs; ++j) {
    // Every job gets at least one eligible machine so Validate() passes;
    // ties in cost/processing are common by construction.
    const int anchor = static_cast<int>(rng.UniformInt(0, machines - 1));
    for (int i = 0; i < machines; ++i) {
      if (i != anchor && rng.Bernoulli(0.35)) continue;
      const double p = 0.5 * static_cast<double>(rng.UniformInt(1, 8));
      const double c = 0.25 * static_cast<double>(rng.UniformInt(0, 8));
      gap.SetPair(i, j, std::min(p, gap.capacity(i)), c);
    }
  }
  return gap;
}

double TotalCost(const GapInstance& gap, const FractionalAssignment& frac) {
  double cost = 0.0;
  for (size_t j = 0; j < frac.job_shares.size(); ++j) {
    for (const auto& share : frac.job_shares[j]) {
      cost += share.fraction * gap.cost(share.machine, static_cast<int>(j));
    }
  }
  return cost;
}

TEST(LpDifferentialTest, RandomGapRelaxationsAgreeAcrossPivotRules) {
  constexpr int kTrials = 400;
  int solved = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const GapInstance gap = MakeRandomGap(0xC0FFEEu + trial);
    GapLpOptions dantzig_options;
    dantzig_options.simplex.pivot_rule = SimplexPivotRule::kDantzig;
    const auto dantzig = SolveGapLpSimplex(gap, dantzig_options);
    if (dantzig.ok()) ++solved;
    const double dantzig_cost = dantzig.ok() ? TotalCost(gap, *dantzig) : 0.0;

    for (const SimplexPivotRule rule :
         {SimplexPivotRule::kBland, SimplexPivotRule::kSteepestEdge}) {
      GapLpOptions options;
      options.simplex.pivot_rule = rule;
      const auto other = SolveGapLpSimplex(gap, options);
      ASSERT_EQ(dantzig.ok(), other.ok())
          << "trial " << trial << ": dantzig=" << dantzig.status() << " "
          << RuleName(rule) << "=" << other.status();
      if (!dantzig.ok()) continue;
      // The relaxation's optimal cost is unique even when the fractional
      // supports differ (different vertex, same face) — so only the cost
      // is compared, not the shares.
      EXPECT_NEAR(dantzig_cost, TotalCost(gap, *other),
                  1e-9 * std::max(1.0, std::fabs(dantzig_cost)))
          << "trial " << trial << " rule " << RuleName(rule);
    }
  }
  EXPECT_GT(solved, kTrials / 2);
}

std::string SerializePlan(const Plan& plan) {
  std::ostringstream out;
  const Status status = SavePlan(plan, out);
  EXPECT_TRUE(status.ok()) << status;
  return out.str();
}

GepcOptions GapBasedOptions() {
  GepcOptions options;
  options.algorithm = GepcAlgorithm::kGapBased;
  options.gap_based.gap.engine = GapLpEngine::kSimplex;
  return options;
}

/// Two independent runs of the simplex-backed pipeline must serialize to
/// the same bytes: the GAP loop reuses its LP workspace across relaxations,
/// and any state leaking between solves would show up here first.
void ExpectByteIdenticalPlans(const Instance& instance,
                              const std::string& label) {
  const auto first = SolveGepc(instance, GapBasedOptions());
  const auto second = SolveGepc(instance, GapBasedOptions());
  ASSERT_EQ(first.ok(), second.ok())
      << label << ": first=" << first.status()
      << " second=" << second.status();
  if (!first.ok()) return;
  EXPECT_EQ(first->total_utility, second->total_utility) << label;
  EXPECT_TRUE(first->plan == second->plan) << label;
  EXPECT_EQ(SerializePlan(first->plan), SerializePlan(second->plan)) << label;
}

TEST(LpDifferentialTest, PaperInstancePlansAreByteIdentical) {
  ExpectByteIdenticalPlans(testing_support::MakePaperInstance(), "paper");
}

TEST(LpDifferentialTest, GeneratedCorpusPlansAreByteIdentical) {
  for (uint64_t seed : {1u, 7u, 23u, 42u, 1234u, 90210u}) {
    GeneratorConfig config;
    config.num_users = 40;
    config.num_events = 10;
    config.seed = seed;
    auto instance = GenerateInstance(config);
    ASSERT_TRUE(instance.ok()) << instance.status();
    ExpectByteIdenticalPlans(*instance, "seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace gepc
