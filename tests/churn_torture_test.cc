// Churn torture for the shard tracker: drive a seeded IEP trace through an
// IncrementalPlanner with a ShardTracker riding along, and at EVERY op index
// assert the governing invariant — the incrementally migrated partition is
// bit-identical to a from-scratch rebuild against the current sites. Sweeps
// also interleave warm-started rebalances mid-trace and force the degraded
// (full-rebuild) migration path with the `shard.migrate` fault; the
// invariant must survive all of it.

#include "shard/rebalance.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/generator.h"
#include "fault/fault.h"
#include "gepc/solver.h"
#include "iep/planner.h"
#include "service/torture.h"

namespace gepc {
namespace {

Instance MakeLocalInstance(int users, int events, uint64_t seed) {
  GeneratorConfig config;
  config.num_users = users;
  config.num_events = events;
  config.seed = seed;
  config.budget_min_fraction = 0.05;
  config.budget_max_fraction = 0.15;
  auto instance = GenerateInstance(config);
  EXPECT_TRUE(instance.ok()) << instance.status();
  return *std::move(instance);
}

/// Seeded op trace against `instance`: GenerateTortureOps needs a planner to
/// keep event ids meaningful as `new` ops land, so a throwaway planner
/// absorbs the generation pass and the caller replays the ops fresh.
std::vector<AtomicOp> MakeTrace(const Instance& instance, const Plan& plan,
                                int count, uint64_t seed) {
  auto scratch = IncrementalPlanner::Create(instance, plan);
  EXPECT_TRUE(scratch.ok()) << scratch.status();
  return GenerateTortureOps(&*scratch, count, seed);
}

class ChurnTortureTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::Global().Reset(); }
  void TearDown() override { fault::Registry::Global().Reset(); }

  /// Replays `ops` through a fresh planner + tracker, asserting the
  /// invariant after every applied op (ops the planner rejects leave the
  /// instance untouched, so the tracker skips them — exactly the service's
  /// behaviour). `rebalance_every` > 0 interleaves a Rebalance after every
  /// N applied ops and re-asserts. Fills `stats_out` with the tracker's
  /// final stats (ASSERT needs a void function).
  static void Replay(const Instance& instance, const Plan& plan,
                     const std::vector<AtomicOp>& ops, int num_shards,
                     int rebalance_every, ShardTrackerStats* stats_out) {
    auto planner = IncrementalPlanner::Create(instance, plan);
    EXPECT_TRUE(planner.ok()) << planner.status();
    ShardTracker tracker(planner->instance(), num_shards);
    EXPECT_EQ(tracker.partition(),
              tracker.RebuildFromSites(planner->instance()));
    int applied = 0;
    for (size_t index = 0; index < ops.size(); ++index) {
      if (!planner->Apply(ops[index]).ok()) continue;
      ++applied;
      const Status migrated =
          tracker.ApplyMigration(planner->instance(), ops[index]);
      ASSERT_TRUE(migrated.ok()) << "op " << index << ": " << migrated;
      // The invariant, at every migration point: incremental == rebuild.
      ASSERT_EQ(tracker.partition(),
                tracker.RebuildFromSites(planner->instance()))
          << "diverged after op " << index;
      if (rebalance_every > 0 && applied % rebalance_every == 0) {
        auto report = tracker.Rebalance(planner->instance());
        ASSERT_TRUE(report.ok()) << "op " << index << ": "
                                 << report.status();
        ASSERT_EQ(tracker.partition(),
                  tracker.RebuildFromSites(planner->instance()))
            << "diverged after rebalance at op " << index;
      }
    }
    EXPECT_GT(applied, 0);
    *stats_out = tracker.stats();
  }
};

TEST_F(ChurnTortureTest, MigratedStateEqualsRebuildAtEveryOpIndex) {
  for (const uint64_t seed : {1u, 2u}) {
    const Instance instance = MakeLocalInstance(80, 14, seed);
    auto solved = SolveGepc(instance, GepcOptions{});
    ASSERT_TRUE(solved.ok()) << solved.status();
    const std::vector<AtomicOp> ops =
        MakeTrace(instance, solved->plan, 60, seed * 7 + 1);
    for (const int shards : {2, 4}) {
      ShardTrackerStats stats;
      Replay(instance, solved->plan, ops, shards, /*rebalance_every=*/0,
             &stats);
      // The trace's budget/location/new-event ops must actually exercise
      // the migration machinery, or the sweep proves nothing.
      EXPECT_GT(stats.migrations, 0u) << "seed " << seed;
      EXPECT_EQ(stats.full_rebuilds, 0u);
    }
  }
}

TEST_F(ChurnTortureTest, InvariantSurvivesInterleavedRebalances) {
  const Instance instance = MakeLocalInstance(90, 16, 5);
  auto solved = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const std::vector<AtomicOp> ops = MakeTrace(instance, solved->plan, 48, 11);
  ShardTrackerStats stats;
  Replay(instance, solved->plan, ops, 3, /*rebalance_every=*/7, &stats);
  EXPECT_GT(stats.rebalances, 0u);
  EXPECT_GT(stats.migrations, 0u);
}

TEST_F(ChurnTortureTest, DegradedFullRebuildPathKeepsTheSameInvariant) {
  const Instance instance = MakeLocalInstance(80, 14, 3);
  auto solved = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  const std::vector<AtomicOp> ops = MakeTrace(instance, solved->plan, 40, 13);
  // Every migration attempt degrades to a full rebuild (no count bound):
  // degraded must mean slower, never different.
  ASSERT_TRUE(fault::ArmFromSpec("shard.migrate=unavailable").ok());
  ShardTrackerStats stats;
  Replay(instance, solved->plan, ops, 4, /*rebalance_every=*/0, &stats);
  EXPECT_GT(stats.full_rebuilds, 0u);
}

TEST_F(ChurnTortureTest, RebalanceFaultAbortsAndLeavesPartitionUntouched) {
  const Instance instance = MakeLocalInstance(70, 12, 9);
  auto solved = SolveGepc(instance, GepcOptions{});
  ASSERT_TRUE(solved.ok()) << solved.status();
  auto planner = IncrementalPlanner::Create(instance, solved->plan);
  ASSERT_TRUE(planner.ok());
  ShardTracker tracker(planner->instance(), 3);
  const ShardPartition before = tracker.partition();
  ASSERT_TRUE(fault::ArmFromSpec("shard.rebalance=unavailable:count=1").ok());
  auto aborted = tracker.Rebalance(planner->instance());
  EXPECT_FALSE(aborted.ok());
  EXPECT_EQ(tracker.partition(), before);
  EXPECT_EQ(tracker.stats().rebalances, 0u);
  // The window fault is spent; the next attempt goes through.
  auto report = tracker.Rebalance(planner->instance());
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(tracker.stats().rebalances, 1u);
  EXPECT_EQ(tracker.partition(),
            tracker.RebuildFromSites(planner->instance()));
}

}  // namespace
}  // namespace gepc
