// Fast in-suite run of the crash-recovery torture harness (the full-size
// variant lives in torture_slow_test.cc under the `slow` ctest label, and
// tools/gepc_torture exposes it as a standalone binary). Truncates the
// journal of a seeded run at every byte offset and asserts recovery is
// byte-identical to the reference state at that point.

#include "service/torture.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/logging.h"
#include "data/generator.h"

namespace gepc {
namespace {

std::string MakeWorkdir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  EXPECT_FALSE(ec) << ec.message();
  return dir;
}

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Thousands of recoveries; the per-recovery Info lines are pure noise.
    previous_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kWarning);
  }
  void TearDown() override { SetLogLevel(previous_level_); }

  LogLevel previous_level_ = LogLevel::kInfo;
};

TEST_F(TortureTest, ByteLevelCrashRecoveryIsByteIdentical) {
  TortureOptions options;
  options.users = 25;
  options.events = 8;
  options.ops = 40;
  options.seed = 5;
  options.byte_level = true;
  options.workdir = MakeWorkdir("torture_fast");

  auto report = RunCrashRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->ops_journaled, 40u);
  // Every byte offset 0..journal_bytes is a truncation point.
  EXPECT_EQ(report->truncation_points,
            static_cast<int>(report->journal_bytes) + 1);
  // Mid-row truncations must have exercised the torn-tail path.
  EXPECT_GT(report->torn_recoveries, 0);
  // Full service boot at the base state and after each committed op.
  EXPECT_EQ(report->service_recoveries, 41);
}

TEST_F(TortureTest, BoundaryTortureWithoutServiceRecover) {
  TortureOptions options;
  options.users = 20;
  options.events = 6;
  options.ops = 25;
  options.seed = 9;
  options.byte_level = false;
  options.service_recover = false;
  options.workdir = MakeWorkdir("torture_boundaries");

  auto report = RunCrashRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  EXPECT_EQ(report->service_recoveries, 0);
  // Boundary +/- 1 offsets: at least one truncation point per op.
  EXPECT_GE(report->truncation_points, 25);
}

TEST_F(TortureTest, DifferentSeedsAllPass) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    TortureOptions options;
    options.users = 15;
    options.events = 5;
    options.ops = 15;
    options.seed = seed;
    options.byte_level = false;
    options.workdir = MakeWorkdir("torture_seed_" + std::to_string(seed));
    auto report = RunCrashRecoveryTorture(options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->passed) << "seed " << seed << ": " << report->failure;
  }
}

TEST_F(TortureTest, CheckpointVariantRecoversAtEveryBoundary) {
  // Fallback warnings fire at every torn-checkpoint offset by design.
  SetLogLevel(LogLevel::kError);
  TortureOptions options;
  options.users = 20;
  options.events = 6;
  options.ops = 30;
  options.seed = 13;
  options.byte_level = false;
  options.checkpoint_every = 6;
  options.checkpoint_retain = 2;
  options.workdir = MakeWorkdir("torture_ckpt");

  auto report = RunCrashRecoveryTorture(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->failure;
  // One checkpoint per full window of 6 committed ops.
  EXPECT_GE(report->checkpoints_published, 4u);
  // Both the newest checkpoint and the rotated journal were tortured.
  EXPECT_GT(report->checkpoint_truncation_points, 0);
  EXPECT_GT(report->rotated_truncation_points, 0);
  // Torn-checkpoint offsets must have exercised the fallback path.
  EXPECT_GT(report->checkpoint_fallbacks, 0);
}

TEST_F(TortureTest, MissingWorkdirIsError) {
  TortureOptions options;
  auto report = RunCrashRecoveryTorture(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);

  options.workdir = ::testing::TempDir() + "/torture_does_not_exist_dir";
  report = RunCrashRecoveryTorture(options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TortureTest, SerializedStateCoversInstancePlanAndVersion) {
  TortureOptions options;
  options.users = 10;
  options.events = 4;
  options.ops = 5;
  options.workdir = MakeWorkdir("torture_serialize");
  // Smoke the serializer contract the harness's byte-compare relies on:
  // same inputs, same bytes; any field change, different bytes.
  GeneratorConfig config;
  config.num_users = options.users;
  config.num_events = options.events;
  config.seed = options.seed;
  auto instance = GenerateInstance(config);
  ASSERT_TRUE(instance.ok());
  Plan plan(instance->num_users(), instance->num_events());
  auto a = SerializeServiceState(*instance, plan, 1);
  auto b = SerializeServiceState(*instance, plan, 1);
  auto c = SerializeServiceState(*instance, plan, 2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_NE(*a, *c);
}

}  // namespace
}  // namespace gepc
