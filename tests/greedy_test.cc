#include "gepc/greedy.h"

#include <gtest/gtest.h>

#include "core/feasibility.h"
#include "tests/paper_example.h"

namespace gepc {
namespace {

using testing_support::kE1;
using testing_support::kE2;
using testing_support::kE3;
using testing_support::kE4;
using testing_support::MakePaperInstance;

TEST(GreedyTest, ProducesConflictFreeWithinBudgetPlans) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok()) << result.status();
  for (int i = 0; i < 5; ++i) {
    const auto& held = result->copy_plan.copies_of_user[static_cast<size_t>(i)];
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        EXPECT_FALSE(copies.CopiesConflict(instance, held[a], held[b]));
      }
    }
    EXPECT_LE(CopyTourCost(instance, copies, i, held),
              instance.user(i).budget + 1e-9);
  }
}

TEST(GreedyTest, NeverExceedsXiPerEvent) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok());
  const Plan plan = CollapseToPlan(instance, copies, result->copy_plan);
  for (int j = 0; j < instance.num_events(); ++j) {
    EXPECT_LE(plan.attendance(j), instance.event(j).lower_bound);
  }
}

TEST(GreedyTest, UsersOnlyGetPositiveUtilityEvents) {
  Instance instance = MakePaperInstance();
  instance.set_utility(0, kE3, 0.0);
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok());
  for (int copy : result->copy_plan.copies_of_user[0]) {
    EXPECT_NE(copies.event_of(copy), kE3);
  }
}

TEST(GreedyTest, DeterministicPerSeed) {
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  GreedyOptions options;
  options.seed = 99;
  auto a = SolveXiGepcGreedy(instance, copies, options);
  auto b = SolveXiGepcGreedy(instance, copies, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->copy_plan.user_of_copy, b->copy_plan.user_of_copy);
}

TEST(GreedyTest, UserOrderAffectsOutcome) {
  // Sec. III-B: the visiting order influences total utility. Over several
  // seeds we expect at least two distinct assignments.
  const Instance instance = MakePaperInstance();
  const CopyMap copies(instance);
  std::vector<std::vector<int>> outcomes;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    GreedyOptions options;
    options.seed = seed;
    auto result = SolveXiGepcGreedy(instance, copies, options);
    ASSERT_TRUE(result.ok());
    outcomes.push_back(result->copy_plan.user_of_copy);
  }
  bool any_difference = false;
  for (size_t k = 1; k < outcomes.size(); ++k) {
    if (outcomes[k] != outcomes[0]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GreedyTest, EachUserTakesFavoriteFirst) {
  // Make a conflict-free instance where u0's utilities strictly decrease
  // over events; visiting order forced by a single user.
  std::vector<User> users = {{{0, 0}, 1000.0}};
  std::vector<Event> events;
  for (int j = 0; j < 4; ++j) {
    Event e;
    e.location = {static_cast<double>(j), 0.0};
    e.lower_bound = 1;
    e.upper_bound = 1;
    e.time = {j * 100, j * 100 + 50};
    events.push_back(e);
  }
  Instance instance(std::move(users), std::move(events));
  for (int j = 0; j < 4; ++j) {
    instance.set_utility(0, j, 0.9 - 0.2 * j);
  }
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok());
  // Budget is huge: the user takes all four.
  EXPECT_EQ(result->copy_plan.copies_of_user[0].size(), 4u);
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
}

TEST(GreedyTest, LeavesCopiesUnassignedWhenNoUserFits) {
  // One user with a tiny budget cannot reach the far event.
  std::vector<User> users = {{{0, 0}, 1.0}};
  std::vector<Event> events = {{{100, 100}, 1, 1, {0, 10}}};
  Instance instance(std::move(users), std::move(events));
  instance.set_utility(0, 0, 0.9);
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 1);
}

TEST(GreedyTest, EmptyCopySetTrivial) {
  Instance instance = MakePaperInstance();
  for (int j = 0; j < 4; ++j) {
    ASSERT_TRUE(
        instance
            .set_event_bounds(j, 0, instance.event(j).upper_bound)
            .ok());
  }
  const CopyMap copies(instance);
  auto result = SolveXiGepcGreedy(instance, copies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->copy_plan.UnassignedCopies(), 0);
}

}  // namespace
}  // namespace gepc
