#ifndef GEPC_TESTS_PAPER_EXAMPLE_H_
#define GEPC_TESTS_PAPER_EXAMPLE_H_

#include "core/instance.h"
#include "core/plan.h"

namespace gepc {
namespace testing_support {

/// The running example of the paper (Example 1, Fig. 1 + Table I): five
/// users, four events. Table I fixes the utilities, budgets, participation
/// bounds and holding times; the figure's exact coordinates are not printed
/// in the text, so we use coordinates chosen to reproduce every distance
/// the paper states or implies:
///   * D_1 for {e1, e2} = sqrt(17) + sqrt(41) + 6 = 16.53 (Sec. II);
///   * u5 cannot afford e1 on top of e4 (Example 4 / 8);
///   * u4 can absorb e1 (Example 4), can swap to e2 (Example 6), and u2 can
///     swap e2 -> e4 (Example 7).
///
/// Users: u1 (0,0) B=18 | u2 (5,5) B=20 | u3 (4,5) B=20 | u4 (4,6) B=30 |
///        u5 (4,4) B=10.
/// Events: e1 (1,-4) xi=1 eta=3 1:00-3:00pm | e2 (6,0) 2/4 4:00-6:00pm |
///         e3 (3,8) 3/4 1:30-3:00pm | e4 (4,2) 1/5 6:00-8:00pm.
Instance MakePaperInstance();

/// The colored global plan of Table I (Example 2): u1 {e1,e2}, u2 {e2,e3},
/// u3 {e2,e3}, u4 {e3,e4}, u5 {e4}; total utility 6.3.
Plan MakePaperPlan();

inline constexpr int kE1 = 0;
inline constexpr int kE2 = 1;
inline constexpr int kE3 = 2;
inline constexpr int kE4 = 3;

}  // namespace testing_support
}  // namespace gepc

#endif  // GEPC_TESTS_PAPER_EXAMPLE_H_
